//! The defender-side ablation: same adaptive adversary, four defenders.
//!
//! The policy ablation (`examples/arena.rs`) varies what the adversary
//! *sees*; this one varies what the defender *does between rounds* — the
//! lifecycle axis the `DefenseStack` redesign opened:
//!
//! * `frozen` — the paper's deployment: rules mined once on round 0,
//!   deployed forever. §6 adaptation erodes them and nothing answers.
//! * `remine/2`, `remine/1` — `fp-spatial` re-runs Algorithm 1 over the
//!   accumulated labeled rounds every 2nd / every round. The mutated
//!   configurations are still impossible, just *different* — re-mining
//!   turns them into rules and claws recall back, at a measurable
//!   records-scanned cost.
//! * `escalate` — frozen rules, but the block TTL ladders ×64 per repeat
//!   offense (capped): a policy-side answer that punishes address reuse
//!   instead of refreshing the model.
//!
//! ```sh
//! cargo run --release --example defense_ablation
//! ```

use fp_inconsistent::arena::{Arena, ArenaConfig, ResponsePolicy, ROUND_SECS};
use fp_inconsistent::prelude::*;
use fp_inconsistent::types::detect::provenance;
use fp_inconsistent::types::Cohort;

const ROUNDS: u32 = 4;

fn main() {
    println!("4-round defender ablation (1% scale, Block policy, adaptive services)\n");
    println!(
        "{:<12}{:>12}{:>12}{:>10}{:>10}{:>16}{:>12}",
        "defender", "spatial r0", "spatial r3", "denied", "retrains", "records-scanned", "user FPR"
    );

    let mut last_recall = Vec::new();
    let mut components = Vec::new();
    for (name, cadence, escalate) in [
        ("frozen", None, false),
        ("remine/2", Some(2), false),
        ("remine/1", Some(1), false),
        ("escalate", None, true),
    ] {
        let base_ttl = if escalate {
            5_000 // short base: the ladder, not the base, must do the work
        } else {
            fp_inconsistent::arena::DEFAULT_BLOCK_TTL_SECS
        };
        let mut arena = Arena::new(ArenaConfig {
            scale: Scale::ratio(0.01),
            seed: 0xF91C0DE,
            shards: 1,
            policy: ResponsePolicy::block(base_ttl),
            remine_cadence: cadence,
            ..ArenaConfig::default()
        });
        if escalate {
            arena.set_policy(Box::new(
                ResponsePolicy::block(base_ttl).escalating(64, ROUND_SECS * 4),
            ));
        }
        arena.adaptive_defaults();
        arena.run(ROUNDS);
        let trajectory = arena.trajectory();

        let spatial = trajectory.recall_trajectory(provenance::FP_SPATIAL, Cohort::BotService);
        let denied: u64 = trajectory
            .rounds
            .iter()
            .map(|r| r.denied.iter().sum::<u64>())
            .sum();
        let retrains: u64 = trajectory
            .defense_spend_trajectory()
            .iter()
            .map(|s| s.retrained_members)
            .sum();
        let fpr = trajectory.fpr_trajectory(provenance::FP_SPATIAL);

        println!(
            "{:<12}{:>11.1}%{:>11.1}%{:>10}{:>10}{:>16}{:>11.1}%",
            name,
            spatial[0] * 100.0,
            spatial.last().unwrap() * 100.0,
            denied,
            retrains,
            trajectory.total_defense_scans(),
            fpr.last().unwrap() * 100.0,
        );
        last_recall.push((name, *spatial.last().unwrap(), fpr));

        // Structural claims, asserted so the example is a living check.
        match cadence {
            None => assert_eq!(retrains, 0, "{name}: frozen defenders never retrain"),
            Some(c) => assert_eq!(
                u64::from(ROUNDS / c),
                retrains,
                "{name}: cadence {c} retrains every {c} rounds"
            ),
        }
        if escalate {
            // The ladder's observable is ban *persistence*: compounded
            // repeat-offender episodes outlive every round boundary, so
            // entries are still binding after the final purge (a flat
            // 5000-second TTL would have been swept almost entirely).
            assert!(
                !arena.blocklist().is_empty(),
                "escalated repeat-offender bans must outlive the campaign"
            );
        }
        components.push((name, arena.run_components()));
    }

    let recall_of = |name: &str| {
        last_recall
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, r, _)| *r)
            .unwrap()
    };
    assert!(
        recall_of("remine/1") > recall_of("frozen"),
        "every-round re-mining must beat frozen rules by the last round"
    );
    for (name, _, fpr) in &last_recall {
        for (round, rate) in fpr.iter().enumerate() {
            assert!(
                *rate <= fpr[0] + 0.01,
                "{name}: recall must not be bought with user FPR \
                 (round {round}: {fpr:?})"
            );
        }
    }

    // The RUNFP_V1 audit surface: each defender is a distinct run, and the
    // component breakdown *names* the axis that separates it from frozen.
    // The re-miners diverge in their cadence config (and the behaviour it
    // bought); `escalate` diverges in its configured base policy (the
    // shorter base TTL the ladder compounds from) — its ×64 ladder itself
    // is a runtime swap, visible only through behaviour.
    println!("\nrun fingerprints (RUNFP_V1) and divergence from frozen:");
    let frozen = &components[0].1;
    for (name, c) in &components {
        let diverging = frozen.diverging(c);
        println!(
            "runfp[{name}] {}  (vs frozen: {})",
            c.fingerprint(),
            if diverging.is_empty() {
                "identical".to_string()
            } else {
                diverging.join(", ")
            }
        );
    }
    assert_eq!(
        frozen.diverging(&components[1].1),
        ["config.remine", "behavior"]
    );
    assert_eq!(
        frozen.diverging(&components[2].1),
        ["config.remine", "behavior"]
    );
    assert_eq!(
        frozen.diverging(&components[3].1),
        ["config.policy", "behavior"]
    );

    println!(
        "\nRe-mining answers §6 rule rot: the mutated configurations are \
         still impossible, so refreshed rules claw recall back — the \
         records-scanned column is what the defender pays for it. Run \
         `arena_table` for full per-round trajectories."
    );
}
