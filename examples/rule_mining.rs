//! FP-Inconsistent's rule mining, inspected step by step: the Algorithm 1
//! pipeline, the mined filter list (the artifact the paper open-sources),
//! round-tripping it through the text format, and deploying it against
//! fresh traffic.
//!
//! ```sh
//! cargo run --release --example rule_mining
//! ```

use fp_inconsistent::core::engine::EngineConfig;
use fp_inconsistent::core::evaluate;
use fp_inconsistent::core::CATEGORIES;
use fp_inconsistent::prelude::*;

fn record(campaign: &Campaign) -> RequestStore {
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.into_store()
}

fn main() {
    let store = record(&Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.05),
        seed: 11,
    }));

    // The category structure bounds the pair search (Table 7).
    println!("attribute categories:");
    for c in CATEGORIES.iter().filter(|c| c.in_paper) {
        println!(
            "  {:<10} {} attributes, {} pairs",
            c.name,
            c.attrs.len(),
            c.pairs().len()
        );
    }

    // Mine with the default config (undetected pool, min support 3).
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    println!("\nmined {} rules", engine.rules().len());

    // The filter list is plain text: write it, read it back, same rules.
    let text = engine.rules().to_filter_list();
    let reparsed = RuleSet::from_filter_list(&text).expect("own output parses");
    assert_eq!(reparsed.len(), engine.rules().len());
    println!(
        "filter list round-trips through its text format ({} bytes)",
        text.len()
    );

    // Deploy the parsed list on *fresh* traffic from the same services —
    // the §7.3 generalisation story.
    let fresh = record(&Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.02),
        seed: 999,
    }));
    let deployed = FpInconsistent::from_rules(
        reparsed,
        EngineConfig {
            generalize_location: true,
            ..EngineConfig::default()
        },
    );
    let (_, report) = evaluate::evaluate(&fresh, &deployed);
    println!(
        "\non unseen traffic: DataDome {:.2}% -> {:.2}%, BotD {:.2}% -> {:.2}%",
        report.none.0 * 100.0,
        report.combined.0 * 100.0,
        report.none.1 * 100.0,
        report.combined.1 * 100.0
    );

    // What does a rule look like?
    println!("\nexample rules:");
    for rule in engine.rules().iter().take(6) {
        println!("  {rule}");
    }
}
