//! Quickstart: generate a small campaign, run the honey site, mine rules,
//! and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fp_inconsistent::core::evaluate;
use fp_inconsistent::prelude::*;

fn main() {
    // 1. A deterministic bot campaign at 5% of the paper's volume.
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.05),
        seed: 42,
    });
    println!(
        "generated {} bot requests from 20 services",
        campaign.bot_requests.len()
    );

    // 2. The honey site: one URL token per purchased service, detectors
    //    inline, raw IPs hashed at the door.
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    let store = site.into_store();

    let (dd, botd) = fp_inconsistent::honeysite::stats::overall_evasion(&store);
    println!(
        "evasion against DataDome: {:.2}% (paper 44.56%)",
        dd * 100.0
    );
    println!(
        "evasion against BotD:     {:.2}% (paper 52.93%)",
        botd * 100.0
    );

    // 3. FP-Inconsistent: mine spatial rules from the undetected pool,
    //    stream temporal analysis, measure the improvement.
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    println!("mined {} inconsistency rules", engine.rules().len());

    let (_, report) = evaluate::evaluate(&store, &engine);
    let (dd_red, botd_red) = report.evasion_reduction();
    println!(
        "evasion reduction: DataDome {:.2}% (paper 48.11%), BotD {:.2}% (paper 44.95%)",
        dd_red * 100.0,
        botd_red * 100.0
    );

    // 4. A taste of the filter list.
    let list = engine.rules().to_filter_list();
    println!("\nfirst rules of the filter list:");
    for line in list.lines().take(8) {
        println!("  {line}");
    }
}
