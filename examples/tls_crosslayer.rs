//! The §8.2 extension: cross-layer consistency between the browser the UA
//! claims and the TLS stack that actually carried the request.
//!
//! Demonstrates the TLS substrate end to end: building real ClientHello
//! bytes per browser profile, parsing them back, JA3/JA4 digests, and the
//! UA↔JA3 rules the miner discovers once the category is enabled.
//!
//! ```sh
//! cargo run --release --example tls_crosslayer
//! ```

use fp_inconsistent::core::evaluate;
use fp_inconsistent::prelude::*;
use fp_inconsistent::tls::{ja3_digest, ja3_string, ja4_descriptor, ClientHello, TlsClientKind};
use fp_inconsistent::types::Splittable;

fn main() {
    // 1. The wire layer is real: serialise and re-parse each stack's hello.
    let mut rng = Splittable::new(1);
    println!("{:<16} {:>6} {:<34} JA4", "Stack", "bytes", "JA3");
    for kind in TlsClientKind::ALL {
        let hello = kind.client_hello("honey.example.com", &mut rng);
        let wire = hello.to_wire();
        let parsed = ClientHello::parse(&wire).expect("own bytes parse");
        assert_eq!(parsed, hello);
        println!(
            "{:<16} {:>6} {:<34} {}",
            format!("{kind:?}"),
            wire.len(),
            ja3_digest(&hello),
            ja4_descriptor(&hello)
        );
    }

    // 2. The JA3 string itself (pre-hash) for one stack.
    let hello = TlsClientKind::Chromium.client_hello("honey.example.com", &mut rng);
    println!("\nChromium JA3 string: {}", ja3_string(&hello));

    // 3. Cross-layer mining: a bot claiming Safari but greeting like Go.
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.03),
        seed: 5,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    let store = site.into_store();

    let paper = FpInconsistent::mine(&store, &MineConfig::default());
    let extended = FpInconsistent::mine(
        &store,
        &MineConfig {
            include_cross_layer: true,
            ..MineConfig::default()
        },
    );
    let (_, base) = evaluate::evaluate(&store, &paper);
    let (_, ext) = evaluate::evaluate(&store, &extended);
    println!(
        "\nrules {} -> {} with the TLS category; combined DataDome detection {:.2}% -> {:.2}%",
        paper.rules().len(),
        extended.rules().len(),
        base.combined.0 * 100.0,
        ext.combined.0 * 100.0
    );
    println!("\nexample cross-layer rules:");
    for rule in extended
        .rules()
        .iter()
        .filter(|r| !paper.rules().iter().any(|p| p == *r))
        .take(5)
    {
        println!("  {rule}");
    }
}
