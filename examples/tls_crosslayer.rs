//! The §8.2 extension end to end: TLS as a first-class facet of the
//! pipeline.
//!
//! 1. The wire layer is real — per-stack ClientHello bytes, parsed back,
//!    JA3/JA4 digested.
//! 2. The `fp-tls-crosslayer` detector runs **inside the default honey
//!    site chain**: every ingested request's handshake is checked against
//!    its User-Agent claim in real time, next to DataDome and BotD.
//! 3. The cohort report splits per-detector hit rates by traffic class —
//!    the TLS detector owns the TLS-lagging evasive cohort and is
//!    structurally blind to AI browsing agents (their Chromium hello is
//!    genuine), while the behaviour-reading detector covers those.
//!
//! ```sh
//! cargo run --release --example tls_crosslayer
//! ```

use fp_inconsistent::core::evaluate;
use fp_inconsistent::prelude::*;
use fp_inconsistent::tls::{ja3_digest, ja3_string, ja4_descriptor, ClientHello, TlsClientKind};
use fp_inconsistent::types::{Cohort, Splittable};

fn main() {
    // 1. The wire layer: serialise and re-parse each stack's hello.
    let mut rng = Splittable::new(1);
    println!("{:<16} {:>6} {:<34} JA4", "Stack", "bytes", "JA3");
    for kind in TlsClientKind::ALL {
        let hello = kind.client_hello("honey.example.com", &mut rng);
        let wire = hello.to_wire();
        let parsed = ClientHello::parse(&wire).expect("own bytes parse");
        assert_eq!(parsed, hello);
        println!(
            "{:<16} {:>6} {:<34} {}",
            format!("{kind:?}"),
            wire.len(),
            ja3_digest(&hello),
            ja4_descriptor(&hello)
        );
    }
    let hello = TlsClientKind::Chromium.client_hello("honey.example.com", &mut rng);
    println!("\nChromium JA3 string: {}", ja3_string(&hello));

    // 2. The in-chain detector over a campaign with both agent cohorts.
    // HoneySite::new() already runs fp-tls-crosslayer — no ad-hoc logic.
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.03),
        seed: 5,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.register_token(campaign.real_user_token());
    site.register_token(campaign.ai_agent_token());
    site.register_token(campaign.tls_laggard_token());
    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.ingest_all(campaign.real_users.iter().map(|r| r.request.clone()));
    site.ingest_all(campaign.ai_agents.iter().cloned());
    site.ingest_all(campaign.tls_laggards.iter().cloned());
    let store = site.into_store();

    // 3. The cohort split, read straight off the recorded verdicts.
    let report = evaluate::cohort_report(&store);
    println!("\nper-detector flag rate by cohort:");
    print!("{:<20}", "");
    for cohort in Cohort::ALL {
        print!("{:>14}", cohort.name());
    }
    println!();
    for d in &report.detectors {
        print!("{:<20}", d.detector.as_str());
        for cohort in Cohort::ALL {
            print!("{:>13.1}%", d.rate(cohort) * 100.0);
        }
        println!();
    }

    let xl = report
        .detector("fp-tls-crosslayer")
        .expect("runs in the default chain");
    println!(
        "\nfp-tls-crosslayer: catches {:.1}% of the TLS-lagging cohort at {:.1}% precision, \
         and 0.0% of AI agents — a real Chromium hello cannot mismatch.",
        xl.rate(Cohort::TlsLaggard) * 100.0,
        xl.precision * 100.0,
    );
    assert!(xl.rate(Cohort::TlsLaggard) > 0.95);
    assert_eq!(xl.rate(Cohort::AiAgent), 0.0);
}
