//! The full measurement campaign, end to end: the Section 4/5 workflow as
//! a downstream user would run it — including the ground-truth guarantee
//! (requests without a registered token are dropped) and a dataset export.
//!
//! ```sh
//! cargo run --release --example honey_site_campaign
//! ```

use fp_inconsistent::honeysite::stats;
use fp_inconsistent::prelude::*;
use fp_inconsistent::types::{sym, TrafficSource};

fn main() {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.05),
        seed: 7,
    });

    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.register_token(campaign.real_user_token());

    // A generic crawler stumbles on the domain without a token: the honey
    // site refuses to record it — that is the whole architecture.
    let mut stray = campaign.bot_requests[0].clone();
    stray.site_token = sym("no-such-version");
    let mut site = site;
    assert!(
        {
            let before = site.store().len();
            site.ingest(stray);
            site.store().len() == before
        },
        "stray request must not be recorded"
    );

    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.ingest_all(campaign.real_users.iter().map(|r| r.request.clone()));
    println!("rejected without token: {}", site.rejected_count());
    let store = site.into_store();

    // Table 1 view.
    println!("\nper-service evasion (Table 1):");
    for s in stats::per_service(&store) {
        println!(
            "  {:<4} {:>7} requests   DataDome {:>7.2}%   BotD {:>7.2}%",
            s.id.name(),
            s.requests,
            s.dd_evasion * 100.0,
            s.botd_evasion * 100.0
        );
    }

    // Figure 9 view, condensed.
    let series = stats::daily_series(&store);
    let peak = series.iter().map(|d| d.requests).max().unwrap_or(0);
    println!(
        "\ndaily volume (peak {peak} requests/day), renewal spikes at Sep 01 / Oct 01 / Oct 31"
    );

    // Ground truth is per-request and reliable.
    let bots = store.iter().filter(|r| r.source.is_bot()).count();
    let humans = store
        .iter()
        .filter(|r| r.source == TrafficSource::RealUser)
        .count();
    println!("\nstored: {bots} bot requests, {humans} real-user requests");

    // Export the dataset snapshot (JSON lines, IPs hashed).
    let path = std::env::temp_dir().join("fp_inconsistent_campaign.jsonl");
    let file = std::fs::File::create(&path).expect("create export file");
    store
        .write_jsonl(std::io::BufWriter::new(file))
        .expect("export");
    println!("dataset exported to {}", path.display());
}
