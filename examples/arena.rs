//! The adversarial arena, end to end: a 5-round policy ablation.
//!
//! Same traffic, same detectors, four response policies — the only thing
//! that changes is the feedback signal the adversary receives:
//!
//! * `allow` and `shadow` give the bots nothing to react to, so they
//!   never adapt and detector recall stays flat (the paper's own
//!   measurement posture);
//! * `captcha` makes mitigation visible, so the services rotate IPs and
//!   mutate fingerprints and the static rule set erodes — but nothing is
//!   ever denied;
//! * `block` adds TTL-blocklist enforcement at admission: the fleet walks
//!   off flagged ASNs and across geographies (§6), paying a measurable
//!   mutation cost per evading request;
//! * `captcha+block` (the [`CaptchaEscalation`] hybrid) challenges an
//!   address's first offense and blocks its repeats — visible like
//!   `captcha`, denying like `block`, but first contact is never denied.
//!
//! ```sh
//! cargo run --release --example arena
//! ```

use fp_inconsistent::arena::{Arena, ArenaConfig, ResponsePolicy};
use fp_inconsistent::prelude::*;
use fp_inconsistent::types::detect::provenance;
use fp_inconsistent::types::{CaptchaEscalation, Cohort};

const ROUNDS: u32 = 5;

fn main() {
    println!("5-round policy ablation (1% scale, adaptive services)\n");
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}{:>14}{:>12}",
        "policy", "spatial r0", "spatial r4", "half-life", "denied", "attrs-mutated", "user FPR"
    );

    let mut fingerprints = Vec::new();
    for policy in ResponsePolicy::all() {
        let mut arena = Arena::new(ArenaConfig {
            scale: Scale::ratio(0.01),
            seed: 0xF91C0DE,
            shards: 1,
            policy,
            ..ArenaConfig::default()
        });
        arena.adaptive_defaults();
        arena.run(ROUNDS);
        let trajectory = arena.trajectory();

        let spatial = trajectory.recall_trajectory(provenance::FP_SPATIAL, Cohort::BotService);
        let half_life = trajectory
            .evasion_half_life(provenance::FP_SPATIAL, Cohort::BotService)
            .map(|hl| format!("{hl:.1} rds"))
            .unwrap_or_else(|| "holds".into());
        let denied: u64 = trajectory
            .rounds
            .iter()
            .map(|r| r.denied.iter().sum::<u64>())
            .sum();
        let mutated: u64 = trajectory
            .rounds
            .iter()
            .map(|r| r.mutation.mutated_attrs)
            .sum();
        let fpr = trajectory.fpr_trajectory(provenance::FP_SPATIAL);

        println!(
            "{:<10}{:>11.1}%{:>11.1}%{:>12}{:>12}{:>14}{:>11.1}%",
            policy.name,
            spatial[0] * 100.0,
            spatial.last().unwrap() * 100.0,
            half_life,
            denied,
            mutated,
            fpr.last().unwrap() * 100.0,
        );

        // The ablation's structural claims, asserted so the example is a
        // living check, not just prose.
        if policy.action.visible_to_client() {
            assert!(
                *spatial.last().unwrap() < spatial[0],
                "visible mitigation must trigger adaptation"
            );
            assert!(mutated > 0);
        } else {
            assert!(
                (spatial.last().unwrap() - spatial[0]).abs() < 0.03,
                "invisible mitigation must leave the adversary asleep"
            );
            assert_eq!(mutated, 0);
        }
        if !policy.action.blocks() {
            assert_eq!(denied, 0, "only the block policy denies at admission");
        }
        fingerprints.push((policy.name, arena.run_fingerprint()));
    }

    // The fifth row: the CAPTCHA-then-block hybrid, installed through the
    // richer `DecisionPolicy` slot (it needs offense history, which the
    // static `ResponsePolicy` table rows ignore by design).
    let block = ResponsePolicy::block(fp_inconsistent::arena::DEFAULT_BLOCK_TTL_SECS);
    let mut arena = Arena::new(ArenaConfig {
        scale: Scale::ratio(0.01),
        seed: 0xF91C0DE,
        shards: 1,
        policy: block,
        ..ArenaConfig::default()
    });
    arena.set_policy(Box::new(CaptchaEscalation::new(
        Box::new(block),
        fp_inconsistent::arena::DEFAULT_BLOCK_TTL_SECS,
    )));
    arena.adaptive_defaults();
    arena.run(ROUNDS);
    let trajectory = arena.trajectory();
    let spatial = trajectory.recall_trajectory(provenance::FP_SPATIAL, Cohort::BotService);
    let half_life = trajectory
        .evasion_half_life(provenance::FP_SPATIAL, Cohort::BotService)
        .map(|hl| format!("{hl:.1} rds"))
        .unwrap_or_else(|| "holds".into());
    let denied: u64 = trajectory
        .rounds
        .iter()
        .map(|r| r.denied.iter().sum::<u64>())
        .sum();
    let mutated: u64 = trajectory
        .rounds
        .iter()
        .map(|r| r.mutation.mutated_attrs)
        .sum();
    let fpr = trajectory.fpr_trajectory(provenance::FP_SPATIAL);
    println!(
        "{:<10}{:>11.1}%{:>11.1}%{:>12}{:>12}{:>14}{:>11.1}%",
        "capt+blk",
        spatial[0] * 100.0,
        spatial.last().unwrap() * 100.0,
        half_life,
        denied,
        mutated,
        fpr.last().unwrap() * 100.0,
    );
    assert!(
        *spatial.last().unwrap() < spatial[0],
        "the hybrid is visible mitigation: the adversary must adapt"
    );
    assert!(mutated > 0);
    assert!(
        denied > 0,
        "repeat offenders graduate to blocks that bind at admission"
    );
    fingerprints.push(("capt+blk", arena.run_fingerprint()));

    // Each row is a distinct run — a distinct RUNFP_V1 fingerprint. The
    // hybrid shares `block`'s config components (the richer policy is a
    // runtime swap) yet still separates on the behaviour it produced.
    println!("\nrun fingerprints (RUNFP_V1):");
    for (name, fp) in &fingerprints {
        println!("runfp[{name}] {fp}");
    }
    for (i, (a_name, a)) in fingerprints.iter().enumerate() {
        for (b_name, b) in &fingerprints[i + 1..] {
            assert_ne!(a, b, "{a_name} and {b_name} must not collide");
        }
    }

    println!(
        "\nOnly visible mitigation teaches the adversary; only the blocking \
         policies move its network footprint — the hybrid does both while \
         never denying a first contact. Run `arena_table` for the full \
         per-round trajectories."
    );
}
