//! The §7.5 experiment as an example: do the mined rules punish privacy
//! tools? (Paper: Brave triggers only temporal flags, Tor is
//! indistinguishable from bots, blockers are untouched.)
//!
//! ```sh
//! cargo run --release --example privacy_tech
//! ```

use fp_inconsistent::botnet::privacy;
use fp_inconsistent::core::evaluate;
use fp_inconsistent::prelude::*;
use fp_inconsistent::types::detect::provenance;
use fp_inconsistent::types::PrivacyTech;

fn main() {
    // Rules come from bot traffic only.
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.05),
        seed: 3,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    let engine = FpInconsistent::mine(&site.into_store(), &MineConfig::default());

    println!(
        "{:<16} {:>9} {:>9} {:>11} {:>11}",
        "Technology", "DataDome", "BotD", "FPI spatial", "FPI temporal"
    );
    for tech in PrivacyTech::ALL {
        let requests = privacy::generate(tech, 3);
        let mut tech_site = HoneySite::new();
        tech_site.register_token(requests[0].site_token);
        tech_site.ingest_all(requests);
        let store = tech_site.into_store();

        let dd = store
            .iter()
            .filter(|r| r.verdicts.bot(provenance::DATADOME))
            .count() as f64
            / store.len() as f64;
        let botd = store
            .iter()
            .filter(|r| r.verdicts.bot(provenance::BOTD))
            .count() as f64
            / store.len() as f64;
        let (spatial, temporal, _) = evaluate::flag_rate(&store, &engine);
        println!(
            "{:<16} {:>8.1}% {:>8.1}% {:>10.1}% {:>10.1}%",
            tech.name(),
            dd * 100.0,
            botd * 100.0,
            spatial * 100.0,
            temporal * 100.0
        );
    }

    println!("\nreading (paper §7.5 / Appendix G):");
    println!("- Brave: no spatial flags (alterations are plausible) but temporal flags from");
    println!("  farbling under a kept cookie; DataDome rate-limits it after ~10 requests.");
    println!("- Tor: every request spatially flagged (exit-relay region vs UTC timezone) —");
    println!("  and DataDome blocks the exits outright.");
    println!("- Safari/uBlock/ABP block trackers without altering attributes: zero impact.");
}
