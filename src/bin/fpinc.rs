//! `fpinc` — the FP-Inconsistent command line.
//!
//! ```text
//! fpinc generate --scale 0.05 --seed 42 --out campaign.jsonl
//! fpinc mine     --data campaign.jsonl --out rules.txt
//! fpinc apply    --data campaign.jsonl --rules rules.txt
//! fpinc report   --scale 0.05
//! ```
//!
//! `generate` replays the measurement campaign through the honey site and
//! writes the recorded dataset (IPs hashed) as JSON lines. `mine` runs
//! Algorithm 1 over a dataset and writes the filter list. `apply` loads a
//! filter list and reports the detection improvement on a dataset.
//! `report` prints the headline tables in one go.

use fp_inconsistent::core::engine::EngineConfig;
use fp_inconsistent::core::evaluate;
use fp_inconsistent::honeysite::stats;
use fp_inconsistent::prelude::*;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "mine" => cmd_mine(&opts),
        "apply" => cmd_apply(&opts),
        "report" => cmd_report(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "fpinc — FP-Inconsistent reproduction CLI

USAGE:
  fpinc generate [--scale F] [--seed N] --out FILE    write a recorded campaign (JSON lines)
  fpinc mine     --data FILE --out FILE               mine a filter list from a dataset
  fpinc apply    --data FILE --rules FILE             apply a filter list, report improvement
  fpinc report   [--scale F] [--seed N]               print the headline tables

OPTIONS:
  --scale F    campaign volume as a fraction of the paper's 507,080 (default 0.05)
  --seed N     campaign seed (default 0xF91C0DE)
  --data FILE  dataset produced by `fpinc generate`
  --rules FILE filter list produced by `fpinc mine`
  --out FILE   output path";

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        opts.insert(key.to_owned(), value.clone());
    }
    Ok(opts)
}

fn scale_of(opts: &HashMap<String, String>) -> Result<Scale, String> {
    match opts.get("scale") {
        None => Ok(Scale::ratio(0.05)),
        Some(s) => {
            let f: f64 = s.parse().map_err(|_| format!("bad --scale {s:?}"))?;
            if f > 0.0 && f <= 1.0 {
                Ok(Scale::ratio(f))
            } else {
                Err(format!("--scale must be in (0, 1], got {f}"))
            }
        }
    }
}

fn seed_of(opts: &HashMap<String, String>) -> Result<u64, String> {
    match opts.get("seed") {
        None => Ok(0xF91C0DE),
        Some(s) => s.parse().map_err(|_| format!("bad --seed {s:?}")),
    }
}

fn record(scale: Scale, seed: u64) -> RequestStore {
    let campaign = Campaign::generate(CampaignConfig { scale, seed });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.register_token(campaign.real_user_token());
    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.ingest_all(campaign.real_users.iter().map(|r| r.request.clone()));
    site.into_store()
}

fn load(opts: &HashMap<String, String>) -> Result<RequestStore, String> {
    let path = opts.get("data").ok_or("--data is required")?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    RequestStore::read_jsonl(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("--out is required")?;
    let store = record(scale_of(opts)?, seed_of(opts)?);
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    store
        .write_jsonl(BufWriter::new(file))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} requests to {out}", store.len());
    Ok(())
}

fn cmd_mine(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("--out is required")?;
    let store = load(opts)?;
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    std::fs::write(out, engine.rules().to_filter_list())
        .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "mined {} rules from {} requests -> {out}",
        engine.rules().len(),
        store.len()
    );
    Ok(())
}

fn cmd_apply(opts: &HashMap<String, String>) -> Result<(), String> {
    let rules_path = opts.get("rules").ok_or("--rules is required")?;
    let store = load(opts)?;
    let text =
        std::fs::read_to_string(rules_path).map_err(|e| format!("read {rules_path}: {e}"))?;
    let rules = RuleSet::from_filter_list(&text)?;
    let engine = FpInconsistent::from_rules(
        rules,
        EngineConfig {
            generalize_location: true,
            ..EngineConfig::default()
        },
    );
    let (_, report) = evaluate::evaluate(&store, &engine);
    let tnr = evaluate::true_negative_rate(&store, &engine);
    println!(
        "detection (DataDome): {:.2}% -> {:.2}%",
        report.none.0 * 100.0,
        report.combined.0 * 100.0
    );
    println!(
        "detection (BotD):     {:.2}% -> {:.2}%",
        report.none.1 * 100.0,
        report.combined.1 * 100.0
    );
    println!("real-user TNR:        {:.2}%", tnr * 100.0);
    Ok(())
}

fn cmd_report(opts: &HashMap<String, String>) -> Result<(), String> {
    let store = record(scale_of(opts)?, seed_of(opts)?);
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    let (improvements, report) = evaluate::evaluate(&store, &engine);

    println!("== Table 1 / Table 3 ==");
    println!(
        "{:<5} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "Svc", "Requests", "DD", "DD+FPI", "BotD", "BotD+FPI"
    );
    for s in &improvements {
        println!(
            "{:<5} {:>8} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            s.id.name(),
            s.requests,
            s.dd_detection * 100.0,
            s.dd_post_detection * 100.0,
            s.botd_detection * 100.0,
            s.botd_post_detection * 100.0
        );
    }

    let (dd, botd) = stats::overall_evasion(&store);
    println!("\n== Headlines ==");
    println!(
        "evasion: DataDome {:.2}% (paper 44.56%), BotD {:.2}% (paper 52.93%)",
        dd * 100.0,
        botd * 100.0
    );
    let (dd_red, botd_red) = report.evasion_reduction();
    println!(
        "reduction with FP-Inconsistent: DataDome {:.2}% (48.11%), BotD {:.2}% (44.95%)",
        dd_red * 100.0,
        botd_red * 100.0
    );
    println!("rules mined: {}", engine.rules().len());
    println!(
        "real-user TNR: {:.2}% (96.84%)",
        evaluate::true_negative_rate(&store, &engine) * 100.0
    );
    Ok(())
}
