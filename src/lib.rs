//! FP-Inconsistent — a full reproduction of *"FP-Inconsistent: Measurement
//! and Analysis of Fingerprint Inconsistencies in Evasive Bot Traffic"*
//! (IMC 2025) as a Rust workspace.
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`types`] — attribute schema, fingerprints, requests, simulated time;
//! * [`fingerprint`] — real-device catalogue, UA synthesis/parsing, the
//!   FingerprintJS-style collector and the validity oracle;
//! * [`netsim`] — ASN/IP allocation, geolocation, timezones, blocklists;
//! * [`tls`] — ClientHello wire format, JA3/JA4, browser TLS profiles;
//! * [`antibot`] — the DataDome-like and BotD-like detector simulators;
//! * [`botnet`] — the 20 bot services, real users and privacy tools;
//! * [`honeysite`] — URL-token admission, cookies, pipeline, store;
//! * [`ml`] — gradient-boosted trees + attribution (XGBoost/SHAP stand-in);
//! * [`core`] — FP-Inconsistent itself: spatial/temporal rule mining, the
//!   filter list and the evaluation harness;
//! * [`arena`] — the closed-loop mitigation & bot-adaptation arena:
//!   lifecycle-aware defense stacks (decision policies, between-round
//!   re-mining), TTL-blocklist enforcement, adapting bot services,
//!   round-over-round trajectories with both sides' spend.
//!
//! # Quickstart
//!
//! Every detector — the simulated anti-bot services and FP-Inconsistent
//! itself — implements one streaming `Detector` contract
//! ([`types::detect`]), so the honey site runs them as one chain, inline
//! at ingest, sequentially or on N worker shards with identical verdicts.
//!
//! ```
//! use fp_inconsistent::prelude::*;
//!
//! // A small deterministic campaign (1% of the paper's volume).
//! let campaign = Campaign::generate(CampaignConfig { scale: Scale::ratio(0.01), seed: 7 });
//!
//! // Run it through the honey site (default chain: DataDome, BotD, and
//! // the cross-layer TLS consistency check).
//! let mut site = HoneySite::new();
//! for id in ServiceId::all() {
//!     site.register_token(campaign.token_of(id));
//! }
//! site.ingest_all(campaign.bot_requests.iter().cloned());
//! let store = site.into_store();
//!
//! // Mine inconsistency rules and measure the improvement (single pass).
//! let engine = FpInconsistent::mine(&store, &MineConfig::default());
//! let (_, report) = fp_inconsistent::core::evaluate::evaluate(&store, &engine);
//! assert!(report.combined.0 > report.none.0, "rules must add detection");
//!
//! // Deploy the mined engine *online*: plug its detector adapters into a
//! // fresh site's chain and ingest the same stream on 4 shards. Every
//! // request now carries named verdicts from all six detectors (the
//! // default chain includes the cross-layer TLS consistency check).
//! let mut live = HoneySite::new();
//! for id in ServiceId::all() {
//!     live.register_token(campaign.token_of(id));
//! }
//! for detector in engine.detectors() {
//!     live.push_detector(detector);
//! }
//! live.ingest_stream(campaign.bot_requests.clone(), 4);
//! let streamed = live.into_store();
//! let first = streamed.get(0).unwrap();
//! let dd = fp_inconsistent::types::detect::provenance::DATADOME;
//! assert_eq!(first.verdicts.bot(dd), store.get(0).unwrap().verdicts.bot(dd));
//! assert!(first.verdicts.verdict("fp-spatial").is_some());
//! ```

pub use fp_antibot as antibot;
pub use fp_arena as arena;
pub use fp_botnet as botnet;
pub use fp_fingerprint as fingerprint;
pub use fp_honeysite as honeysite;
pub use fp_inconsistent_core as core;
pub use fp_ml as ml;
pub use fp_netsim as netsim;
pub use fp_tls as tls;
pub use fp_types as types;

/// The names almost every consumer wants.
pub mod prelude {
    pub use fp_antibot::{BotD, DataDome, Detector, Verdict};
    pub use fp_arena::{Arena, ArenaConfig, ResponsePolicy};
    pub use fp_botnet::{Campaign, CampaignConfig};
    pub use fp_honeysite::{DefenseStack, HoneySite, RequestStore};
    pub use fp_inconsistent_core::{FpInconsistent, MineConfig, RuleSet};
    pub use fp_types::defense::{DecisionPolicy, StackMember};
    pub use fp_types::{
        AttrId, AttrValue, Fingerprint, RecordView, Request, RetentionPolicy, Scale, ServiceId,
        SimTime,
    };
}
