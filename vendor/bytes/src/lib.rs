//! Offline stub of the `bytes` crate: the `Buf`/`BufMut` cursor traits and
//! a `Vec`-backed `BytesMut`, covering the surface `fp-tls` uses for
//! ClientHello wire (de)serialization. Reads past the end panic, matching
//! the real crate's contract (callers bounds-check with `remaining`).

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer underflow");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer (a thin wrapper over `Vec<u8>` here).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(capacity))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    pub fn freeze(self) -> Vec<u8> {
        self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
