//! Offline stub of the `criterion` benchmarking API.
//!
//! Keeps the macro/group/bencher surface the workspace's benches use and
//! measures with plain `Instant` timing: per benchmark it warms up once,
//! sizes an iteration count for a ~300 ms measurement window, and prints
//! mean time per iteration plus throughput when configured. No plotting,
//! no statistics beyond the mean — enough to compare runs of this repo.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How batched-iteration inputs are sized (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let target = Duration::from_millis(300);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let iters = iters.min(self.budget as u64 * 25);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += iters;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = self.budget.clamp(1, 50) as u64;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
        }
        self.iters += n;
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{group}/{id}: no iterations");
            return;
        }
        let per_iter = self.total.as_secs_f64() / self.iters as f64;
        let mut line = format!("{group}/{id}: {:.3} ms/iter", per_iter * 1e3);
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(" ({:.0} elem/s)", n as f64 / per_iter));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(
                    " ({:.1} MiB/s)",
                    n as f64 / per_iter / (1024.0 * 1024.0)
                ));
            }
            None => {}
        }
        println!("{line}");
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
