//! Offline stub of the `crossbeam::thread` scoped-thread API over
//! `std::thread::scope`. Only the surface the workspace uses: `scope`,
//! `Scope::spawn` (whose closure receives the scope, crossbeam-style) and
//! `ScopedJoinHandle::join`.

pub mod thread {
    use std::thread as std_thread;

    /// Scope handle passed to `scope` and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` on panic).
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope for spawning threads that borrow from the caller.
    /// Unlike crossbeam (which catches child panics and reports them in the
    /// returned `Result`), an unjoined panicking child propagates at scope
    /// exit — every caller in this workspace joins all its handles, where
    /// the two behaviours agree.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}
