//! Offline, API-compatible subset of `serde`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of external dependencies are vendored as minimal stubs that
//! cover exactly the API surface the workspace uses (see `ARCHITECTURE.md`).
//!
//! The data model is deliberately simpler than real serde: every value
//! serializes through a concrete [`Content`] tree (a JSON-shaped value).
//! `Serializer`/`Deserializer` keep serde's generic trait signatures so
//! handwritten impls (e.g. `Fingerprint`) and derived impls compile
//! unchanged, but the only formats in the workspace are `Content` itself and
//! `serde_json`, both of which round-trip through [`Content`].

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The JSON-shaped value every serialization passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Human-readable kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// The single error type shared by the stub's serializers and deserializers.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
