//! Deserialization half of the stub.
//!
//! Formats pull a full [`Content`] tree first ([`Deserializer::into_content`])
//! and typed values are rebuilt from it. The visitor machinery exists so
//! handwritten impls written against real serde (map visitors) compile
//! unchanged.

use crate::Content;
use std::fmt;
use std::marker::PhantomData;

/// Error trait mirroring `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A deserializable value.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A format backend. Only [`Deserializer::into_content`] is required.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    /// Pull the complete value as a content tree.
    fn into_content(self) -> Result<Content, Self::Error>;

    /// Drive a map visitor (the only visitor entry point the workspace's
    /// handwritten impls use).
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.into_content()? {
            Content::Map(entries) => visitor.visit_map(ContentMapAccess {
                entries: entries.into_iter(),
                _marker: PhantomData,
            }),
            other => Err(Self::Error::custom(format!(
                "expected a map, found {}",
                other.kind()
            ))),
        }
    }

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.into_content()? {
            Content::Map(entries) => visitor.visit_map(ContentMapAccess {
                entries: entries.into_iter(),
                _marker: PhantomData,
            }),
            Content::Str(s) => visitor.visit_string(s),
            other => Err(Self::Error::custom(format!(
                "cannot visit {}",
                other.kind()
            ))),
        }
    }
}

/// Visitor trait mirroring `serde::de::Visitor`. Only the entry points the
/// workspace uses have non-erroring defaults.
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(Expected(&self)))
    }

    fn visit_string<E: Error>(self, _v: String) -> Result<Self::Value, E> {
        Err(E::custom(Expected(&self)))
    }
}

/// Renders a visitor's `expecting` message.
struct Expected<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> fmt::Display for Expected<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid type: expected ")?;
        self.0.expecting(f)
    }
}

/// Map cursor mirroring `serde::de::MapAccess`.
pub trait MapAccess<'de> {
    type Error: Error;
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error>;
}

/// [`MapAccess`] over a buffered content map.
pub struct ContentMapAccess<E> {
    entries: std::vec::IntoIter<(Content, Content)>,
    _marker: PhantomData<E>,
}

impl<'de, E: Error> MapAccess<'de> for ContentMapAccess<E> {
    type Error = E;
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, E> {
        match self.entries.next() {
            None => Ok(None),
            Some((k, v)) => {
                let key = from_content::<K>(k).map_err(|e| E::custom(e))?;
                let value = from_content::<V>(v).map_err(|e| E::custom(e))?;
                Ok(Some((key, value)))
            }
        }
    }
}

/// The identity backend: deserializing from [`Content`] itself.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = crate::Error;
    fn into_content(self) -> Result<Content, crate::Error> {
        Ok(self.0)
    }
}

/// Rebuild a typed value from a content tree.
pub fn from_content<'de, T: Deserialize<'de>>(content: Content) -> Result<T, crate::Error> {
    T::deserialize(ContentDeserializer(content))
}

// --------------------------------------------------------------------------
// Deserialize impls for the std types the workspace records.

fn int_from<E: Error>(content: Content) -> Result<i64, E> {
    match content {
        Content::I64(v) => Ok(v),
        Content::U64(v) => i64::try_from(v).map_err(|_| E::custom("integer out of range")),
        Content::F64(v) if v.fract() == 0.0 => Ok(v as i64),
        other => Err(E::custom(format!(
            "expected an integer, found {}",
            other.kind()
        ))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = int_from::<D::Error>(d.into_content()?)?;
                <$t>::try_from(v).map_err(|_| D::Error::custom("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::U64(v) => Ok(v),
            Content::I64(v) => {
                u64::try_from(v).map_err(|_| D::Error::custom("negative integer for u64"))
            }
            Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as u64),
            other => Err(D::Error::custom(format!(
                "expected an integer, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! de_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.into_content()? {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    other => Err(D::Error::custom(format!("expected a number, found {}", other.kind()))),
                }
            }
        }
    )*};
}
de_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(D::Error::custom(format!(
                "expected a bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Null => Ok(None),
            other => from_content::<T>(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| from_content::<T>(c).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        if items.len() != N {
            return Err(D::Error::custom(format!(
                "expected {N} elements, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = from_content::<A>(it.next().unwrap()).map_err(D::Error::custom)?;
                let b = from_content::<B>(it.next().unwrap()).map_err(D::Error::custom)?;
                Ok((a, b))
            }
            other => Err(D::Error::custom(format!(
                "expected a 2-element sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for std::net::Ipv4Addr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse()
            .map_err(|_| D::Error::custom(format!("invalid IPv4 address {s:?}")))
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.into_content()
    }
}
