//! Serialization half of the stub.

use crate::Content;
use std::fmt;

/// Error trait mirroring `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A serializable value. The required method keeps serde's generic
/// signature; all workspace serializers ultimately funnel into
/// [`Serializer::serialize_content`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format backend. Only [`Serializer::serialize_content`] is required;
/// the named `serialize_*` methods default to building [`Content`].
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    /// Consume a fully-built content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_owned()))
    }
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(to_content(value))
    }

    /// Begin a map; entries are buffered as content and flushed on `end`.
    fn serialize_map(self, _len: Option<usize>) -> Result<MapSer<Self>, Self::Error> {
        Ok(MapSer {
            ser: self,
            entries: Vec::new(),
        })
    }

    /// Begin a sequence; elements are buffered as content.
    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqSer<Self>, Self::Error> {
        Ok(SeqSer {
            ser: self,
            items: Vec::new(),
        })
    }
}

/// Trait mirroring `serde::ser::SerializeMap` (implemented by [`MapSer`]).
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Trait mirroring `serde::ser::SerializeSeq` (implemented by [`SeqSer`]).
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Concrete map builder returned by every [`Serializer`].
pub struct MapSer<S: Serializer> {
    ser: S,
    entries: Vec<(Content, Content)>,
}

impl<S: Serializer> SerializeMap for MapSer<S> {
    type Ok = S::Ok;
    type Error = S::Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.entries.push((to_content(key), to_content(value)));
        Ok(())
    }
    fn end(self) -> Result<Self::Ok, Self::Error> {
        self.ser.serialize_content(Content::Map(self.entries))
    }
}

/// Concrete sequence builder returned by every [`Serializer`].
pub struct SeqSer<S: Serializer> {
    ser: S,
    items: Vec<Content>,
}

impl<S: Serializer> SerializeSeq for SeqSer<S> {
    type Ok = S::Ok;
    type Error = S::Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        self.items.push(to_content(value));
        Ok(())
    }
    fn end(self) -> Result<Self::Ok, Self::Error> {
        self.ser.serialize_content(Content::Seq(self.items))
    }
}

/// The identity backend: serializing to [`Content`] itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = crate::Error;
    fn serialize_content(self, content: Content) -> Result<Content, crate::Error> {
        Ok(content)
    }
}

/// Serialize any value into the content tree (infallible for the stub's
/// data model).
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    value.serialize(ContentSerializer).unwrap_or(Content::Null)
}

// --------------------------------------------------------------------------
// Serialize impls for the std types the workspace records.

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(i64::from(*self))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, u8, u16, u32);

impl Serialize for i64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_i64(*self)
    }
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(*self)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(*self as u64)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(vec![to_content(&self.0), to_content(&self.1)]))
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(self.clone())
    }
}
