//! Offline stub of `parking_lot` over `std::sync`, keeping parking_lot's
//! panic-free guard-returning API (`read()`/`write()`/`lock()` return guards
//! directly; a poisoned std lock is recovered, matching parking_lot's lack
//! of poisoning).

use std::sync;

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with `parking_lot`'s API shape.
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Mutex with `parking_lot`'s API shape.
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}
