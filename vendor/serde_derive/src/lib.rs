//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Hand-rolled token parsing (no `syn`/`quote` in this offline build
//! environment). Supports exactly the shapes the workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtype and small tuples),
//! * enums whose variants are unit, newtype or tuple.
//!
//! Generics, struct variants and `#[serde(...)]` attributes are not
//! supported and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// --------------------------------------------------------------------------
// Parsing.

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&trees, &mut i);

    let kind = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected a type name".into()),
    };
    i += 1;
    if matches!(trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported"
        ));
    }

    match (kind.as_str(), trees.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        _ => Err(format!("serde_derive: unsupported shape for `{name}`")),
    }
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(trees: &[TokenTree], i: &mut usize) {
    loop {
        match trees.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(trees.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ ... }` struct body. Commas inside `<...>` belong to
/// the field's type, not the field list.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let trees: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        skip_attrs_and_vis(&trees, &mut i);
        if i >= trees.len() {
            break;
        }
        let name = match &trees[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive: expected a field name, found `{other}`"
                ))
            }
        };
        i += 1;
        match &trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde_derive: expected `:` after field `{name}`")),
        }
        // Skip the type: everything up to the next comma at angle depth 0.
        let mut depth = 0i32;
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Arity of a `( ... )` tuple body (top-level comma count).
fn count_tuple_fields(body: TokenStream) -> usize {
    let trees: Vec<TokenTree> = body.into_iter().collect();
    if trees.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1;
    let mut trailing_comma = false;
    for t in &trees {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

/// `(variant name, payload arity)` pairs; arity 0 is a unit variant.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let trees: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        skip_attrs_and_vis(&trees, &mut i);
        if i >= trees.len() {
            break;
        }
        let name = match &trees[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive: expected a variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let arity = match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_tuple_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive: struct variant `{name}` is not supported"
                ));
            }
            _ => 0,
        };
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => {
                return Err(format!(
                    "serde_derive: expected `,` after variant `{name}`, found `{other}`"
                ))
            }
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

// --------------------------------------------------------------------------
// Code generation.

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for f in fields {
                entries.push_str(&format!(
                    "__entries.push((::serde::Content::Str(::std::string::String::from({f:?})), ::serde::ser::to_content(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::ser::Serializer>(&self, __s: S) -> ::std::result::Result<S::Ok, S::Error> {{\n\
                         let mut __entries: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = ::std::vec::Vec::new();\n\
                         {entries}\
                         __s.serialize_content(::serde::Content::Map(__entries))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "__s.serialize_content(::serde::ser::to_content(&self.0))".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::ser::to_content(&self.{k})"))
                    .collect();
                format!(
                    "__s.serialize_content(::serde::Content::Seq(vec![{}]))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::ser::Serializer>(&self, __s: S) -> ::std::result::Result<S::Ok, S::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, arity) in variants {
                if *arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{v} => __s.serialize_content(::serde::Content::Str(::std::string::String::from({v:?}))),\n"
                    ));
                } else if *arity == 1 {
                    arms.push_str(&format!(
                        "{name}::{v}(ref __f0) => __s.serialize_content(::serde::Content::Map(vec![(::serde::Content::Str(::std::string::String::from({v:?})), ::serde::ser::to_content(__f0))])),\n"
                    ));
                } else {
                    let binds: Vec<String> = (0..*arity).map(|k| format!("ref __f{k}")).collect();
                    let items: Vec<String> = (0..*arity)
                        .map(|k| format!("::serde::ser::to_content(__f{k})"))
                        .collect();
                    arms.push_str(&format!(
                        "{name}::{v}({binds}) => __s.serialize_content(::serde::Content::Map(vec![(::serde::Content::Str(::std::string::String::from({v:?})), ::serde::Content::Seq(vec![{items}]))])),\n",
                        binds = binds.join(", "),
                        items = items.join(", "),
                    ));
                }
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::ser::Serializer>(&self, __s: S) -> ::std::result::Result<S::Ok, S::Error> {{\n\
                         match *self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let err = "|__e| <D::Error as ::serde::de::Error>::custom(__e)";
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: {{\n\
                         let __idx = __map.iter().position(|(__k, _)| matches!(__k, ::serde::Content::Str(__s) if __s == {f:?}))\n\
                             .ok_or_else(|| <D::Error as ::serde::de::Error>::custom(concat!(\"missing field `\", {f:?}, \"` in \", {name:?})))?;\n\
                         ::serde::de::from_content(__map.swap_remove(__idx).1).map_err({err})?\n\
                     }},\n"
                ));
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::de::Deserializer<'de>>(__d: D) -> ::std::result::Result<Self, D::Error> {{\n\
                         let mut __map = match __d.into_content()? {{\n\
                             ::serde::Content::Map(__m) => __m,\n\
                             __other => return Err(<D::Error as ::serde::de::Error>::custom(format!(\"expected a map for {name}, found {{}}\", __other.kind()))),\n\
                         }};\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "Ok({name}(::serde::de::from_content(__d.into_content()?).map_err({err})?))"
                )
            } else {
                let pulls: Vec<String> = (0..*arity)
                    .map(|_| {
                        format!("::serde::de::from_content(__it.next().unwrap()).map_err({err})?")
                    })
                    .collect();
                format!(
                    "match __d.into_content()? {{\n\
                         ::serde::Content::Seq(__items) if __items.len() == {arity} => {{\n\
                             let mut __it = __items.into_iter();\n\
                             Ok({name}({pulls}))\n\
                         }}\n\
                         __other => Err(<D::Error as ::serde::de::Error>::custom(format!(\"expected a {arity}-element sequence for {name}, found {{}}\", __other.kind()))),\n\
                     }}",
                    pulls = pulls.join(", ")
                )
            };
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::de::Deserializer<'de>>(__d: D) -> ::std::result::Result<Self, D::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, arity) in variants {
                if *arity == 0 {
                    unit_arms.push_str(&format!("{v:?} => return Ok({name}::{v}),\n"));
                } else if *arity == 1 {
                    payload_arms.push_str(&format!(
                        "{v:?} => return Ok({name}::{v}(::serde::de::from_content(__value).map_err({err})?)),\n"
                    ));
                } else {
                    let pulls: Vec<String> = (0..*arity)
                        .map(|_| {
                            format!(
                                "::serde::de::from_content(__it.next().unwrap()).map_err({err})?"
                            )
                        })
                        .collect();
                    payload_arms.push_str(&format!(
                        "{v:?} => {{\n\
                             match __value {{\n\
                                 ::serde::Content::Seq(__items) if __items.len() == {arity} => {{\n\
                                     let mut __it = __items.into_iter();\n\
                                     return Ok({name}::{v}({pulls}));\n\
                                 }}\n\
                                 _ => return Err(<D::Error as ::serde::de::Error>::custom(concat!(\"malformed payload for variant `\", {v:?}, \"`\"))),\n\
                             }}\n\
                         }}\n",
                        pulls = pulls.join(", ")
                    ));
                }
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::de::Deserializer<'de>>(__d: D) -> ::std::result::Result<Self, D::Error> {{\n\
                         match __d.into_content()? {{\n\
                             ::serde::Content::Str(__s) => {{\n\
                                 match __s.as_str() {{\n{unit_arms}\
                                     __other => Err(<D::Error as ::serde::de::Error>::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__key, __value) = __m.into_iter().next().unwrap();\n\
                                 let __key = match __key {{\n\
                                     ::serde::Content::Str(__s) => __s,\n\
                                     _ => return Err(<D::Error as ::serde::de::Error>::custom(\"non-string variant key\")),\n\
                                 }};\n\
                                 #[allow(unused_variables)]\n\
                                 match __key.as_str() {{\n{payload_arms}\
                                     __other => Err(<D::Error as ::serde::de::Error>::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(<D::Error as ::serde::de::Error>::custom(format!(\"expected a variant of {name}, found {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
