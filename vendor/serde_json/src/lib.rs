//! Offline JSON backend for the vendored serde stub: a strict recursive
//! descent parser and a compact writer over [`serde::Content`].

use serde::de::{from_content, Deserialize};
use serde::ser::{to_content, Serialize};
use serde::Content;
use std::fmt;
use std::io;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &to_content(value));
    Ok(out)
}

/// Serialize a value as JSON into a writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Deserialize a value from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    from_content(content).map_err(Error::from)
}

/// Deserialize a value from a JSON byte slice.
pub fn from_slice<'de, T: Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

// --------------------------------------------------------------------------
// Writer.

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Content::Str(s) => write_json_string(out, s),
                    other => {
                        // JSON object keys must be strings; render scalars.
                        let mut key = String::new();
                        write_content(&mut key, other);
                        write_json_string(out, &key);
                    }
                }
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error(format!(
                "unexpected character {:?} at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: plain UTF-8 up to the next quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unexpected end of string escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                        }
                        other => return Err(Error(format!("invalid escape \\{}", other as char))),
                    }
                }
                Some(b) if b < 0x20 => return Err(Error("raw control character in string".into())),
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if text == "-" || text.is_empty() {
            return Err(Error(format!("invalid number at offset {start}")));
        }
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
    }
}
