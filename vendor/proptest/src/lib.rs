//! Offline stub of the `proptest` property-testing API.
//!
//! Covers the surface this workspace uses: the `proptest!` macro, `Strategy`
//! with `prop_map`/`prop_filter`/`boxed`, range and tuple strategies,
//! `Just`, `any`, `prop_oneof!`, `collection::vec`, `array::uniform32` and
//! a character-class subset of the string-pattern strategies. Cases are
//! generated from a deterministic per-test seed; there is no shrinking — a
//! failing case reports its message and case number.

/// Cases generated per property.
pub const CASES: usize = 64;

/// Deterministic splitmix64 generator seeded from the test name.
pub struct TestRng(u64);

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Build the deterministic RNG for one property test.
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng(h)
}

pub mod strategy {
    use super::TestRng;

    /// A value generator. No shrinking in the stub.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
                self.generate(rng)
            }))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    /// Type-erased strategy (what `prop_oneof!` arms become).
    pub struct BoxedStrategy<V>(pub std::rc::Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed arms (`prop_oneof!`).
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    /// `&str` as a pattern strategy: a sequence of literal characters and
    /// `[...]` character classes, each optionally repeated `{m,n}`/`{m}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (choices, lo, hi) in &atoms {
                let n = if lo == hi {
                    *lo
                } else {
                    *lo + rng.below((hi - lo + 1) as u64) as usize
                };
                for _ in 0..n {
                    let idx = rng.below(choices.len() as u64) as usize;
                    out.push(choices[idx]);
                }
            }
            out
        }
    }

    /// Parse into `(choices, min_reps, max_reps)` atoms.
    fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices: Vec<char> = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let c = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            for code in (c as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    i += 1; // ']'
                    set
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().unwrap_or('\\');
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional {m,n} / {m} repetition.
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {}")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                    None => {
                        let n = body.trim().parse().unwrap();
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if !choices.is_empty() {
                atoms.push((choices, lo, hi));
            }
        }
        atoms
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    /// Strategy produced by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// `Vec` strategy with a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `[V; 32]` from an element strategy.
    pub struct Uniform32<S>(S);

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use arbitrary::any;
pub use strategy::{Just, Strategy};

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Property assertion; fails the current case without panicking the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l != *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!("case {} of {}: {}", __case, stringify!($name), __msg);
                    }
                }
            }
        )*
    };
}
