//! Streaming/batch equivalence: the sharded ingest pipeline must be
//! verdict-for-verdict identical to the sequential batch path, at any
//! shard count — the property that makes the streaming architecture a
//! drop-in deployment of the paper's offline analysis.

use fp_bench::stream_report;
use fp_inconsistent::prelude::*;
use fp_types::detect::provenance;
use fp_types::{sym, AttrId, BehaviorTrace, Fingerprint, SimTime, TrafficSource};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Full-pipeline equivalence on the seed campaign at 2% scale: DataDome,
/// BotD, spatial and temporal verdicts from the sharded streaming path all
/// equal the batch path, per request, at shard counts 1, 2 and 8.
#[test]
fn streaming_pipeline_matches_batch_on_seed_campaign() {
    for shards in [1, 2, 8] {
        let report = stream_report(Scale::ratio(0.02), shards);
        assert!(
            report.requests > 5_000,
            "campaign too small: {}",
            report.requests
        );
        assert!(
            report.identical(),
            "streaming diverged from batch at {shards} shards: {report:?}"
        );
    }
}

/// The recorded `VerdictSet` carries all seven provenances when
/// FP-Inconsistent runs inline next to the default chain (the two
/// commercial simulators, the cross-layer TLS check and the session
/// behaviour detector).
#[test]
fn streamed_store_records_named_provenance() {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.01),
        seed: 11,
    });
    let mut batch_site = HoneySite::new();
    for id in ServiceId::all() {
        batch_site.register_token(campaign.token_of(id));
    }
    batch_site.ingest_all(campaign.bot_requests.iter().cloned());
    let store = batch_site.into_store();
    let engine = FpInconsistent::mine(&store, &MineConfig::default());

    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    for d in engine.detectors() {
        site.push_detector(d);
    }
    site.ingest_stream(campaign.bot_requests.clone(), 4);
    let streamed = site.into_store();
    assert_eq!(streamed.len(), store.len());
    let r = streamed.get(0).unwrap();
    for name in [
        provenance::DATADOME,
        provenance::BOTD,
        provenance::FP_TLS_CROSSLAYER,
        provenance::FP_BEHAVIOR,
        provenance::FP_SPATIAL,
        provenance::FP_TEMPORAL_COOKIE,
        provenance::FP_TEMPORAL_IP,
    ] {
        assert!(
            r.verdicts.verdict(name).is_some(),
            "missing provenance {name}"
        );
    }
}

// ---------------------------------------------------------------------
// Property: shard count never changes verdicts, on adversarial synthetic
// streams (shared cookies, shared IPs, churning fingerprints).

fn build_request(
    i: u64,
    cookie: Option<u64>,
    ip_low: u8,
    cores: i64,
    tz_offset: i64,
    device: &str,
) -> Request {
    Request {
        id: 0,
        time: SimTime::from_day(0, i),
        site_token: sym("prop-tok"),
        ip: Ipv4Addr::new(73, 10, 0, ip_low),
        cookie,
        fingerprint: Fingerprint::new()
            .with(AttrId::UaDevice, device)
            .with(AttrId::HardwareConcurrency, cores)
            .with(AttrId::TimezoneOffset, tz_offset)
            .with(AttrId::Timezone, "America/Los_Angeles"),
        tls: fp_types::TlsFacet::unobserved(),
        behavior: BehaviorTrace::silent(),
        cadence: fp_types::BehaviorFacet::unobserved(),
        source: TrafficSource::RealUser,
    }
}

proptest! {
    #[test]
    fn shard_count_never_changes_verdicts(
        rows in proptest::collection::vec(
            (
                prop_oneof![Just(None), (0u64..4).prop_map(Some)], // cookie: shared or fresh
                0u8..4,                                            // ip: heavily shared
                (2i64..9),                                         // cores: churn per cookie
                prop_oneof![Just(480i64), Just(-60i64), Just(0i64)], // tz churn per ip
                prop_oneof![Just("iPhone"), Just("Mac"), Just("Windows")],
            ),
            1..60,
        )
    ) {
        let requests: Vec<Request> = rows
            .iter()
            .enumerate()
            .map(|(i, (cookie, ip, cores, tz, device))| {
                build_request(i as u64, *cookie, *ip, *cores, *tz, device)
            })
            .collect();

        let run = |shards: usize| {
            let mut site = HoneySite::new();
            site.register_token(sym("prop-tok"));
            let engine = FpInconsistent::from_rules(
                RuleSet::new(),
                fp_inconsistent::core::engine::EngineConfig {
                    generalize_location: true,
                    ..Default::default()
                },
            );
            for d in engine.detectors() {
                site.push_detector(d);
            }
            site.ingest_stream(requests.clone(), shards);
            site.into_store()
        };

        let baseline = run(1);
        for shards in [2usize, 8] {
            let store = run(shards);
            prop_assert_eq!(store.len(), baseline.len());
            for (a, b) in baseline.iter().zip(store.iter()) {
                prop_assert_eq!(a.cookie, b.cookie);
                prop_assert_eq!(&a.verdicts, &b.verdicts, "request {} at {} shards", a.id, shards);
            }
        }
    }
}
