//! §5.2 integration: the evasion classifiers and the Table 2 importance
//! ranking, trained on the recorded campaign through the real pipeline.

use fp_botnet::{Campaign, CampaignConfig};
use fp_honeysite::{HoneySite, RequestStore};
use fp_ml::importance::attribute_importance;
use fp_ml::{FeatureSchema, Gbdt, GbdtParams};
use fp_types::detect::provenance;
use fp_types::{AttrId, Scale, ServiceId};

fn store() -> RequestStore {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.05),
        seed: 0x31337,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.into_store()
}

struct Trained {
    schema: FeatureSchema,
    model: Gbdt,
    test_accuracy: f64,
    matrix: fp_ml::Matrix,
}

fn train(store: &RequestStore, dd: bool) -> Trained {
    let sample: Vec<&fp_honeysite::StoredRequest> = store.iter().step_by(2).collect();
    let mut schema = FeatureSchema::induce(sample.iter().map(|r| &r.fingerprint));
    schema.retain_attrs(|a| {
        !matches!(
            a,
            AttrId::Ja3 | AttrId::Ja4 | AttrId::WebGlVendor | AttrId::WebGlRenderer
        )
    });
    let labels: Vec<f64> = sample
        .iter()
        .map(|r| {
            f64::from(u8::from(if dd {
                !r.verdicts.bot(provenance::DATADOME)
            } else {
                !r.verdicts.bot(provenance::BOTD)
            }))
        })
        .collect();
    let matrix = schema.encode_all(sample.iter().map(|r| &r.fingerprint));
    let (train_idx, test_idx) = fp_ml::gbdt::train_test_split(matrix.rows, 0.1, 17);
    let m_train = fp_ml::gbdt::select(&matrix, &train_idx);
    let y_train: Vec<f64> = train_idx.iter().map(|&i| labels[i]).collect();
    let m_test = fp_ml::gbdt::select(&matrix, &test_idx);
    let y_test: Vec<f64> = test_idx.iter().map(|&i| labels[i]).collect();
    let model = Gbdt::train(
        &m_train,
        &y_train,
        GbdtParams {
            rounds: 20,
            ..GbdtParams::default()
        },
    );
    let test_accuracy = model.accuracy(&m_test, &y_test);
    Trained {
        schema,
        model,
        test_accuracy,
        matrix: m_train,
    }
}

#[test]
fn botd_classifier_is_nearly_perfect_datadome_is_not() {
    let store = store();
    let dd = train(&store, true);
    let botd = train(&store, false);
    // Paper: BotD 97.7%, DataDome 81.7%. Shape: BotD ≈ deterministic from
    // fingerprints; DataDome capped by behaviour-based evasion the
    // fingerprint cannot see.
    assert!(
        botd.test_accuracy > 0.97,
        "BotD accuracy {}",
        botd.test_accuracy
    );
    assert!(
        (0.78..0.95).contains(&dd.test_accuracy),
        "DataDome accuracy {} should be materially below BotD",
        dd.test_accuracy
    );
    assert!(botd.test_accuracy - dd.test_accuracy > 0.05);
}

#[test]
fn table2_importance_membership() {
    let store = store();
    let top = |dd: bool, k: usize| -> Vec<AttrId> {
        let t = train(&store, dd);
        attribute_importance(&t.model, &t.schema, &t.matrix, 1500)
            .into_iter()
            .take(k)
            .map(|i| i.attr)
            .collect()
    };
    let dd_top = top(true, 8);
    // Paper Table 2 (DataDome): Vendor Flavors, Plugins, Screen Frame,
    // Hardware Concurrency, Forced Colors. Hardware Concurrency is the
    // load-bearing one (the Figure 5 effect); at least one more of the
    // paper's five must rank, though exact order varies with sampling.
    assert!(dd_top.contains(&AttrId::HardwareConcurrency), "{dd_top:?}");
    assert!(
        dd_top.iter().any(|a| matches!(
            a,
            AttrId::VendorFlavors | AttrId::Plugins | AttrId::ScreenFrame | AttrId::ForcedColors
        )),
        "{dd_top:?}"
    );

    let botd_top = top(false, 6);
    // Paper Table 2 (BotD): Vendor Flavors, Plugins, Touch Support,
    // Vendor, Contrast.
    assert!(botd_top.contains(&AttrId::Plugins), "{botd_top:?}");
    assert!(botd_top.contains(&AttrId::VendorFlavors), "{botd_top:?}");
    assert!(
        botd_top.contains(&AttrId::TouchSupport) || botd_top.contains(&AttrId::MaxTouchPoints),
        "{botd_top:?}"
    );
}

#[test]
fn importance_excludes_filtered_attributes() {
    let store = store();
    let t = train(&store, true);
    let ranked = attribute_importance(&t.model, &t.schema, &t.matrix, 500);
    assert!(ranked
        .iter()
        .all(|i| !matches!(i.attr, AttrId::Ja3 | AttrId::Ja4)));
}
