//! `TrajectoryReport` serialization stability.
//!
//! The behaviour component of every `RUNFP_V1` run fingerprint folds the
//! rounds' canonical JSON lines (`RoundStats::to_json`), so a silent
//! field reorder, rename, or representation change would flip every
//! golden fingerprint in CI without pointing at the real culprit. This
//! snapshot pins the exact bytes: if it fails, the serialization changed
//! — decide deliberately, re-record `tests/golden/trajectory_report.json`
//! *and* every golden fingerprint together.

use fp_inconsistent::core::evaluate::{
    CohortReport, DetectorCohortStats, MutationStats, RoundStats, TrajectoryReport,
};
use fp_types::defense::RetrainSpend;
use fp_types::{sym, ActionLedger, Cohort, ContentHasher, MitigationAction};

/// A synthetic two-round trajectory exercising every serialized field
/// with distinct, nonzero values: two detectors deliberately pushed in
/// non-alphabetical order (the encoding must sort them), a round with a
/// deployed pack hash and one without, denials, every action bucket, and
/// the full defender-spend ledger including eviction columns.
fn synthetic_trajectory() -> TrajectoryReport {
    let sizes = |a, b, c, d, e| {
        let mut out = [0u64; Cohort::ALL.len()];
        out[Cohort::RealUser.index()] = a;
        out[Cohort::BotService.index()] = b;
        out[Cohort::AiAgent.index()] = c;
        out[Cohort::TlsLaggard.index()] = d;
        out[Cohort::Privacy.index()] = e;
        out
    };
    let detector = |name: &str, flags| DetectorCohortStats {
        detector: sym(name),
        precision: 0.5,
        flag_rate: [0.0; Cohort::ALL.len()], // derivable — never serialized
        flags,
    };
    let mut actions = ActionLedger::default();
    for (action, times) in [
        (MitigationAction::Allow, 4),
        (MitigationAction::ShadowFlag, 3),
        (MitigationAction::Captcha, 2),
        (MitigationAction::Block(600), 1),
    ] {
        for _ in 0..times {
            actions.record(action);
        }
    }
    let mut pack = ContentHasher::new();
    pack.add_line("ua_os=iOS AND platform=Win64");

    let mut trajectory = TrajectoryReport::new();
    trajectory.push(RoundStats {
        round: 0,
        cohorts: CohortReport {
            cohort_sizes: sizes(100, 1000, 30, 20, 10),
            detectors: vec![
                // Reverse-alphabetical on purpose: the snapshot proves
                // the encoder sorts by provenance name.
                detector("fp-spatial", sizes(2, 425, 9, 3, 1)),
                detector("datadome", sizes(5, 519, 11, 14, 2)),
            ],
        },
        denied: sizes(0, 37, 1, 0, 0),
        actions,
        mutation: MutationStats {
            adapted_requests: 210,
            mutated_attrs: 1404,
            rotated_ips: 76,
            tls_upgrades: 5,
            cadence_humanised: 17,
        },
        defense: RetrainSpend {
            retrained_members: 0,
            records_scanned: 0,
            rules_active: 117,
            records_evicted: 0,
            records_resident: 1160,
            pack_hash: None,
            rules_added: 0,
            rules_removed: 0,
        },
        obs: Default::default(),
    });
    trajectory.push(RoundStats {
        round: 1,
        cohorts: CohortReport {
            cohort_sizes: sizes(100, 980, 30, 20, 10),
            detectors: vec![detector("fp-spatial", sizes(1, 310, 8, 3, 1))],
        },
        denied: sizes(1, 52, 0, 1, 0),
        actions: ActionLedger {
            allowed: 900,
            shadow_flagged: 0,
            captchas: 0,
            blocked: 240,
        },
        mutation: MutationStats::default(),
        defense: RetrainSpend {
            retrained_members: 1,
            records_scanned: 2140,
            rules_active: 198,
            records_evicted: 1160,
            records_resident: 2140,
            pack_hash: Some(pack.finish()),
            rules_added: 81,
            rules_removed: 0,
        },
        obs: Default::default(),
    });
    trajectory
}

#[test]
fn trajectory_json_matches_the_golden_snapshot() {
    let actual = synthetic_trajectory().to_json();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        // Deliberate re-record: `REGEN_GOLDEN=1 cargo test --test trajectory_json`.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/trajectory_report.json"
        );
        std::fs::write(path, format!("{actual}\n")).unwrap();
    }
    let golden = include_str!("golden/trajectory_report.json");
    assert_eq!(
        actual,
        golden.trim_end(),
        "TrajectoryReport::to_json changed — this byte sequence is what \
         every RUNFP_V1 behaviour component folds, so re-record this \
         snapshot AND every golden run fingerprint together"
    );
}

#[test]
fn trajectory_json_shape_is_versioned_and_detector_sorted() {
    let json = synthetic_trajectory().to_json();
    assert!(
        json.starts_with("{\"version\":\"RUNFP_V1\",\"rounds\":[{\"round\":0,"),
        "the envelope must lead with the fold's version tag: {json}"
    );
    assert_eq!(json.matches("{\"round\":").count(), 2);
    // Detector order in the encoding is alphabetical regardless of chain
    // mount order (the synthetic report pushes fp-spatial first).
    let dd = json.find("\"detector\":\"datadome\"").unwrap();
    let sp = json.find("\"detector\":\"fp-spatial\"").unwrap();
    assert!(dd < sp, "detectors must encode in sorted name order");
    // Both pack-hash representations appear: null, and a quoted 32-hex
    // content hash.
    assert!(json.contains("\"pack_hash\":null"));
    let hash_at = json.find("\"pack_hash\":\"").unwrap() + "\"pack_hash\":\"".len();
    let hash = &json[hash_at..hash_at + 32];
    assert!(hash.chars().all(|c| c.is_ascii_hexdigit()));
}

#[test]
fn behavior_component_is_pinned() {
    // The fold of the snapshot above, pinned end to end: catches a change
    // to the hash discipline itself (lane seeds, domain tag, finish mix)
    // even when the JSON bytes are untouched.
    assert_eq!(
        synthetic_trajectory().behavior_component().to_string(),
        "09893a6fd2b1d7dbcb8f07ceb678edb4",
    );
}
