//! The `RUNFP_V1` attestation properties, end to end:
//!
//! * two arenas played from the same config reproduce the identical
//!   component breakdown and fingerprint (run-to-run determinism);
//! * the fingerprint is invariant to ingest shard count (an execution
//!   parameter, deliberately excluded) and to record insertion order
//!   (the behaviour fold counts, it does not sequence);
//! * any single config or seed perturbation flips the fingerprint, and
//!   the component breakdown names exactly the axis that moved (the iff
//!   property, both directions — untouched components stay identical);
//! * a frozen and a re-mining arena from the same base config diverge in
//!   `config.remine` and `behavior` only;
//! * component hashing and the golden-ledger text form hold their own
//!   iff/roundtrip properties under random inputs.

use fp_arena::{Arena, ArenaConfig, ResponsePolicy, DEFAULT_BLOCK_TTL_SECS};
use fp_bench::CAMPAIGN_SEED;
use fp_inconsistent::core::evaluate::{cohort_report, RoundStats, TrajectoryReport};
use fp_types::runfp::{component_of, ComponentHash, RunComponents};
use fp_types::{RetentionPolicy, Scale};
use proptest::prelude::*;

/// The base configuration every perturbation test varies one axis of.
/// Re-mining is on (cadence 1) so the retention axis is behaviourally
/// live — a frozen defender retains no history, which would leave a
/// retention change with nothing to act on.
fn base_config() -> ArenaConfig {
    ArenaConfig {
        scale: Scale::ratio(0.004),
        seed: CAMPAIGN_SEED,
        shards: 1,
        policy: ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS),
        remine_cadence: Some(1),
        retention: RetentionPolicy::KeepAll,
        agent_humanise: None,
        behavior_refit: None,
        serve: None,
    }
}

/// Play `rounds` adaptive rounds and return the run's component
/// breakdown.
fn play(config: ArenaConfig, rounds: u32) -> RunComponents {
    let mut arena = Arena::new(config);
    arena.adaptive_defaults();
    arena.run(rounds);
    arena.run_components()
}

#[test]
fn identical_configs_reproduce_the_fingerprint() {
    let config = ArenaConfig {
        scale: Scale::ratio(0.005),
        remine_cadence: Some(2),
        ..base_config()
    };
    let a = play(config, 4);
    let b = play(config, 4);
    assert_eq!(
        a.diverging(&b),
        Vec::<String>::new(),
        "same config, same campaign: every component must reproduce\n{}",
        a.diff_report(&b, "first run", "second run")
    );
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn frozen_vs_remining_diverges_in_cadence_and_behavior_only() {
    let config = ArenaConfig {
        scale: Scale::ratio(0.005),
        remine_cadence: None,
        ..base_config()
    };
    let frozen = play(config, 3);
    let remined = play(
        ArenaConfig {
            remine_cadence: Some(1),
            ..config
        },
        3,
    );
    assert_eq!(
        frozen.diverging(&remined),
        ["config.remine", "behavior"],
        "same campaign, different defender lifecycle: the breakdown must \
         blame the cadence and what it bought — nothing else\n{}",
        frozen.diff_report(&remined, "frozen", "re-mined")
    );
    assert_ne!(frozen.fingerprint(), remined.fingerprint());
}

#[test]
fn every_single_config_perturbation_flips_the_fingerprint() {
    let rounds = 2;
    let base = play(base_config(), rounds);

    let perturbations: Vec<(&str, ArenaConfig, Vec<&str>)> = vec![
        (
            "seed",
            ArenaConfig {
                seed: CAMPAIGN_SEED + 1,
                ..base_config()
            },
            vec!["seed", "behavior"],
        ),
        (
            "scale",
            ArenaConfig {
                scale: Scale::ratio(0.005),
                ..base_config()
            },
            vec!["config.scale", "behavior"],
        ),
        (
            "policy",
            ArenaConfig {
                policy: ResponsePolicy::captcha(),
                ..base_config()
            },
            vec!["config.policy", "behavior"],
        ),
        (
            "retention",
            ArenaConfig {
                retention: RetentionPolicy::SlidingWindow { epochs: 1 },
                ..base_config()
            },
            vec!["config.retention", "behavior"],
        ),
        (
            "remine",
            ArenaConfig {
                remine_cadence: Some(2),
                ..base_config()
            },
            vec!["config.remine", "behavior"],
        ),
        (
            "humanise",
            ArenaConfig {
                agent_humanise: Some(0.35),
                ..base_config()
            },
            vec!["config.humanise", "behavior"],
        ),
        (
            "refit",
            ArenaConfig {
                behavior_refit: Some(1),
                ..base_config()
            },
            vec!["config.refit", "behavior"],
        ),
    ];

    for (axis, config, expected) in perturbations {
        let perturbed = play(config, rounds);
        assert_ne!(
            base.fingerprint(),
            perturbed.fingerprint(),
            "perturbing {axis} must flip the run fingerprint"
        );
        assert_eq!(
            base.diverging(&perturbed),
            expected,
            "perturbing {axis}: the breakdown must name exactly the moved \
             axis and the behaviour it changed\n{}",
            base.diff_report(&perturbed, "base", axis)
        );
    }
}

#[test]
fn shard_count_is_invisible_to_the_fingerprint() {
    let config = ArenaConfig {
        scale: Scale::ratio(0.005),
        ..base_config()
    };
    let sequential = play(config, 2);
    for shards in [2, 8] {
        let sharded = play(ArenaConfig { shards, ..config }, 2);
        assert_eq!(
            sequential.diverging(&sharded),
            Vec::<String>::new(),
            "shards are an execution parameter, not an observable: {shards} \
             shards must replay the sequential run exactly\n{}",
            sequential.diff_report(&sharded, "1 shard", "sharded")
        );
    }
}

// ── Property layer: the hashing and ledger contracts under random input ──

/// A synthetic `StoredRequest` varying only in the facets the behaviour
/// fold can see: its cohort and its per-detector verdicts.
fn record(choice: u8, datadome: bool, botd: bool) -> fp_inconsistent::honeysite::StoredRequest {
    use fp_types::{
        sym, AttrId, BehaviorTrace, Fingerprint, ServiceId, SimTime, TrafficSource, VerdictSet,
    };
    let source = match choice % 4 {
        0 => TrafficSource::RealUser,
        1 => TrafficSource::Bot(ServiceId(1 + choice % 20)),
        2 => TrafficSource::AiAgent,
        _ => TrafficSource::TlsLaggard,
    };
    fp_inconsistent::honeysite::StoredRequest {
        id: 0,
        time: SimTime::EPOCH,
        site_token: sym("t"),
        ip_hash: u64::from(choice),
        ip_offset_minutes: 0,
        ip_region: sym("United States of America/California"),
        ip_lat: 0.0,
        ip_lon: 0.0,
        asn: 1,
        asn_flagged: false,
        ip_blocklisted: false,
        tor_exit: false,
        cookie: u64::from(choice),
        tls: fp_types::TlsFacet::unobserved(),
        fingerprint: Fingerprint::new().with(AttrId::UaDevice, "iPhone"),
        source,
        behavior: BehaviorTrace::silent(),
        cadence: fp_types::BehaviorFacet::unobserved(),
        verdicts: VerdictSet::from_services(datadome, botd),
    }
}

/// Lift two random 64-bit words into the 128-bit hash domain (the stubbed
/// proptest has no `u128` strategy).
fn wide(pairs: &[(u64, u64)]) -> Vec<u128> {
    pairs
        .iter()
        .map(|(hi, lo)| (u128::from(*hi) << 64) | u128::from(*lo))
        .collect()
}

/// Build a breakdown with positional component names from raw hashes.
fn build(hashes: &[u128]) -> RunComponents {
    let mut c = RunComponents::new();
    for (i, h) in hashes.iter().enumerate() {
        c.push(&format!("c{i}"), ComponentHash::from_u128(*h));
    }
    c
}

proptest! {
    /// Component hashes are a pure function of (name, lines) — equal iff
    /// the folded line sequences are equal, in both directions.
    #[test]
    fn component_hash_changes_iff_lines_change(
        a in proptest::collection::vec("[a-z0-9=.:]{0,12}", 0..6),
        b in proptest::collection::vec("[a-z0-9=.:]{0,12}", 0..6),
    ) {
        let ha = component_of("x", &a.iter().map(String::as_str).collect::<Vec<_>>());
        let hb = component_of("x", &b.iter().map(String::as_str).collect::<Vec<_>>());
        prop_assert_eq!(a == b, ha == hb);
    }

    /// The run fingerprint moves iff some component moved: perturbing one
    /// component's hash flips it, and rebuilding the identical breakdown
    /// reproduces it.
    #[test]
    fn fingerprint_changes_iff_a_component_changes(
        words in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..6),
        victim in any::<usize>(),
        delta in 1u64..u64::MAX,
    ) {
        let hashes = wide(&words);
        let base = build(&hashes);
        prop_assert_eq!(base.fingerprint(), build(&hashes).fingerprint());

        let mut perturbed = hashes.clone();
        let i = victim % perturbed.len();
        perturbed[i] = perturbed[i].wrapping_add(u128::from(delta));
        prop_assert_eq!(
            build(&perturbed).fingerprint() == base.fingerprint(),
            perturbed == hashes
        );
    }

    /// The golden-ledger text form is lossless: parse(render(c)) == c,
    /// and the declared fingerprint self-verifies.
    #[test]
    fn ledger_roundtrips(words in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..6)) {
        let c = build(&wide(&words));
        let parsed = RunComponents::parse_ledger(&c.to_ledger()).unwrap();
        prop_assert_eq!(parsed.diverging(&c), Vec::<String>::new());
        prop_assert_eq!(parsed.fingerprint(), c.fingerprint());
    }

    /// The behaviour fold counts records, it does not sequence them:
    /// ingesting the same multiset of records in any order produces the
    /// identical round JSON and behaviour component.
    #[test]
    fn behavior_fold_is_invariant_to_record_insertion_order(
        original in proptest::collection::vec((any::<u8>(), any::<bool>(), any::<bool>()), 1..24),
        shuffle_seed in any::<u64>(),
    ) {
        // Fisher–Yates off a splitmix64 stream (the stubbed proptest has
        // no shuffle strategy).
        let mut shuffled = original.clone();
        let mut s = shuffle_seed;
        for i in (1..shuffled.len()).rev() {
            s = fp_types::splitmix64(s);
            let j = (s % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let stats_of = |specs: &[(u8, bool, bool)]| {
            let mut store = fp_inconsistent::honeysite::RequestStore::new();
            for (choice, dd, botd) in specs {
                store.push(record(*choice, *dd, *botd));
            }
            RoundStats {
                round: 0,
                cohorts: cohort_report(&store),
                denied: Default::default(),
                actions: Default::default(),
                mutation: Default::default(),
                defense: Default::default(),
                obs: Default::default(),
            }
        };
        let a = stats_of(&original);
        let b = stats_of(&shuffled);
        prop_assert_eq!(a.to_json(), b.to_json());
        let fold = |stats: RoundStats| {
            let mut t = TrajectoryReport::new();
            t.push(stats);
            t.behavior_component()
        };
        prop_assert_eq!(fold(a), fold(b));
    }
}
