//! End-to-end coverage of the compiled rule pack on the real pipeline:
//!
//! * the compiled ingest hot path is flag-for-flag the interpreted rule
//!   set on the seed campaign's recorded store;
//! * the deployed pack hash is invariant to the ingest shard count;
//! * a frozen arena's `fp-spatial` verdicts, across rounds, are exactly
//!   what the deployed pack's own rule set implies (the compiled matcher
//!   never drifts from its source rules inside the closed loop);
//! * a re-mining arena's per-round pack hash changes exactly on the
//!   rounds whose re-mine changed the rule set, the trajectory is
//!   deterministic and shard-invariant, and an in-flight pack snapshot
//!   stays fully usable after the end-of-round hot swap (no barrier).

use fp_arena::{Arena, ArenaConfig, ResponsePolicy, DEFAULT_BLOCK_TTL_SECS};
use fp_bench::{campaign_stream, honey_site_for, recorded_campaign, CAMPAIGN_SEED};
use fp_botnet::{Campaign, CampaignConfig};
use fp_inconsistent_core::{FpInconsistent, MineConfig, RulePack};
use fp_types::detect::provenance;
use fp_types::Scale;

fn arena_config(remine: Option<u32>, shards: usize) -> ArenaConfig {
    ArenaConfig {
        scale: Scale::ratio(0.01),
        seed: CAMPAIGN_SEED,
        shards,
        policy: ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS),
        remine_cadence: remine,
        ..ArenaConfig::default()
    }
}

/// The tentpole claim at campaign scale: over every record the seed
/// campaign produced, the compiled pack and the interpreted rule set
/// flag identically — and the deployed hash is the rule set's content
/// hash, so the artifact is versioned by exactly what it does.
#[test]
fn compiled_path_is_flag_for_flag_on_the_seed_campaign() {
    let (_, store) = recorded_campaign(Scale::ratio(0.02));
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    assert!(!engine.rules().is_empty(), "the seed campaign mines rules");
    assert_eq!(engine.pack().hash(), engine.rules().content_hash());

    let mut flagged = 0usize;
    for record in store.iter() {
        let compiled = engine.spatial_flag(record);
        assert_eq!(
            compiled,
            engine.spatial_flag_interpreted(record),
            "request {} diverged between compiled and interpreted paths",
            record.id
        );
        flagged += compiled as usize;
    }
    assert!(
        flagged > 0,
        "the equivalence must be exercised by real hits"
    );
    assert!(flagged < store.len(), "...and by real misses");
}

/// Mining from stores ingested at different shard counts deploys packs
/// with the identical content hash: the artifact version is a function of
/// the mined behaviour, never of pipeline topology.
#[test]
fn pack_hash_is_invariant_to_the_ingest_shard_count() {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.02),
        seed: CAMPAIGN_SEED,
    });
    let mut hashes = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut site = honey_site_for(&campaign);
        site.ingest_stream(campaign_stream(&campaign), shards);
        let store = site.into_store();
        let engine = FpInconsistent::mine(&store, &MineConfig::default());
        hashes.push((shards, engine.pack().hash(), engine.rules().len()));
    }
    assert!(hashes[0].2 > 0, "the campaign mines rules");
    for (shards, hash, rules) in &hashes[1..] {
        assert_eq!(
            (*hash, *rules),
            (hashes[0].1, hashes[0].2),
            "{shards}-shard ingest deployed a different pack than sequential"
        );
    }
}

/// A frozen defender's `fp-spatial` verdicts across arena rounds are
/// recomputable from the deployed pack's own rule set: rebuild a
/// reference engine from `arena.spatial_pack().to_rule_set()` and replay
/// every admitted record through the *interpreted* path.
#[test]
fn frozen_arena_verdicts_match_the_deployed_packs_rules() {
    let mut arena = Arena::new(arena_config(None, 1));
    arena.adaptive_defaults();

    let pack = arena.spatial_pack();
    assert_eq!(pack.to_rule_set().content_hash(), pack.hash());
    let reference = FpInconsistent::from_rules(pack.to_rule_set(), arena.engine().config());

    let mut checked = 0usize;
    for _ in 0..3 {
        let round = arena.step();
        for record in round.store.iter() {
            assert_eq!(
                record.verdicts.bot(provenance::FP_SPATIAL),
                reference.spatial_flag_interpreted(record),
                "round {} request {}: the inline compiled verdict is not \
                 the deployed rules' verdict",
                round.round,
                record.id
            );
            checked += 1;
        }
    }
    assert!(checked > 0);

    // Frozen defender ⇒ one hash forever, and it is still the deployed one.
    let trajectory = arena.trajectory();
    for hash in trajectory.pack_hash_trajectory() {
        assert_eq!(hash, Some(pack.hash()));
    }
    assert_eq!(trajectory.total_rule_churn(), 0);
    assert_eq!(arena.spatial_pack().hash(), pack.hash());
}

/// The golden-hash ledger as a test: across a re-mining arena the
/// per-round pack hash changes exactly on the rounds whose re-mine
/// changed the rule set, and the last ledgered hash is the pack actually
/// deployed for the next round.
#[test]
fn remining_arena_hash_changes_exactly_when_the_rule_set_does() {
    let mut arena = Arena::new(arena_config(Some(2), 1));
    arena.adaptive_defaults();
    arena.run(4);
    let trajectory = arena.trajectory();

    let spends: Vec<_> = trajectory.rounds.iter().map(|r| r.defense).collect();
    assert!(spends.iter().all(|s| s.pack_hash.is_some()));
    let mut changes = 0usize;
    for (i, pair) in spends.windows(2).enumerate() {
        let (prev, cur) = (&pair[0], &pair[1]);
        let changed = cur.pack_hash != prev.pack_hash;
        let churned = cur.rules_added + cur.rules_removed > 0;
        assert_eq!(
            changed,
            churned,
            "round {}: hash change ({changed}) must coincide with rule churn ({churned})",
            i + 1
        );
        changes += changed as usize;
    }
    assert!(
        changes > 0,
        "a 4-round adaptive arena must re-mine new rules"
    );
    assert_eq!(
        spends.last().unwrap().pack_hash,
        Some(arena.spatial_pack().hash()),
        "the ledger's last hash is the deployed artifact"
    );
}

/// Identical configurations replay to the identical hash trajectory, and
/// the trajectory is invariant to the ingest shard count — the two axes
/// the content hash is specified to be independent of.
#[test]
fn pack_hash_trajectory_is_deterministic_and_shard_invariant() {
    let run = |shards: usize| {
        let mut arena = Arena::new(arena_config(Some(1), shards));
        arena.adaptive_defaults();
        arena.run(3);
        arena.trajectory().pack_hash_trajectory()
    };
    let sequential = run(1);
    assert!(sequential.iter().all(Option::is_some));
    assert_eq!(
        run(1),
        sequential,
        "same config must replay the same hashes"
    );
    assert_eq!(
        run(4),
        sequential,
        "shard count must not leak into the hash"
    );
}

/// An ingest-side pack snapshot taken before an end-of-round re-mine
/// stays fully usable after the hot swap: old readers finish on the old
/// artifact, new forks see the new one, and nobody waits on a barrier.
#[test]
fn pack_snapshot_survives_the_end_of_round_hot_swap() {
    let mut arena = Arena::new(arena_config(Some(1), 1));
    arena.adaptive_defaults();
    let round0 = arena.step();

    let snapshot: std::sync::Arc<RulePack> = arena.spatial_pack();
    let before: Vec<bool> = round0.store.iter().map(|r| snapshot.matches(r)).collect();

    let round1 = arena.step(); // end-of-round re-mine swaps the slot
    if round1.stats.defense.rules_added + round1.stats.defense.rules_removed > 0 {
        assert_ne!(arena.spatial_pack().hash(), snapshot.hash());
    }
    // The retained snapshot still evaluates, bit-for-bit as before.
    let after: Vec<bool> = round0.store.iter().map(|r| snapshot.matches(r)).collect();
    assert_eq!(before, after);
    assert_eq!(snapshot.to_rule_set().content_hash(), snapshot.hash());
}
