//! Serving-layer equivalence and backpressure: the continuously running
//! service ([`HoneySite::serve`]) must be verdict-for-verdict identical
//! to the batch paths for every admitted request, shed *exactly* the
//! over-capacity remainder under a flash crowd, and never deadlock.

use fp_honeysite::serve::{SERVE_REQUESTS_DENIED, SERVE_REQUESTS_SHED};
use fp_honeysite::SubmitOutcome;
use fp_inconsistent::prelude::*;
use fp_obs::MetricsRegistry;
use fp_types::{
    sym, AttrId, BehaviorTrace, Fingerprint, OverflowPolicy, ServeConfig, SimTime, TrafficSource,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

fn build_request(
    i: u64,
    cookie: Option<u64>,
    ip_low: u8,
    cores: i64,
    tz_offset: i64,
    device: &str,
) -> Request {
    Request {
        id: 0,
        time: SimTime::from_day(0, i),
        site_token: sym("serve-tok"),
        ip: Ipv4Addr::new(73, 11, 0, ip_low),
        cookie,
        fingerprint: Fingerprint::new()
            .with(AttrId::UaDevice, device)
            .with(AttrId::HardwareConcurrency, cores)
            .with(AttrId::TimezoneOffset, tz_offset)
            .with(AttrId::Timezone, "America/Los_Angeles"),
        tls: fp_types::TlsFacet::unobserved(),
        behavior: BehaviorTrace::silent(),
        cadence: fp_types::BehaviorFacet::unobserved(),
        source: TrafficSource::RealUser,
    }
}

/// A varied synthetic stream: shared cookies, shared IPs, churning
/// hardware — the anchors the per-cookie/per-IP temporal detectors key on.
fn varied_requests(count: u64) -> Vec<Request> {
    (0..count)
        .map(|i| {
            build_request(
                i,
                (i % 3 != 0).then_some(i % 5),
                (i % 4) as u8,
                2 + (i % 7) as i64,
                [480, -60, 0][(i % 3) as usize],
                ["iPhone", "Mac", "Windows"][(i % 3) as usize],
            )
        })
        .collect()
}

/// A site running the default chain plus the engine's spatial/temporal
/// detectors — full scope coverage (stateless, per-IP, per-cookie).
fn full_chain_site() -> HoneySite {
    let mut site = HoneySite::new();
    site.register_token(sym("serve-tok"));
    let engine = FpInconsistent::from_rules(
        RuleSet::new(),
        fp_inconsistent::core::engine::EngineConfig {
            generalize_location: true,
            ..Default::default()
        },
    );
    for d in engine.detectors() {
        site.push_detector(d);
    }
    site
}

/// The burst integration test (flash crowd at 4× the ingress capacity):
/// (a) verdicts for every admitted request are identical to the batch
/// path, (b) the shed counter equals *exactly* the over-capacity
/// remainder, (c) no stage deadlocks — the whole drain completes under a
/// timeout.
#[test]
fn burst_at_4x_capacity_sheds_exactly_and_matches_batch() {
    const CAPACITY: usize = 32;
    const BURST: usize = 4 * CAPACITY;
    let requests = varied_requests(BURST as u64);

    let registry = Arc::new(MetricsRegistry::new());
    let mut site = full_chain_site();
    site.set_metrics(registry.clone());
    // Paused + Shed: the enricher holds off, so exactly the first
    // `CAPACITY` submissions fill the ingress queue and every one after
    // that is shed — deterministically, no race against the drain.
    let mut service = site.serve(ServeConfig {
        shards: 2,
        ingress_capacity: CAPACITY,
        shard_capacity: 8,
        overflow: OverflowPolicy::Shed,
        start_paused: true,
    });
    for request in requests.iter().cloned() {
        let _ = service.submit(request);
    }
    assert_eq!(service.enqueued_count(), CAPACITY as u64);
    assert_eq!(
        service.shed_count(),
        (BURST - CAPACITY) as u64,
        "shed must be exactly the over-capacity remainder"
    );
    service.resume();

    // Deadlock guard: the drain must complete well under the timeout.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(service.finish());
    });
    let site = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("serving drain deadlocked");
    let served = site.into_store();

    // Admitted = the first CAPACITY submissions (the queue filled in
    // submit order). Their verdicts must equal the sequential batch path
    // over the same prefix, record for record.
    let mut batch_site = full_chain_site();
    batch_site.ingest_all(requests[..CAPACITY].iter().cloned());
    let batch = batch_site.into_store();
    assert_eq!(served.len(), CAPACITY);
    assert_eq!(batch.len(), CAPACITY);
    for (a, b) in batch.iter().zip(served.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.cookie, b.cookie, "cookie issuance must match");
        assert_eq!(a.verdicts, b.verdicts, "request {}", a.id);
    }

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(SERVE_REQUESTS_SHED),
        Some((BURST - CAPACITY) as u64)
    );
    assert_eq!(
        snap.counter(fp_honeysite::site::REQUESTS_ADMITTED),
        Some(CAPACITY as u64)
    );
    let latency = snap
        .histogram(fp_honeysite::site::ADMISSION_TO_VERDICT_NS)
        .expect("latency histogram registered");
    assert_eq!(latency.count(), CAPACITY as u64);
}

/// Blocking backpressure: with a tiny ingress queue and Block overflow,
/// every submission eventually lands — nothing shed, order preserved.
#[test]
fn block_overflow_completes_everything_through_tiny_queues() {
    let requests = varied_requests(100);
    let mut service = full_chain_site().serve(ServeConfig {
        shards: 2,
        ingress_capacity: 2,
        shard_capacity: 2,
        overflow: OverflowPolicy::Block,
        start_paused: false,
    });
    for request in requests.iter().cloned() {
        assert_eq!(service.submit(request), SubmitOutcome::Enqueued);
    }
    assert_eq!(service.shed_count(), 0);
    let store = service.finish().into_store();
    assert_eq!(store.len(), 100);
    let ids: Vec<u64> = store.iter().map(|r| r.id).collect();
    assert_eq!(ids, (0..100).collect::<Vec<u64>>(), "in-order commit");
}

/// The admission gate runs before enqueue: denied requests never reach a
/// queue, never consume a cookie, and are counted.
#[test]
fn admission_gate_denies_on_the_hot_path() {
    let registry = Arc::new(MetricsRegistry::new());
    let mut site = full_chain_site();
    site.set_metrics(registry.clone());
    let mut service = site.serve(ServeConfig::with_shards(1));
    let requests = varied_requests(20);
    let mut denied = 0u64;
    for (i, request) in requests.iter().cloned().enumerate() {
        let outcome = service.submit_with_gate(request, |_, _ip_hash| i % 4 != 0);
        if i % 4 == 0 {
            assert_eq!(outcome, SubmitOutcome::Denied);
            denied += 1;
        } else {
            assert_eq!(outcome, SubmitOutcome::Enqueued);
        }
    }
    assert_eq!(service.denied_count(), denied);
    let store = service.finish().into_store();
    assert_eq!(store.len(), 20 - denied as usize);
    assert_eq!(
        registry.snapshot().counter(SERVE_REQUESTS_DENIED),
        Some(denied)
    );
}

// ---------------------------------------------------------------------
// Property: batch↔serve flag identity at 1, 2 and 8 shards, on
// adversarial synthetic streams (shared cookies, shared IPs, churn).

proptest! {
    #[test]
    fn serve_flags_match_batch_at_1_2_8_shards(
        rows in proptest::collection::vec(
            (
                prop_oneof![Just(None), (0u64..4).prop_map(Some)], // cookie: shared or fresh
                0u8..4,                                            // ip: heavily shared
                (2i64..9),                                         // cores: churn per cookie
                prop_oneof![Just(480i64), Just(-60i64), Just(0i64)], // tz churn per ip
                prop_oneof![Just("iPhone"), Just("Mac"), Just("Windows")],
            ),
            1..60,
        )
    ) {
        let requests: Vec<Request> = rows
            .iter()
            .enumerate()
            .map(|(i, (cookie, ip, cores, tz, device))| {
                build_request(i as u64, *cookie, *ip, *cores, *tz, device)
            })
            .collect();

        let mut batch_site = full_chain_site();
        batch_site.ingest_all(requests.iter().cloned());
        let baseline = batch_site.into_store();

        for shards in [1usize, 2, 8] {
            let mut service = full_chain_site().serve(ServeConfig {
                shards,
                ingress_capacity: 4,
                shard_capacity: 4,
                overflow: OverflowPolicy::Block,
                start_paused: false,
            });
            for request in requests.iter().cloned() {
                prop_assert_eq!(service.submit(request), SubmitOutcome::Enqueued);
            }
            let store = service.finish().into_store();
            prop_assert_eq!(store.len(), baseline.len());
            for (a, b) in baseline.iter().zip(store.iter()) {
                prop_assert_eq!(a.cookie, b.cookie);
                prop_assert_eq!(&a.verdicts, &b.verdicts, "request {} at {} shards", a.id, shards);
            }
        }
    }
}
