//! §7.5 / Appendix G integration: privacy-enhancing technologies through
//! the full pipeline, judged by rules mined from bot traffic.

use fp_botnet::{privacy, Campaign, CampaignConfig};
use fp_honeysite::{HoneySite, RequestStore};
use fp_inconsistent_core::{evaluate, FpInconsistent, MineConfig};
use fp_types::detect::provenance;
use fp_types::{PrivacyTech, Scale, ServiceId};

fn bot_engine() -> FpInconsistent {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.05),
        seed: 0xBEEF,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    FpInconsistent::mine(&site.into_store(), &MineConfig::default())
}

fn tech_store(tech: PrivacyTech) -> RequestStore {
    let requests = privacy::generate(tech, 0xBEEF);
    let mut site = HoneySite::new();
    site.register_token(requests[0].site_token);
    site.ingest_all(requests);
    site.into_store()
}

#[test]
fn brave_triggers_temporal_but_not_spatial_flags() {
    let engine = bot_engine();
    let store = tech_store(PrivacyTech::Brave);
    let (spatial, temporal, _) = evaluate::flag_rate(&store, &engine);
    assert_eq!(
        spatial, 0.0,
        "Brave's alterations are plausible — no spatial rule may fire"
    );
    assert!(
        temporal > 0.2,
        "desktop farbling under a kept cookie must trip temporal analysis: {temporal}"
    );
}

#[test]
fn brave_datadome_flags_after_churn_window() {
    // Appendix G: "roughly after the first 10 requests on each device,
    // DataDome starts detecting all requests from Brave" → ≈41% of 300.
    let store = tech_store(PrivacyTech::Brave);
    let dd = store
        .iter()
        .filter(|r| r.verdicts.bot(provenance::DATADOME))
        .count() as f64
        / store.len() as f64;
    assert!((dd - 0.41).abs() < 0.06, "Brave DataDome rate {dd}");
    let botd = store
        .iter()
        .filter(|r| r.verdicts.bot(provenance::BOTD))
        .count();
    assert_eq!(botd, 0, "BotD does not flag Brave");
}

#[test]
fn tor_is_fully_flagged_by_both_datadome_and_rules() {
    let engine = bot_engine();
    let store = tech_store(PrivacyTech::Tor);
    let dd = store
        .iter()
        .filter(|r| r.verdicts.bot(provenance::DATADOME))
        .count();
    assert_eq!(dd, store.len(), "DataDome blocks all Tor exits");
    let botd = store
        .iter()
        .filter(|r| r.verdicts.bot(provenance::BOTD))
        .count();
    assert_eq!(botd, 0, "BotD passes Tor (a real Firefox)");
    let (spatial, _, combined) = evaluate::flag_rate(&store, &engine);
    assert_eq!(
        spatial, 1.0,
        "every Tor request carries the exit/timezone mismatch"
    );
    assert_eq!(combined, 1.0);
}

#[test]
fn blockers_are_completely_untouched() {
    let engine = bot_engine();
    for tech in [
        PrivacyTech::Safari,
        PrivacyTech::UblockOrigin,
        PrivacyTech::AdblockPlus,
    ] {
        let store = tech_store(tech);
        let dd = store
            .iter()
            .filter(|r| r.verdicts.bot(provenance::DATADOME))
            .count();
        let botd = store
            .iter()
            .filter(|r| r.verdicts.bot(provenance::BOTD))
            .count();
        let (_, _, combined) = evaluate::flag_rate(&store, &engine);
        assert_eq!(dd, 0, "{tech:?} DataDome");
        assert_eq!(botd, 0, "{tech:?} BotD");
        assert_eq!(combined, 0.0, "{tech:?} FP-Inconsistent");
    }
}

#[test]
fn experiment_sizes_match_the_paper() {
    for tech in PrivacyTech::ALL {
        assert_eq!(tech_store(tech).len(), 300, "{tech:?}");
    }
}
