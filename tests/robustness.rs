//! Fault injection on the measurement pipeline (the smoltcp examples ship
//! `--drop-chance`-style knobs; this is the analysis-side equivalent).
//! Real collection infrastructure drops requests, receives retries
//! (duplicates), and sees arrival jitter — none of which may change the
//! study's conclusions materially.

use fp_botnet::{Campaign, CampaignConfig};
use fp_honeysite::{stats, HoneySite, RequestStore};
use fp_inconsistent_core::{evaluate, FpInconsistent, MineConfig};
use fp_types::{mix2, Request, Scale, ServiceId};

fn requests() -> (Campaign, Vec<Request>) {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.04),
        seed: 0x0B5,
    });
    let reqs = campaign.bot_requests.clone();
    (campaign, reqs)
}

fn ingest(campaign: &Campaign, reqs: Vec<Request>) -> RequestStore {
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(reqs);
    site.into_store()
}

fn combined_detection(store: &RequestStore) -> (f64, f64) {
    let engine = FpInconsistent::mine(store, &MineConfig::default());
    let (_, report) = evaluate::evaluate(store, &engine);
    report.combined
}

#[test]
fn random_request_loss_does_not_move_the_rates() {
    let (campaign, reqs) = requests();
    let baseline = ingest(&campaign, reqs.clone());
    let (dd0, botd0) = stats::overall_evasion(&baseline);

    // Drop 15% of requests at random (collection outage / sampling).
    let kept: Vec<Request> = reqs
        .into_iter()
        .enumerate()
        .filter(|(i, _)| fp_types::unit_f64(mix2(0xD20, *i as u64)) >= 0.15)
        .map(|(_, r)| r)
        .collect();
    let store = ingest(&campaign, kept);
    let (dd, botd) = stats::overall_evasion(&store);
    assert!((dd - dd0).abs() < 0.01, "evasion under loss: {dd} vs {dd0}");
    assert!(
        (botd - botd0).abs() < 0.01,
        "evasion under loss: {botd} vs {botd0}"
    );

    let (cdd0, cbotd0) = combined_detection(&baseline);
    let (cdd, cbotd) = combined_detection(&store);
    assert!(
        (cdd - cdd0).abs() < 0.015,
        "combined DD under loss: {cdd} vs {cdd0}"
    );
    assert!(
        (cbotd - cbotd0).abs() < 0.015,
        "combined BotD under loss: {cbotd} vs {cbotd0}"
    );
}

#[test]
fn duplicate_requests_do_not_inflate_detection() {
    let (campaign, reqs) = requests();
    let baseline = ingest(&campaign, reqs.clone());
    let (cdd0, cbotd0) = combined_detection(&baseline);

    // 10% of requests arrive twice (client retries). The duplicate carries
    // identical content — notably the same cookie and fingerprint, so the
    // temporal engine must not flag it (repeating a known value is not an
    // inconsistency under the literal rule; under burned persistence it
    // inherits the cookie's prior state either way).
    let mut duplicated = Vec::with_capacity(reqs.len() * 11 / 10);
    for (i, r) in reqs.into_iter().enumerate() {
        let retry = fp_types::unit_f64(mix2(0xD0B, i as u64)) < 0.10;
        duplicated.push(r.clone());
        if retry {
            duplicated.push(r);
        }
    }
    let store = ingest(&campaign, duplicated);
    let (cdd, cbotd) = combined_detection(&store);
    assert!(
        (cdd - cdd0).abs() < 0.015,
        "combined DD under retries: {cdd} vs {cdd0}"
    );
    assert!(
        (cbotd - cbotd0).abs() < 0.015,
        "combined BotD under retries: {cbotd} vs {cbotd0}"
    );
}

#[test]
fn arrival_jitter_barely_moves_temporal_analysis() {
    let (campaign, mut reqs) = requests();
    let baseline = ingest(&campaign, reqs.clone());
    let engine0 = FpInconsistent::mine(&baseline, &MineConfig::default());
    let (_, report0) = evaluate::evaluate(&baseline, &engine0);

    // Swap adjacent requests at random: out-of-order delivery within a
    // small window (load balancers, clock skew).
    for i in (1..reqs.len()).step_by(3) {
        if fp_types::unit_f64(mix2(0x717, i as u64)) < 0.5 {
            reqs.swap(i - 1, i);
        }
    }
    let store = ingest(&campaign, reqs);
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    let (_, report) = evaluate::evaluate(&store, &engine);
    // Temporal flags depend on order; adjacent-swap jitter may flip which
    // request of a pair gets flagged but not how many cookies burn.
    assert!(
        (report.temporal.0 - report0.temporal.0).abs() < 0.01,
        "temporal DD under jitter: {} vs {}",
        report.temporal.0,
        report0.temporal.0
    );
    assert!(
        (report.combined.0 - report0.combined.0).abs() < 0.01,
        "combined DD under jitter: {} vs {}",
        report.combined.0,
        report0.combined.0
    );
}

#[test]
fn foreign_traffic_never_contaminates_the_dataset() {
    // Fuzz the admission gate: a flood of requests with random tokens must
    // leave the store untouched (the ground-truth property).
    let (campaign, reqs) = requests();
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    let mut rng = fp_types::Splittable::new(0xF0E);
    let mut stray = 0u64;
    for r in reqs.iter().take(500) {
        let mut bad = r.clone();
        bad.site_token = fp_types::sym(&format!("fuzz{}", rng.next_u64()));
        assert!(site.ingest(bad).is_none());
        stray += 1;
    }
    assert_eq!(site.store().len(), 0);
    assert_eq!(site.rejected_count(), stray);
}
