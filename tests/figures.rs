//! Shape assertions for every figure of the paper's analysis sections —
//! the same computations as the `fp-bench` binaries, pinned as tests.

use fp_botnet::{Campaign, CampaignConfig};
use fp_fingerprint::catalog::is_real_iphone_resolution;
use fp_honeysite::{stats, HoneySite, RequestStore};
use fp_netsim::GeoTarget;
use fp_types::detect::provenance;
use fp_types::{AttrId, Scale, ServiceId, TrafficSource};
use std::collections::HashMap;

fn store() -> RequestStore {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.08),
        seed: 0xF16,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.into_store()
}

#[test]
fn fig4_any_pdf_plugin_nearly_guarantees_botd_evasion() {
    let store = store();
    for plugin in fp_fingerprint::catalog::CHROMIUM_PDF_PLUGINS {
        let mut n = 0u64;
        let mut evaded = 0u64;
        for r in store.iter() {
            if r.fingerprint
                .get(AttrId::Plugins)
                .as_list()
                .map(|l| l.contains(&plugin))
                .unwrap_or(false)
            {
                n += 1;
                evaded += u64::from(!r.verdicts.bot(provenance::BOTD));
            }
        }
        let p = evaded as f64 / n.max(1) as f64;
        assert!(n > 100, "{plugin}: too few samples");
        assert!(
            p > 0.93 && p < 1.0,
            "{plugin}: P(evade) = {p} should be near-but-below 1"
        );
    }
}

#[test]
fn fig5_core_count_cdf_separates_evasion_groups() {
    let store = store();
    let below8 = |ids: &[u8]| {
        let set: Vec<ServiceId> = ids.iter().map(|&i| ServiceId(i)).collect();
        let cores: Vec<i64> = store
            .iter()
            .filter(|r| matches!(r.source, TrafficSource::Bot(id) if set.contains(&id)))
            .filter_map(|r| r.fingerprint.get(AttrId::HardwareConcurrency).as_int())
            .collect();
        cores.iter().filter(|&&c| c < 8).count() as f64 / cores.len().max(1) as f64
    };
    let high = below8(&[8, 9, 17]);
    let low = below8(&[7, 11, 16]);
    assert!(
        high > 0.72,
        "high-evasion group < 8 cores: {high} (paper 84.7%)"
    );
    assert!(
        (0.25..0.50).contains(&low),
        "low-evasion group < 8 cores: {low} (paper 38.16%)"
    );
    assert!(high > low + 0.3, "groups must separate: {high} vs {low}");
}

#[test]
fn fig6_device_type_evasion_ordering() {
    let store = store();
    let mut by: HashMap<&str, (u64, u64)> = HashMap::new();
    for r in store.iter() {
        let Some(device) = r.fingerprint.get(AttrId::UaDevice).as_str() else {
            continue;
        };
        let class = match device {
            "iPhone" | "iPad" | "Mac" | "Other" => device,
            "K" => "Other",
            _ => continue,
        };
        let e = by.entry(class).or_default();
        e.0 += 1;
        e.1 += u64::from(!r.verdicts.bot(provenance::DATADOME));
    }
    let p = |d: &str| {
        let (n, e) = by[d];
        e as f64 / n as f64
    };
    // The paper's Figure 6 ordering, iPhone on top around 0.5.
    assert!((p("iPhone") - 0.5).abs() < 0.08, "iPhone {}", p("iPhone"));
    assert!(p("iPhone") > p("Other"), "iPhone > Other");
    assert!(p("Other") > p("iPad"), "Other > iPad");
    assert!(p("iPad") > p("Mac"), "iPad > Mac");
}

#[test]
fn fig7_resolution_census() {
    let store = store();
    let mut census: HashMap<(u16, u16), (u64, u64)> = HashMap::new();
    for r in store.iter() {
        if r.fingerprint.get(AttrId::UaDevice).as_str() != Some("iPhone") {
            continue;
        }
        if let Some(res) = r.fingerprint.get(AttrId::ScreenResolution).as_resolution() {
            let e = census.entry(res).or_default();
            e.0 += 1;
            e.1 += u64::from(!r.verdicts.bot(provenance::DATADOME));
        }
    }
    let total = census.len();
    let evading = census.values().filter(|(_, e)| *e > 0).count();
    assert!(
        (78..=83).contains(&total),
        "distinct resolutions {total} (paper 83)"
    );
    assert!(
        (38..=42).contains(&evading),
        "evading resolutions {evading} (paper 42)"
    );

    let mut ranked: Vec<((u16, u16), u64, f64)> = census
        .iter()
        .map(|(&res, &(n, e))| (res, n, e as f64 / n.max(1) as f64))
        .collect();
    ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then(b.1.cmp(&a.1)));
    let fake = ranked
        .iter()
        .take(10)
        .filter(|(res, _, _)| !is_real_iphone_resolution(*res))
        .count();
    assert_eq!(fake, 9, "paper: 9 of the top 10 do not exist");
}

#[test]
fn fig8_geo_match_rates() {
    let store = store();
    let rate = |service: u8, target: GeoTarget, by_tz: bool| {
        let mut n = 0u64;
        let mut matched = 0u64;
        for r in store.iter() {
            if r.source != TrafficSource::Bot(ServiceId(service)) {
                continue;
            }
            n += 1;
            let offset = if by_tz {
                r.fingerprint
                    .get(AttrId::Timezone)
                    .as_str()
                    .and_then(fp_netsim::geo::offset_of_timezone)
            } else {
                Some(r.ip_offset_minutes)
            };
            if offset.map(|o| target.offset_matches(o)).unwrap_or(false) {
                matched += 1;
            }
        }
        matched as f64 / n.max(1) as f64
    };
    // §6.2's headline pair: Canada 76.52% by timezone vs 92.44% by IP;
    // Europe 56% vs 99.83%.
    let canada_tz = rate(11, GeoTarget::Canada, true);
    let canada_ip = rate(11, GeoTarget::Canada, false);
    let europe_tz = rate(12, GeoTarget::Europe, true);
    let europe_ip = rate(12, GeoTarget::Europe, false);
    assert!((canada_tz - 0.7652).abs() < 0.06, "Canada tz {canada_tz}");
    assert!(canada_ip > 0.90, "Canada ip {canada_ip}");
    assert!((europe_tz - 0.56).abs() < 0.07, "Europe tz {europe_tz}");
    assert!(europe_ip > 0.95, "Europe ip {europe_ip}");
    assert!(
        canada_ip > canada_tz && europe_ip > europe_tz,
        "IP always looks cleaner than the timezone"
    );
}

#[test]
fn fig9_renewal_spikes_and_fresh_fingerprints() {
    let store = store();
    let series = stats::daily_series(&store);
    assert!(
        series[30].requests > series[25].requests * 2,
        "Oct 01 renewal spike"
    );
    assert!(
        series[60].requests > series[55].requests * 2,
        "Oct 31 renewal spike"
    );
    // Unique counts sit visibly below requests on busy days.
    assert!(series[0].unique_cookies < series[0].requests * 95 / 100);
    // Fresh fingerprints keep appearing late in the campaign.
    let late: u64 = series[70..].iter().map(|d| d.unique_fingerprints).sum();
    assert!(late > 100, "fresh fingerprints after two months: {late}");
}

#[test]
fn fig10_top_cookie_platform_spread() {
    let store = store();
    let (cookie, count) = store.top_cookie().unwrap();
    assert!(count > 60, "top cookie volume {count}");
    let mut platforms: HashMap<&str, u64> = HashMap::new();
    for r in store.with_cookie(cookie) {
        if let Some(p) = r.fingerprint.get(AttrId::Platform).as_str() {
            *platforms.entry(p).or_default() += 1;
        }
    }
    assert!(platforms.len() >= 6, "platform spread {platforms:?}");
    let total: u64 = platforms.values().sum();
    let win = platforms.get("Win32").copied().unwrap_or(0) as f64 / total as f64;
    assert!((win - 0.38).abs() < 0.09, "Win32 share {win} (paper 38%)");
}

#[test]
fn sec5_1_blocklist_shape() {
    let store = store();
    let b = stats::blocklist_stats(&store);
    assert!(
        (b.asn_flagged_share - 0.8254).abs() < 0.04,
        "ASN share {}",
        b.asn_flagged_share
    );
    assert!(
        (b.ip_blocked_share - 0.1586).abs() < 0.03,
        "IP coverage {}",
        b.ip_blocked_share
    );
    // Evasion among listed traffic stays near (DataDome) or above (BotD)
    // the overall rates — Takeaway 2.
    assert!(b.asn_dd_evasion > 0.40 && b.asn_botd_evasion > 0.48);
    assert!(
        b.ip_botd_evasion > 0.60,
        "blocked-IP BotD evasion {}",
        b.ip_botd_evasion
    );
}
