//! End-to-end coverage of the closed-loop arena:
//!
//! * round 0 is flag-for-flag the single-shot cohort campaign (the arena
//!   provably *starts from* the pre-arena pipeline);
//! * adapting bot services measurably erode the static rule set's recall
//!   across rounds, the §6 dynamic;
//! * cross-layer TLS recall on the laggard cohort decays only when the
//!   fleet pays the stack-upgrade cost — mutating everything else changes
//!   nothing;
//! * truthful real users' false-positive rates stay flat under every
//!   shipped policy;
//! * under Block, a humanising agent fleet erodes the behaviour
//!   detector's AiAgent recall round over round, and a cadence-1
//!   re-fitting `BehaviorMember` claws it back — paid for in scan spend,
//!   never in truthful-user FPR;
//! * shard invariance holds inside arena rounds;
//! * a sliding-window retention policy bounds the re-mining defender's
//!   resident memory and scan spend on a long-horizon (12-round) arena
//!   while keeping the recall clawback within a few points of the
//!   unbounded window;
//! * the CAPTCHA-then-block hybrid challenges first offenders and blocks
//!   recidivists.

use fp_arena::{
    Arena, ArenaConfig, Composite, DefenseStack, FingerprintMutation, IpRotation, ResponsePolicy,
    TlsUpgrade, DEFAULT_BLOCK_TTL_SECS,
};
use fp_bench::{recorded_cohort_campaign, CAMPAIGN_SEED};
use fp_types::detect::provenance;
use fp_types::{CaptchaEscalation, Cohort, MitigationAction, RetentionPolicy, Scale};

fn block_config(scale: f64, seed: u64) -> ArenaConfig {
    ArenaConfig {
        scale: Scale::ratio(scale),
        seed,
        shards: 1,
        policy: ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS),
        ..ArenaConfig::default()
    }
}

/// Round 0 of an arena built from `DefenseStack::default()` + a static
/// policy is the pre-redesign pipeline, record for record and action for
/// action: same admissions, same stored facts, same named verdicts from
/// all six detectors — and the stack's decision path hands every record
/// exactly the action the old per-record `ResponsePolicy::decide` loop
/// did.
#[test]
fn round0_is_identical_to_the_single_shot_campaign() {
    let scale = Scale::ratio(0.01);
    let (_, single_shot) = recorded_cohort_campaign(scale);
    let mut arena = Arena::with_stack(
        ArenaConfig {
            scale,
            seed: CAMPAIGN_SEED,
            shards: 1,
            policy: ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS),
            ..ArenaConfig::default()
        },
        DefenseStack::default(),
    );
    arena.adaptive_defaults(); // strategies must not perturb round 0
    let round0 = arena.step();

    assert_eq!(round0.store.len(), single_shot.len());
    for (a, b) in round0.store.iter().zip(single_shot.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.time, b.time);
        assert_eq!(a.ip_hash, b.ip_hash);
        assert_eq!(a.cookie, b.cookie);
        assert_eq!(a.tls, b.tls);
        assert_eq!(a.source, b.source);
        assert_eq!(
            a.fingerprint.digest(),
            b.fingerprint.digest(),
            "request {}",
            a.id
        );
        assert_eq!(a.verdicts, b.verdicts, "request {}", a.id);
    }

    // Action-for-action: replay the pre-redesign mitigation loop (the
    // static policy applied per record's verdicts, nothing else) over the
    // single-shot store and compare the per-source tallies with what the
    // stack's decision path actually produced.
    let policy = ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS);
    let mut legacy: std::collections::HashMap<fp_types::TrafficSource, (u64, u64, u64)> =
        std::collections::HashMap::new();
    for record in single_shot.iter() {
        let slot = legacy.entry(record.source).or_default();
        match policy.decide(&record.verdicts) {
            MitigationAction::Allow | MitigationAction::ShadowFlag => slot.0 += 1,
            MitigationAction::Captcha => slot.1 += 1,
            MitigationAction::Block(_) => slot.2 += 1,
        }
    }
    for (source, (allowed, captchas, blocked)) in legacy {
        let outcome = round0.outcome(source);
        assert_eq!(outcome.allowed, allowed, "{source:?} allowed");
        assert_eq!(outcome.captchas, captchas, "{source:?} captchas");
        assert_eq!(outcome.blocked, blocked, "{source:?} blocked");
        assert_eq!(outcome.denied, 0, "{source:?}: round 0 has no blocklist");
    }
}

/// Under a Block policy, adapting services measurably erode the static
/// mined rule set (fp-spatial) and launder the temporal anchor — while a
/// behaviour-reading detector is not similarly evaded by fingerprint
/// mutation.
#[test]
fn adapting_bots_erode_static_rule_recall() {
    let mut arena = Arena::new(block_config(0.02, CAMPAIGN_SEED));
    arena.adaptive_defaults();
    arena.run(4);
    let trajectory = arena.trajectory();

    let spatial = trajectory.recall_trajectory(provenance::FP_SPATIAL, Cohort::BotService);
    assert!(
        spatial[0] > 0.2,
        "round 0 must have meaningful spatial recall, got {}",
        spatial[0]
    );
    assert!(
        *spatial.last().unwrap() < spatial[0] - 0.05,
        "adaptation must erode mined-rule recall measurably: {spatial:?}"
    );

    let temporal = trajectory.recall_trajectory(provenance::FP_TEMPORAL_COOKIE, Cohort::BotService);
    assert!(
        *temporal.last().unwrap() < temporal[0].max(1e-9),
        "per-request cookie rotation must launder the temporal anchor: {temporal:?}"
    );

    // The behaviour-reading detector is not evaded by attribute mutation:
    // its recall holds (or rises, as churn trips its per-IP rule).
    let dd = trajectory.recall_trajectory(provenance::DATADOME, Cohort::BotService);
    assert!(
        *dd.last().unwrap() > dd[0] - 0.05,
        "DataDome must hold against fingerprint mutation: {dd:?}"
    );

    // The adversary paid for the evasion, and the arena accounted for it.
    let last = trajectory.rounds.last().unwrap();
    assert!(last.mutation.adapted_requests > 0);
    assert!(last.mutation.rotated_ips > 0);
    assert!(last.mutation.mutated_attrs > last.mutation.adapted_requests);
}

/// The laggard fleet escapes the cross-layer detector only by paying the
/// stack-upgrade cost; rotating IPs and mutating JS attributes instead
/// changes nothing about the handshake and keeps recall at 100 %.
#[test]
fn laggard_tls_recall_decays_only_with_the_upgrade_cost() {
    // Fleet that pays: recall collapses as upgrades accumulate.
    let mut paying = Arena::new(block_config(0.01, 11));
    paying.set_laggard_strategy(Box::new(TlsUpgrade::new(0.15, 0.6)));
    paying.run(3);
    let decayed = paying
        .trajectory()
        .recall_trajectory(provenance::FP_TLS_CROSSLAYER, Cohort::TlsLaggard);
    assert!(decayed[0] > 0.99, "round 0 catches the whole fleet");
    assert!(
        *decayed.last().unwrap() < 0.5,
        "upgrades must erode cross-layer recall: {decayed:?}"
    );
    let upgrades: u64 = paying
        .trajectory()
        .rounds
        .iter()
        .map(|r| r.mutation.tls_upgrades)
        .sum();
    assert!(upgrades > 0, "the decay must be paid for");

    // Fleet that mutates everything *except* the stack: recall holds.
    let mut dodging = Arena::new(block_config(0.01, 11));
    dodging.set_laggard_strategy(Box::new(Composite::new(vec![
        Box::new(IpRotation::new(0.15, true)),
        Box::new(FingerprintMutation::new(0.15, 1.0)),
    ])));
    dodging.run(3);
    let held = dodging
        .trajectory()
        .recall_trajectory(provenance::FP_TLS_CROSSLAYER, Cohort::TlsLaggard);
    for (round, rate) in held.iter().enumerate() {
        assert!(
            *rate > 0.99,
            "round {round}: browser-layer mutation must not help a lagging \
             stack, recall {rate} ({held:?})"
        );
    }
}

/// Truthful users present the same honest traffic every round, so no
/// shipped policy may inflate any detector's false-positive rate on them.
/// (Under Block, the rate may *drop* — the §7.4 UA-spoofer students get
/// denied at admission — but it must never rise.)
#[test]
fn truthful_user_fpr_stays_flat_under_every_policy() {
    for policy in ResponsePolicy::all() {
        let mut arena = Arena::new(ArenaConfig {
            scale: Scale::ratio(0.01),
            seed: 23,
            shards: 1,
            policy,
            ..ArenaConfig::default()
        });
        arena.adaptive_defaults();
        arena.run(3);
        let trajectory = arena.trajectory();
        for stats in &trajectory.rounds {
            for detector in &stats.cohorts.detectors {
                let name = detector.detector.as_str();
                let fpr = trajectory.fpr_trajectory(name);
                let first = fpr[0];
                for (round, rate) in fpr.iter().enumerate() {
                    assert!(
                        *rate <= first + 0.01,
                        "policy {}: {name} FPR inflated at round {round}: {fpr:?}",
                        policy.name
                    );
                    assert!(
                        (first - *rate).abs() <= 0.06,
                        "policy {}: {name} FPR drifted at round {round}: {fpr:?}",
                        policy.name
                    );
                }
            }
        }
        // Under the invisible policies nothing changes at all: same
        // population, fresh detector state, no denials.
        if !policy.action.visible_to_client() {
            for detector in &trajectory.rounds[0].cohorts.detectors {
                let fpr = trajectory.fpr_trajectory(detector.detector.as_str());
                assert!(
                    fpr.iter().all(|r| (r - fpr[0]).abs() < 1e-12),
                    "policy {}: FPR must be exactly flat: {fpr:?}",
                    policy.name
                );
            }
        }
    }
}

/// The sharded ingest pipeline stays verdict-invariant inside arena
/// rounds: a whole adaptive campaign replays identically at any shard
/// count.
#[test]
fn shard_invariance_holds_inside_arena_rounds() {
    let run = |shards: usize| {
        let mut config = block_config(0.01, 31);
        config.shards = shards;
        let mut arena = Arena::new(config);
        arena.adaptive_defaults();
        (0..3).map(|_| arena.step()).collect::<Vec<_>>()
    };
    let baseline = run(1);
    let sharded = run(4);
    for (a, b) in baseline.iter().zip(&sharded) {
        assert_eq!(a.store.len(), b.store.len(), "round {}", a.round);
        for (x, y) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(x.verdicts, y.verdicts, "round {} request {}", a.round, x.id);
            assert_eq!(x.ip_hash, y.ip_hash);
            assert_eq!(x.cookie, y.cookie);
            assert_eq!(x.tls, y.tls);
        }
        assert_eq!(a.outcomes, b.outcomes, "round {}", a.round);
    }
}

/// The behavioural arms race, closed loop. Under Block, the seventh
/// detector catches the stock machine-cadence agent fleet from round 0;
/// a `BehaviouralMutation` strategy (mounted via `agent_humanise`)
/// gradually rewrites the fleet's cadence into the human envelope and
/// erodes the frozen detector's AiAgent recall round over round, paying
/// per-request humanisation cost the ledger accounts; and a cadence-1
/// re-fitting `BehaviorMember` re-estimates its cadence floor from the
/// retained trusted window and claws measurable recall back — with the
/// scan spend in `RetrainSpend` and the truthful-user FPR pinned flat
/// the whole time (humans are never inside the machine envelope).
#[test]
fn behaviour_arms_race_erodes_then_claws_back_agent_recall() {
    const ROUNDS: u32 = 4;
    let config = ArenaConfig {
        agent_humanise: Some(0.6),
        ..block_config(0.01, CAMPAIGN_SEED)
    };

    // Frozen thresholds: the humanised cadence walks out of the machine
    // envelope and recall rots.
    let mut frozen = Arena::new(config);
    frozen.run(ROUNDS);
    let frozen_trajectory = frozen.into_trajectory();
    let eroded = frozen_trajectory.recall_trajectory(provenance::FP_BEHAVIOR, Cohort::AiAgent);
    assert!(
        eroded[0] > 0.3,
        "round 0 must catch the stock machine cadence: {eroded:?}"
    );
    assert!(
        *eroded.last().unwrap() < eroded[0] - 0.15,
        "humanisation must erode frozen behavioural recall: {eroded:?}"
    );
    let humanised: u64 = frozen_trajectory
        .rounds
        .iter()
        .map(|r| r.mutation.cadence_humanised)
        .sum();
    assert!(humanised > 0, "the erosion must be paid for per request");

    // Re-fitting defender: the floor re-estimates from the trusted human
    // window (whose cadence variability sits far above any humanised
    // agent's) and recall recovers instead of rotting.
    let mut refit = Arena::new(ArenaConfig {
        behavior_refit: Some(1),
        ..config
    });
    refit.run(ROUNDS);
    let thresholds = refit
        .behavior_thresholds()
        .expect("Arena::new mounts the behaviour slot");
    assert_eq!(
        thresholds.cadence_cv_floor,
        fp_types::behavior::CADENCE_CV_CEILING,
        "the re-fit must hold the cadence floor at the ceiling (the human \
         envelope's p05 clamps there), poisoned forgers notwithstanding"
    );
    let trajectory = refit.into_trajectory();
    let refit_recall = trajectory.recall_trajectory(provenance::FP_BEHAVIOR, Cohort::AiAgent);
    assert!(
        (refit_recall[0] - eroded[0]).abs() < 1e-12,
        "round 0 must not depend on the re-fit cadence"
    );
    assert!(
        *refit_recall.last().unwrap() > eroded.last().unwrap() + 0.1,
        "the re-fitted floor must claw recall back over the frozen \
         detector: frozen {eroded:?} vs re-fit {refit_recall:?}"
    );

    // The clawback is bought with accounted scan spend…
    let spend = trajectory.defense_spend_trajectory();
    assert!(
        spend.iter().all(|s| s.retrained_members == 1),
        "cadence 1 re-fits the behaviour member at every round end: {spend:?}"
    );
    assert!(
        trajectory.total_defense_scans() > 0,
        "the re-fit scan spend must be accounted in the trajectory"
    );

    // …never with collateral damage: truthful users stay outside the
    // machine envelope under both defenders, at every round.
    for fpr in [
        frozen_trajectory.fpr_trajectory(provenance::FP_BEHAVIOR),
        trajectory.fpr_trajectory(provenance::FP_BEHAVIOR),
    ] {
        for (round, rate) in fpr.iter().enumerate() {
            assert!(
                *rate <= fpr[0] + 0.01,
                "behavioural FPR inflated at round {round}: {fpr:?}"
            );
        }
    }
}

/// The satellite claim of the defender lifecycle: under Block with
/// re-mining cadence 1, `fp-spatial` recall *recovers* after the
/// fingerprint-mutation round that eroded it (the refreshed rules key on
/// the mutated configurations), beats the frozen rule set by the last
/// round, and pays for it without inflating the truthful-user FPR beyond
/// the seed bound.
#[test]
fn remining_claws_spatial_recall_back_within_the_fpr_bound() {
    let frozen_cfg = block_config(0.02, CAMPAIGN_SEED);
    let mut frozen = Arena::new(frozen_cfg);
    frozen.adaptive_defaults();
    frozen.run(4);
    let frozen_spatial = frozen
        .trajectory()
        .recall_trajectory(provenance::FP_SPATIAL, Cohort::BotService);

    let mut remined = Arena::new(ArenaConfig {
        remine_cadence: Some(1),
        ..frozen_cfg
    });
    remined.adaptive_defaults();
    remined.run(4);
    let trajectory = remined.trajectory();
    let spatial = trajectory.recall_trajectory(provenance::FP_SPATIAL, Cohort::BotService);

    // Round 0 is identical by construction (re-mining happens at round
    // ends, never before the first round).
    assert!(
        (spatial[0] - frozen_spatial[0]).abs() < 1e-12,
        "round 0 must not depend on the re-mining cadence"
    );
    // The mutation round erodes both defenders the same way (round 1 runs
    // on rules mined from un-mutated traffic either way)…
    assert!(
        spatial[1] < spatial[0],
        "the mutation round must erode recall first: {spatial:?}"
    );
    // …then the rules re-mined on the mutated round deploy and recall
    // recovers instead of continuing to rot.
    let recovered = spatial[2..].iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        recovered > spatial[1] + 0.03,
        "re-mined rules must claw recall back after the erosion round: {spatial:?}"
    );
    assert!(
        spatial.last().unwrap() > frozen_spatial.last().unwrap(),
        "re-mining must beat the frozen rule set by the last round: \
         frozen {frozen_spatial:?} vs re-mined {spatial:?}"
    );

    // The cost side: the recall is bought with retraining spend, not with
    // collateral damage on the truthful population.
    let spend = trajectory.defense_spend_trajectory();
    assert!(
        spend.iter().all(|s| s.retrained_members == 1),
        "cadence 1 retrains the spatial member at every round end"
    );
    assert!(
        trajectory.total_defense_scans() > 0,
        "re-mining spend must be accounted in the trajectory"
    );
    let fpr = trajectory.fpr_trajectory(provenance::FP_SPATIAL);
    for (round, rate) in fpr.iter().enumerate() {
        assert!(
            *rate <= fpr[0] + 0.01,
            "re-mining must not inflate truthful-user FPR at round {round} \
             beyond the seed bound: {fpr:?}"
        );
    }
}

/// Shard invariance survives the defender lifecycle: with re-mining on,
/// a whole adaptive campaign still replays verdict-for-verdict identically
/// at any shard count (the re-mined rule set is a deterministic function
/// of the arrival-ordered store, which is itself shard-invariant).
#[test]
fn shard_invariance_holds_with_remining_on() {
    let run = |shards: usize| {
        let mut config = block_config(0.01, 31);
        config.remine_cadence = Some(1);
        config.shards = shards;
        let mut arena = Arena::new(config);
        arena.adaptive_defaults();
        (0..3).map(|_| arena.step()).collect::<Vec<_>>()
    };
    let baseline = run(1);
    let sharded = run(4);
    for (a, b) in baseline.iter().zip(&sharded) {
        assert_eq!(a.store.len(), b.store.len(), "round {}", a.round);
        for (x, y) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(x.verdicts, y.verdicts, "round {} request {}", a.round, x.id);
            assert_eq!(x.ip_hash, y.ip_hash);
        }
        assert_eq!(a.outcomes, b.outcomes, "round {}", a.round);
        assert_eq!(
            a.stats.defense, b.stats.defense,
            "round {}: retraining spend must not depend on shard count",
            a.round
        );
    }
}

/// The bounded-memory claim, end to end on a long-horizon (12-round)
/// adaptive arena with cadence-1 re-mining: under
/// `SlidingWindow { epochs: 2 }` the defender's peak resident training
/// records hold at ≤ 2 rounds' worth while the unbounded `KeepAll` window
/// grows linearly; the re-mining scan spend drops accordingly; and the
/// post-mutation recall clawback stays within 5 points of the unbounded
/// trajectory — forgetting stale epochs costs almost nothing, because the
/// rules that matter key on what the fleet looks like *now*.
#[test]
fn sliding_window_bounds_memory_and_spend_on_a_long_arena() {
    const ROUNDS: u32 = 12;
    let run = |retention: RetentionPolicy| {
        let mut config = block_config(0.005, CAMPAIGN_SEED);
        config.remine_cadence = Some(1);
        config.retention = retention;
        let mut arena = Arena::new(config);
        arena.adaptive_defaults();
        arena.run(ROUNDS);
        arena.into_trajectory()
    };
    let unbounded = run(RetentionPolicy::KeepAll);
    let windowed = run(RetentionPolicy::SlidingWindow { epochs: 2 });

    // Per-round admitted volume (the windowed arena's own rounds, so the
    // bound is stated against the traffic it actually saw).
    let round_sizes: Vec<u64> = windowed
        .rounds
        .iter()
        .map(|r| r.cohorts.cohort_sizes.iter().sum::<u64>())
        .collect();
    let max_round = *round_sizes.iter().max().unwrap();

    // 1. Peak resident records: bounded at ≤ 2 rounds' worth under the
    //    window; linear growth (≈ the whole campaign) without it.
    let peak_windowed = windowed.peak_resident_records();
    let peak_unbounded = unbounded.peak_resident_records();
    assert!(
        peak_windowed <= 2 * max_round,
        "a 2-epoch window must hold peak residency at ≤ 2 rounds' worth: \
         peak {peak_windowed}, max round {max_round}"
    );
    let total_unbounded: u64 = unbounded
        .rounds
        .iter()
        .map(|r| r.cohorts.cohort_sizes.iter().sum::<u64>())
        .sum();
    assert_eq!(
        peak_unbounded, total_unbounded,
        "KeepAll retains every admitted record of every round"
    );
    assert!(
        peak_unbounded > 4 * peak_windowed,
        "12 rounds of KeepAll must dwarf the 2-epoch window: \
         {peak_unbounded} vs {peak_windowed}"
    );
    // KeepAll residency grows monotonically round over round — the
    // unbounded-growth half of the claim.
    let residency: Vec<u64> = unbounded
        .rounds
        .iter()
        .map(|r| r.defense.records_resident)
        .collect();
    assert!(
        residency.windows(2).all(|w| w[0] < w[1]),
        "unbounded retention grows every round: {residency:?}"
    );

    // 2. Re-mining scan spend drops accordingly (KeepAll scans the whole
    //    history every round: quadratic total; the window scans ≤ 2
    //    rounds' worth per round: linear total).
    let scans_windowed = windowed.total_defense_scans();
    let scans_unbounded = unbounded.total_defense_scans();
    assert!(
        scans_windowed * 2 < scans_unbounded,
        "windowed re-mining must cut scan spend at least in half over 12 \
         rounds: {scans_windowed} vs {scans_unbounded}"
    );

    // 3. Eviction is accounted in the defender-spend columns.
    assert!(
        windowed.total_records_evicted() > 0,
        "the window must actually evict"
    );
    assert_eq!(unbounded.total_records_evicted(), 0, "KeepAll never evicts");

    // 4. The price of forgetting: the post-mutation fp-spatial clawback
    //    stays within 5 points of the unbounded window, round for round.
    let spatial_unbounded = unbounded.recall_trajectory(provenance::FP_SPATIAL, Cohort::BotService);
    let spatial_windowed = windowed.recall_trajectory(provenance::FP_SPATIAL, Cohort::BotService);
    assert!(
        (spatial_windowed[0] - spatial_unbounded[0]).abs() < 1e-12,
        "round 0 cannot depend on retention (nothing sealed yet)"
    );
    for (round, (w, u)) in spatial_windowed
        .iter()
        .zip(&spatial_unbounded)
        .enumerate()
        .skip(2)
    {
        assert!(
            (w - u).abs() <= 0.05,
            "round {round}: windowed recall must stay within 5 points of \
             the unbounded window: windowed {spatial_windowed:?} vs \
             unbounded {spatial_unbounded:?}"
        );
    }
    // And the clawback itself still happens under the window: recall
    // recovers from the round-1 mutation trough.
    let trough = spatial_windowed[1];
    let recovered = spatial_windowed[2..]
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    assert!(
        recovered > trough + 0.03,
        "the windowed defender must still claw recall back: {spatial_windowed:?}"
    );
}

/// The CAPTCHA-then-block hybrid: first offenders are challenged (visible,
/// nothing denied), recidivists are blocked, and the blocks feed the
/// next round's admission denials — closing the ROADMAP's
/// "CAPTCHA + block hybrid policies" item.
#[test]
fn captcha_escalation_challenges_then_blocks_across_rounds() {
    let mut arena = Arena::new(block_config(0.005, CAMPAIGN_SEED));
    arena.set_policy(Box::new(CaptchaEscalation::new(
        Box::new(ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS)),
        DEFAULT_BLOCK_TTL_SECS,
    )));
    arena.adaptive_defaults();
    let r0 = arena.step();

    let captchas: u64 = r0.outcomes.values().map(|o| o.captchas).sum();
    let blocked: u64 = r0.outcomes.values().map(|o| o.blocked).sum();
    assert!(captchas > 0, "first offenses must be challenged");
    assert!(blocked > 0, "recidivist addresses must graduate to blocks");

    // Every address's first flagged request was a challenge, never a
    // block: an address flagged exactly once in the round sits on the
    // challenge rung — one remembered strike, no binding ban — while a
    // blocked address always shows ≥ 2 offense episodes (its strike
    // plus the block) and its ban binds into the next round.
    let round1_start = fp_types::SimTime(fp_arena::ROUND_SECS);
    let mut flags_per_addr: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    for r in r0.store.iter() {
        if r.verdicts.iter().any(|(_, v)| v.is_bot()) {
            *flags_per_addr.entry(r.ip_hash).or_default() += 1;
        }
    }
    for (&hash, &flags) in &flags_per_addr {
        let offenses = arena.blocklist().offenses(hash);
        let banned = arena.blocklist().contains(hash, round1_start);
        if flags == 1 {
            assert_eq!(
                offenses, 1,
                "an address flagged once was challenged — and remembered"
            );
            assert!(!banned, "a challenge strike must never bind");
        }
        if banned {
            assert!(
                offenses >= 2,
                "a banned address must have climbed past the challenge \
                 rung: {offenses} episode(s) for {hash:#x}"
            );
        }
    }
    let challenged_only: Vec<u64> = flags_per_addr
        .iter()
        .filter(|(_, &f)| f == 1)
        .map(|(&h, _)| h)
        .collect();
    assert!(
        !challenged_only.is_empty(),
        "some addresses must stop at the challenge rung"
    );

    // Cross-round escalation: the round-0 challenge strike survived the
    // round-end purge (asserted above: offenses == 1, not reset to 0 —
    // its memory TTL outlives the boundary), so the policy's own
    // decision for that address's next offense in round 1 is a block,
    // not another challenge. Exercised directly, because the adaptive
    // fleet rotates addresses and need not naturally replay a
    // challenged-only address.
    {
        use fp_types::{DecisionContext, DecisionPolicy, Verdict, VerdictSet};
        let policy = CaptchaEscalation::new(
            Box::new(ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS)),
            DEFAULT_BLOCK_TTL_SECS,
        );
        let hash = challenged_only[0];
        let mut verdicts = VerdictSet::new();
        verdicts.record(fp_types::sym("d"), Verdict::Bot);
        let remembered = arena.blocklist().offenses(hash);
        assert_eq!(
            remembered, 1,
            "the challenge strike must be remembered across the round boundary"
        );
        let action = DecisionPolicy::decide(
            &policy,
            &DecisionContext {
                verdicts: &verdicts,
                ip_hash: hash,
                now: round1_start,
                prior_offenses: remembered,
            },
        );
        assert_eq!(
            action,
            MitigationAction::Block(DEFAULT_BLOCK_TTL_SECS),
            "a remembered challenge escalates the next offense to a block"
        );
    }

    let r1 = arena.step();
    let denied: u64 = r1.outcomes.values().map(|o| o.denied).sum();
    assert!(
        denied > 0,
        "the hybrid's blocks must bind at round-1 admission"
    );

    // Control: the plain captcha policy (no strike opt-in) never blocks
    // and never writes the blocklist.
    let mut plain = Arena::new(block_config(0.005, CAMPAIGN_SEED));
    plain.set_policy(Box::new(ResponsePolicy::captcha()));
    plain.adaptive_defaults();
    let p0 = plain.step();
    assert_eq!(p0.outcomes.values().map(|o| o.blocked).sum::<u64>(), 0);
    assert!(
        plain.blocklist().is_empty(),
        "plain captcha policies leave the blocklist untouched"
    );
}

/// Expired-entry eviction is real memory relief, not bookkeeping: under a
/// short-TTL Block policy on a long arena, the round-end
/// `purge_expired` sweeps keep the blocklist small and non-accumulating
/// (the list visibly *shrinks* across rounds), while the same arena
/// under a TTL spanning the whole campaign accumulates every episode.
#[test]
fn expired_blocklist_entries_are_evicted_under_a_long_arena() {
    let run = |ttl: u64| {
        let mut arena = Arena::new(ArenaConfig {
            policy: ResponsePolicy::block(ttl),
            ..block_config(0.005, CAMPAIGN_SEED)
        });
        arena.adaptive_defaults();
        (0..5)
            .map(|_| {
                arena.step();
                arena.blocklist().len()
            })
            .collect::<Vec<usize>>()
    };
    // 5 000 simulated seconds ≪ the 7.86M-second round: every episode
    // expires long before its round ends, so each round-end purge sweeps
    // (almost) the whole round's listings.
    let short = run(5_000);
    // A TTL spanning the whole campaign: nothing ever expires.
    let long = run(fp_arena::ROUND_SECS * 10);

    assert!(
        long.windows(2).all(|w| w[0] <= w[1]),
        "un-expiring entries only accumulate: {long:?}"
    );
    let short_peak = *short.iter().max().unwrap();
    let long_final = *long.last().unwrap();
    assert!(
        short_peak * 5 < long_final,
        "sweeping expired entries must keep the list an order smaller: \
         short peak {short_peak} vs long final {long_final} ({short:?})"
    );
    assert!(
        short.windows(2).any(|w| w[1] < w[0]) || short_peak <= 1,
        "the short-TTL list must visibly shrink across rounds: {short:?}"
    );
}
