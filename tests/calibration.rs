//! End-to-end calibration: the generated campaign, run through the real
//! honey-site pipeline, must reproduce the paper's headline measurements.
//!
//! Tolerances are a few percentage points — the test runs at reduced scale
//! and the point is the *shape* (who evades whom, and by roughly how much),
//! not the fourth decimal.

use fp_botnet::{Campaign, CampaignConfig, SERVICES};
use fp_honeysite::{stats, HoneySite};
use fp_inconsistent_core::evaluate;
use fp_inconsistent_core::{FpInconsistent, MineConfig};
use fp_types::detect::provenance;
use fp_types::{Scale, ServiceId, TrafficSource};

fn ingest(campaign: &Campaign) -> fp_honeysite::RequestStore {
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.register_token(campaign.real_user_token());
    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.ingest_all(campaign.real_users.iter().map(|r| r.request.clone()));
    site.into_store()
}

fn campaign() -> Campaign {
    Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.08),
        seed: 0xCA11B,
    })
}

#[test]
fn table1_per_service_evasion_rates() {
    let campaign = campaign();
    let store = ingest(&campaign);
    let measured = stats::per_service(&store);
    assert_eq!(measured.len(), 20);
    for spec in SERVICES.iter() {
        let m = measured.iter().find(|s| s.id == spec.id).unwrap();
        // Small services at 8% scale carry more sampling noise.
        let tol = if spec.requests > 10_000 { 0.035 } else { 0.09 };
        assert!(
            (m.dd_evasion - spec.dd_evasion).abs() < tol,
            "{}: DataDome evasion {:.4} vs paper {:.4}",
            spec.id,
            m.dd_evasion,
            spec.dd_evasion
        );
        assert!(
            (m.botd_evasion - spec.botd_evasion).abs() < tol,
            "{}: BotD evasion {:.4} vs paper {:.4}",
            spec.id,
            m.botd_evasion,
            spec.botd_evasion
        );
    }
}

#[test]
fn overall_evasion_matches_section5() {
    let campaign = campaign();
    let store = ingest(&campaign);
    // Restrict to bot traffic.
    let (dd, botd) = stats::overall_evasion(&store);
    assert!((dd - 0.4456).abs() < 0.02, "overall DataDome evasion {dd}");
    assert!((botd - 0.5293).abs() < 0.02, "overall BotD evasion {botd}");
}

#[test]
fn tables_3_and_4_detection_improvement() {
    let campaign = campaign();
    let store = ingest(&campaign);
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    let (improvements, report) = evaluate::evaluate(&store, &engine);

    // Table 4 shape: spatial carries almost all of the improvement,
    // temporal a little, combined the most.
    assert!(
        (report.none.0 - 0.5544).abs() < 0.02,
        "base DD detection {}",
        report.none.0
    );
    assert!(
        (report.none.1 - 0.4707).abs() < 0.02,
        "base BotD detection {}",
        report.none.1
    );
    assert!(
        (report.spatial.0 - 0.7604).abs() < 0.04,
        "spatial DD {}",
        report.spatial.0
    );
    assert!(
        (report.spatial.1 - 0.7033).abs() < 0.04,
        "spatial BotD {}",
        report.spatial.1
    );
    assert!(
        report.temporal.0 < report.spatial.0,
        "temporal adds less than spatial"
    );
    assert!(report.combined.0 >= report.spatial.0);
    assert!(report.combined.1 >= report.spatial.1);
    assert!(
        (report.combined.0 - 0.7688).abs() < 0.04,
        "combined DD {}",
        report.combined.0
    );
    assert!(
        (report.combined.1 - 0.7086).abs() < 0.04,
        "combined BotD {}",
        report.combined.1
    );

    // Headline: evasion reduced by 48.11% (DataDome) / 44.95% (BotD).
    let (dd_red, botd_red) = report.evasion_reduction();
    assert!(
        (dd_red - 0.4811).abs() < 0.08,
        "DD evasion reduction {dd_red}"
    );
    assert!(
        (botd_red - 0.4495).abs() < 0.08,
        "BotD evasion reduction {botd_red}"
    );

    // Table 3 per-service shape for the biggest services.
    for spec in SERVICES.iter().filter(|s| s.requests > 20_000) {
        let m = improvements.iter().find(|s| s.id == spec.id).unwrap();
        assert!(
            (m.dd_post_detection - spec.dd_post_detection).abs() < 0.06,
            "{}: DD post {:.4} vs paper {:.4}",
            spec.id,
            m.dd_post_detection,
            spec.dd_post_detection
        );
        assert!(
            (m.botd_post_detection - spec.botd_post_detection).abs() < 0.06,
            "{}: BotD post {:.4} vs paper {:.4}",
            spec.id,
            m.botd_post_detection,
            spec.botd_post_detection
        );
    }
}

#[test]
fn real_user_true_negative_rate() {
    let campaign = campaign();
    let store = ingest(&campaign);
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    let tnr = evaluate::true_negative_rate(&store, &engine);
    // Paper: 96.84% (spoofer students trip UA rules).
    assert!((tnr - 0.9684).abs() < 0.025, "TNR {tnr}");
}

#[test]
fn design_ground_truth_matches_detectors() {
    // The generator's intended cells must be what the detectors actually
    // decide — the honesty check on the whole calibration scheme.
    let campaign = campaign();
    let store = ingest(&campaign);
    let mut mismatches = 0u64;
    let mut n = 0u64;
    for (r, design) in store
        .iter()
        .filter(|r| matches!(r.source, TrafficSource::Bot(_)))
        .zip(&campaign.designs)
    {
        n += 1;
        if r.verdicts.bot(provenance::DATADOME) == design.cell.evades_dd()
            || r.verdicts.bot(provenance::BOTD) == design.cell.evades_botd()
        {
            mismatches += 1;
        }
    }
    assert!(n > 0);
    let rate = mismatches as f64 / n as f64;
    assert!(
        rate < 0.01,
        "intended-vs-actual verdict mismatch rate {rate}"
    );
}
