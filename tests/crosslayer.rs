//! End-to-end coverage of the cross-layer TLS facet: the detector runs in
//! the default chain, truthful traffic never trips it, the TLS-lagging
//! cohort cannot get past it, and the cohort-split evaluation separates
//! both agent cohorts from real users on the seed campaign.

use fp_bench::recorded_cohort_campaign;
use fp_inconsistent::core::evaluate;
use fp_inconsistent::prelude::*;
use fp_types::detect::provenance;
use fp_types::Cohort;

fn cohort_store() -> fp_inconsistent::honeysite::RequestStore {
    recorded_cohort_campaign(Scale::ratio(0.02)).1
}

/// The sixth detector runs in the default `HoneySite` chain — every
/// ingested request carries its named verdict without any opt-in.
#[test]
fn crosslayer_detector_runs_in_default_chain() {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.01),
        seed: 3,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    let store = site.into_store();
    assert!(store.len() > 1_000);
    for r in store.iter() {
        assert!(
            r.verdicts.verdict(provenance::FP_TLS_CROSSLAYER).is_some(),
            "request {} missing the cross-layer verdict",
            r.id
        );
    }
}

/// No false positives on truthful traffic: real users who did not spoof
/// their User-Agent present the handshake their browser genuinely sends,
/// so the cross-layer detector must never flag them. (UA-spoofer students
/// — the paper's §7.4 false-positive budget — *are* legitimately caught
/// when their real engine differs from the claimed one.)
#[test]
fn truthful_real_users_never_trip_the_crosslayer_check() {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::FULL, // real users are only 2,206 at full scale
        seed: 7,
    });
    let mut site = HoneySite::new();
    site.register_token(campaign.real_user_token());
    let spoofers: std::collections::HashSet<u64> = campaign
        .real_users
        .iter()
        .filter(|r| r.spoofer)
        .map(|r| r.request.cookie.unwrap())
        .collect();
    site.ingest_all(campaign.real_users.iter().map(|r| r.request.clone()));
    let store = site.into_store();
    let mut truthful = 0;
    for r in store.iter() {
        if !spoofers.contains(&r.cookie) {
            truthful += 1;
            assert!(
                !r.verdicts.bot(provenance::FP_TLS_CROSSLAYER),
                "truthful real user flagged cross-layer: {:?}",
                r.fingerprint
            );
        }
    }
    assert!(truthful > 1_000, "too few truthful users: {truthful}");
}

/// The cohort-split evaluation distinguishes both agent cohorts from real
/// users on the seed campaign, each through a different detector — the
/// structural point of the cross-layer facet.
#[test]
fn cohort_report_separates_agents_from_real_users() {
    let store = cohort_store();
    let report = evaluate::cohort_report(&store);
    assert!(report.size(Cohort::TlsLaggard) > 100);
    assert!(report.size(Cohort::AiAgent) > 100);
    assert!(report.size(Cohort::RealUser) > 0);

    // The TLS detector owns the laggard cohort...
    let xl = report.detector(provenance::FP_TLS_CROSSLAYER).unwrap();
    assert!(
        xl.rate(Cohort::TlsLaggard) > 0.95,
        "laggard recall {}",
        xl.rate(Cohort::TlsLaggard)
    );
    // ...is structurally blind to AI agents (their hello is genuine)...
    assert_eq!(xl.rate(Cohort::AiAgent), 0.0);
    // ...and stays far cleaner on real users than on laggards (its only
    // human hits are the §7.4 UA-spoofer students).
    assert!(
        xl.rate(Cohort::RealUser) < 0.10,
        "real-user FPR {}",
        xl.rate(Cohort::RealUser)
    );

    // AI agents are distinguished from real users by the behaviour-reading
    // detector instead: silent/replayed desktop sessions get flagged.
    let dd = report.detector(provenance::DATADOME).unwrap();
    assert!(
        dd.rate(Cohort::AiAgent) > 0.5,
        "AI-agent DataDome rate {}",
        dd.rate(Cohort::AiAgent)
    );
    assert!(
        dd.rate(Cohort::AiAgent) > 5.0 * dd.rate(Cohort::RealUser).max(0.01),
        "agents must stand out from real users"
    );

    // Both cohorts are automation, so catching them must not cost
    // precision: every cross-layer flag on this campaign is a bot or a
    // UA-spoofing student.
    assert!(xl.precision > 0.9, "cross-layer precision {}", xl.precision);
}

/// Laggards evade the *browser-layer* detectors (that is what makes them
/// evasive): BotD sees a clean browser, and the spatial miner finds no
/// impossible attribute pair. Only the handshake gives them away.
#[test]
fn laggards_evade_browser_layer_detection() {
    let store = cohort_store();
    let mut n = 0u64;
    let mut botd = 0u64;
    let mut spatial = 0u64;
    let mut tls = 0u64;
    for r in store.iter() {
        if r.source == fp_types::TrafficSource::TlsLaggard {
            n += 1;
            botd += u64::from(r.verdicts.bot(provenance::BOTD));
            spatial += u64::from(r.verdicts.bot(provenance::FP_SPATIAL));
            tls += u64::from(r.verdicts.bot(provenance::FP_TLS_CROSSLAYER));
        }
    }
    assert!(n > 100);
    assert_eq!(tls, n, "every laggard carries the cross-layer flag");
    assert!(
        (botd as f64) < 0.05 * n as f64,
        "BotD should miss the patched fingerprints ({botd}/{n})"
    );
    assert!(
        (spatial as f64) < 0.10 * n as f64,
        "the spatial miner should find nothing impossible ({spatial}/{n})"
    );
}

/// Shard-count invariance still holds with the sixth detector in the
/// chain and the agent cohorts in the stream.
#[test]
fn cohort_stream_is_shard_invariant() {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.01),
        seed: 13,
    });
    let stream = fp_bench::cohort_stream(&campaign);
    let run = |shards: usize| {
        let mut site = HoneySite::new();
        for id in ServiceId::all() {
            site.register_token(campaign.token_of(id));
        }
        site.register_token(campaign.real_user_token());
        site.register_token(campaign.ai_agent_token());
        site.register_token(campaign.tls_laggard_token());
        site.ingest_stream(stream.clone(), shards);
        site.into_store()
    };
    let baseline = run(1);
    for shards in [2usize, 8] {
        let store = run(shards);
        assert_eq!(store.len(), baseline.len());
        for (a, b) in baseline.iter().zip(store.iter()) {
            assert_eq!(
                a.verdicts, b.verdicts,
                "request {} at {shards} shards",
                a.id
            );
            assert_eq!(a.tls, b.tls);
        }
    }
}
