//! Dataset snapshot round-trips and failure injection: the open-sourcing
//! path (export → import → identical analysis) must be lossless, and the
//! loaders must reject corrupted inputs rather than mis-analyse them.

use fp_botnet::{Campaign, CampaignConfig};
use fp_honeysite::{HoneySite, RequestStore};
use fp_inconsistent_core::{evaluate, FpInconsistent, MineConfig, RuleSet};
use fp_types::{Scale, ServiceId};

fn recorded() -> RequestStore {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.02),
        seed: 0xDA7A,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.register_token(campaign.real_user_token());
    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.ingest_all(campaign.real_users.iter().map(|r| r.request.clone()));
    site.into_store()
}

#[test]
fn export_import_preserves_every_analysis() {
    let store = recorded();
    let mut buf = Vec::new();
    store.write_jsonl(&mut buf).unwrap();
    let loaded = RequestStore::read_jsonl(std::io::Cursor::new(&buf)).unwrap();
    assert_eq!(loaded.len(), store.len());

    // Same Table 1.
    let a = fp_honeysite::stats::per_service(&store);
    let b = fp_honeysite::stats::per_service(&loaded);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.requests, y.requests);
        assert_eq!(x.dd_evasion, y.dd_evasion);
        assert_eq!(x.botd_evasion, y.botd_evasion);
    }

    // Same mined rules and same evaluation.
    let engine_a = FpInconsistent::mine(&store, &MineConfig::default());
    let engine_b = FpInconsistent::mine(&loaded, &MineConfig::default());
    assert_eq!(
        engine_a.rules().to_filter_list(),
        engine_b.rules().to_filter_list(),
        "mining must be invariant under snapshot round-trip"
    );
    let (_, report_a) = evaluate::evaluate(&store, &engine_a);
    let (_, report_b) = evaluate::evaluate(&loaded, &engine_b);
    assert_eq!(report_a.combined, report_b.combined);
    assert_eq!(report_a.temporal, report_b.temporal);
}

#[test]
fn corrupted_snapshot_lines_are_rejected() {
    let store = recorded();
    let mut buf = Vec::new();
    store.write_jsonl(&mut buf).unwrap();

    // Truncate the last line mid-object.
    let cut = buf.len() - 40;
    assert!(RequestStore::read_jsonl(std::io::Cursor::new(&buf[..cut])).is_err());

    // Flip a structural byte in the middle.
    let mut broken = buf.clone();
    let mid = broken.len() / 2;
    if let Some(pos) = broken[mid..].iter().position(|&b| b == b'{') {
        broken[mid + pos] = b'[';
        assert!(RequestStore::read_jsonl(std::io::Cursor::new(&broken)).is_err());
    }

    // Unknown attribute names are data corruption, not silently-dropped
    // fields.
    let bogus = br#"{"id":0,"time":0,"site_token":"t","ip_hash":1,"ip_offset_minutes":0,"ip_region":"X/Y","ip_lat":0.0,"ip_lon":0.0,"asn":1,"asn_flagged":false,"ip_blocklisted":false,"tor_exit":false,"cookie":1,"fingerprint":{"not_an_attribute":{"Int":3}},"tls":{"ja3":null,"ja4":null},"behavior":{"mouse_events":0,"touch_events":0,"pointer":null,"first_input_delay_ms":0},"cadence":{"observed":false,"gap_q50_ms":0,"gap_q90_ms":0,"gap_cv":0.0,"pages":0,"unique_transitions":0,"dwell_q50_ms":0},"source":"RealUser","verdicts":{"DataDome":false,"BotD":false}}"#;
    assert!(RequestStore::read_jsonl(std::io::Cursor::new(&bogus[..])).is_err());
    // The same line with a real attribute name parses, proving the
    // rejection above is the unknown attribute, not the record shape.
    let valid = &bogus[..].to_vec();
    let valid = String::from_utf8(valid.clone())
        .unwrap()
        .replace("not_an_attribute", "hardware_concurrency");
    assert!(RequestStore::read_jsonl(std::io::Cursor::new(valid.into_bytes())).is_ok());
}

#[test]
fn blank_lines_in_snapshots_are_tolerated() {
    let store = recorded();
    let mut buf = Vec::new();
    store.write_jsonl(&mut buf).unwrap();
    let mut padded = b"\n\n".to_vec();
    padded.extend_from_slice(&buf);
    padded.extend_from_slice(b"\n\n");
    let loaded = RequestStore::read_jsonl(std::io::Cursor::new(&padded)).unwrap();
    assert_eq!(loaded.len(), store.len());
}

#[test]
fn filter_list_survives_disk_and_reordering() {
    let store = recorded();
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    let text = engine.rules().to_filter_list();

    // Shuffle the rule lines (a human edited the file): same semantics.
    let mut lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('!')).collect();
    lines.reverse();
    let shuffled = lines.join("\n");
    let reparsed = RuleSet::from_filter_list(&shuffled).unwrap();
    assert_eq!(reparsed.len(), engine.rules().len());

    let deployed = FpInconsistent::from_rules(
        reparsed,
        fp_inconsistent_core::engine::EngineConfig {
            generalize_location: true,
            ..Default::default()
        },
    );
    let (_, a) = evaluate::evaluate(&store, &engine);
    let (_, b) = evaluate::evaluate(&store, &deployed);
    assert_eq!(a.spatial, b.spatial, "rule order must not matter");
}

#[test]
fn malformed_filter_lists_fail_loud() {
    for bad in [
        "ua_device=iPhone\n",                            // one clause
        "ua_device=iPhone AND AND max_touch_points=0\n", // mangled separator
        "ua_device iPhone AND max_touch_points=0\n",     // missing '='
        "made_up=1 AND ua_device=iPhone\n",              // unknown attribute
    ] {
        assert!(RuleSet::from_filter_list(bad).is_err(), "{bad:?} parsed");
    }
}
