//! Property-based tests over the core data structures and invariants.

use fp_inconsistent_core::attrs::AnalysisAttr;
use fp_inconsistent_core::{RulePack, RuleSet, SpatialRule};
use fp_tls::{ClientHello, Extension};
use fp_types::{sym, AttrId, AttrValue, Fingerprint, StoredRequest};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators.

fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        Just(AttrValue::Missing),
        any::<bool>().prop_map(AttrValue::Bool),
        (-1_000_000i64..1_000_000).prop_map(AttrValue::Int),
        (-1_000_000i64..1_000_000).prop_map(AttrValue::Milli),
        (1u16..4096, 1u16..4096).prop_map(|(w, h)| AttrValue::Resolution(w, h)),
        "[a-zA-Z0-9 ._/-]{0,24}".prop_map(|s| AttrValue::text(&s)),
    ]
}

fn arb_attr_id() -> impl Strategy<Value = AttrId> {
    (0..AttrId::COUNT).prop_map(AttrId::from_index)
}

fn arb_fingerprint() -> impl Strategy<Value = Fingerprint> {
    proptest::collection::vec((arb_attr_id(), arb_attr_value()), 0..20).prop_map(|pairs| {
        let mut fp = Fingerprint::new();
        for (id, v) in pairs {
            fp.set(id, v);
        }
        fp
    })
}

// Rule values must survive the *display* form (the filter-list format), so
// restrict strings to the displayable subset without the separator.
fn arb_rule_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        any::<bool>().prop_map(AttrValue::Bool),
        (-100_000i64..100_000).prop_map(AttrValue::Int),
        (1u16..4000, 1u16..4000).prop_map(|(w, h)| AttrValue::Resolution(w, h)),
        // Exclude display forms that re-type on parse ("true"/"false") and
        // the clause separator — the miner's real values (attribute values
        // observed in browsers) never collide with either, see
        // `rules::parse_value`.
        // (The parser trims clause values, so values may not end in
        // whitespace either — browser attribute values never do.)
        "[a-zA-Z][a-zA-Z0-9 ._/-]{0,20}"
            .prop_filter("typed-literal or separator collision", |s| {
                s != "true" && s != "false" && !s.contains(" AND ") && !s.ends_with(' ')
            })
            .prop_map(|s| AttrValue::text(&s)),
    ]
}

fn arb_analysis_attr() -> impl Strategy<Value = AnalysisAttr> {
    prop_oneof![
        arb_attr_id().prop_map(AnalysisAttr::Fp),
        Just(AnalysisAttr::IpRegion),
        Just(AnalysisAttr::IpUtcOffset),
    ]
}

/// A bag of candidate rule clauses (self-pairs skipped at build time, the
/// same screen the miner applies).
fn arb_rule_bag() -> impl Strategy<Value = Vec<(AnalysisAttr, AttrValue, AnalysisAttr, AttrValue)>>
{
    proptest::collection::vec(
        (
            arb_analysis_attr(),
            arb_rule_value(),
            arb_analysis_attr(),
            arb_rule_value(),
        ),
        0..16,
    )
}

fn rule_set_of(bag: &[(AnalysisAttr, AttrValue, AnalysisAttr, AttrValue)]) -> RuleSet {
    let mut set = RuleSet::new();
    for (a, va, b, vb) in bag {
        if a != b {
            set.add(SpatialRule::new(*a, *va, *b, *vb));
        }
    }
    set
}

/// A neutral stored request the rule-equivalence properties mutate.
fn blank_request() -> StoredRequest {
    StoredRequest {
        id: 0,
        time: fp_types::SimTime::EPOCH,
        site_token: sym("t"),
        ip_hash: 0,
        ip_offset_minutes: 0,
        ip_region: sym("Nowhere/Central"),
        ip_lat: 0.0,
        ip_lon: 0.0,
        asn: 1,
        asn_flagged: false,
        ip_blocklisted: false,
        tor_exit: false,
        cookie: 0,
        tls: fp_types::TlsFacet::unobserved(),
        fingerprint: Fingerprint::new(),
        source: fp_types::TrafficSource::RealUser,
        behavior: fp_types::BehaviorTrace::silent(),
        cadence: fp_types::BehaviorFacet::unobserved(),
        verdicts: fp_types::VerdictSet::new(),
    }
}

/// Write `attr = v` onto a request where the request representation can
/// express it (an `ip_region` can only ever be a symbol, an `ip_utc_offset`
/// only an in-range integer — rules talking about other shapes there are
/// simply unmatchable, on both matchers alike).
fn apply_value(request: &mut StoredRequest, attr: AnalysisAttr, v: &AttrValue) {
    match attr {
        AnalysisAttr::Fp(id) => request.fingerprint.set(id, *v),
        AnalysisAttr::IpRegion => {
            if let AttrValue::Sym(s) = v {
                request.ip_region = *s;
            }
        }
        AnalysisAttr::IpUtcOffset => {
            if let AttrValue::Int(i) = v {
                request.ip_offset_minutes = *i as i32;
            }
        }
    }
}

/// Requests exercising the rule set: seeded from the rules themselves so
/// full matches, half matches (one clause only — the missing-attribute
/// edge) and clean requests all occur, plus fingerprint noise.
fn requests_for(set: &RuleSet, picks: &[(u64, u64)], noise: &Fingerprint) -> Vec<StoredRequest> {
    let rules: Vec<&SpatialRule> = set.iter().collect();
    let mut out = Vec::with_capacity(picks.len() + 1);
    // The all-missing request is always in the batch.
    out.push(blank_request());
    for &(sel, mode) in picks {
        let mut r = blank_request();
        if mode % 4 == 0 {
            r.fingerprint = noise.clone();
        }
        if !rules.is_empty() {
            let rule = rules[(sel % rules.len() as u64) as usize];
            apply_value(&mut r, rule.attr_a, &rule.value_a);
            // Half the picks complete the pair, half leave clause b
            // missing/neutral.
            if mode % 2 == 0 {
                apply_value(&mut r, rule.attr_b, &rule.value_b);
            }
            // Some picks then overlay a second rule's clauses on top.
            if mode % 3 == 0 {
                let other = rules[(mode % rules.len() as u64) as usize];
                apply_value(&mut r, other.attr_b, &other.value_b);
            }
        }
        out.push(r);
    }
    out
}

proptest! {
    // -----------------------------------------------------------------
    // Fingerprint invariants.

    #[test]
    fn fingerprint_serde_roundtrip(fp in arb_fingerprint()) {
        let json = serde_json::to_string(&fp).unwrap();
        let back: Fingerprint = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, fp);
    }

    #[test]
    fn fingerprint_digest_matches_equality(a in arb_fingerprint(), b in arb_fingerprint()) {
        if a == b {
            prop_assert_eq!(a.digest(), b.digest());
        }
        // (Collisions for a != b are possible in principle but must not be
        // produced by these tiny cases.)
        if a.digest() != b.digest() {
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn set_then_get(id in arb_attr_id(), v in arb_attr_value()) {
        let mut fp = Fingerprint::new();
        fp.set(id, v);
        prop_assert_eq!(*fp.get(id), v);
        fp.clear(id);
        prop_assert!(fp.get(id).is_missing());
    }

    // -----------------------------------------------------------------
    // Filter-list format.

    #[test]
    fn filter_list_roundtrips(
        rules in proptest::collection::vec(
            (arb_analysis_attr(), arb_rule_value(), arb_analysis_attr(), arb_rule_value()),
            1..20,
        )
    ) {
        let mut set = RuleSet::new();
        for (a, va, b, vb) in rules {
            // Self-pairs cannot arise from the miner; skip them.
            if a == b {
                continue;
            }
            // Resolution display uses 'x'; a string value containing a
            // parsable "WxH" would be re-typed — the miner never produces
            // such strings, and neither does this generator.
            set.add(SpatialRule::new(a, va, b, vb));
        }
        let text = set.to_filter_list();
        let parsed = RuleSet::from_filter_list(&text);
        prop_assert!(parsed.is_ok(), "{:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.len(), set.len());
        // Stable fixed point: rendering again is identical.
        prop_assert_eq!(parsed.to_filter_list(), text);
    }

    // -----------------------------------------------------------------
    // TLS wire format.

    #[test]
    fn clienthello_roundtrips(
        version in prop_oneof![Just(0x0301u16), Just(0x0303u16)],
        random in proptest::array::uniform32(any::<u8>()),
        session_id in proptest::collection::vec(any::<u8>(), 0..33),
        ciphers in proptest::collection::vec(any::<u16>(), 1..48),
        exts in proptest::collection::vec((any::<u16>(), proptest::collection::vec(any::<u8>(), 0..40)), 0..16),
    ) {
        let hello = ClientHello {
            version,
            random,
            session_id,
            cipher_suites: ciphers,
            compression: vec![0],
            extensions: exts.into_iter().map(|(t, body)| Extension { typ: t, body }).collect(),
        };
        let wire = hello.to_wire();
        let parsed = ClientHello::parse(&wire).unwrap();
        prop_assert_eq!(parsed, hello);
    }

    #[test]
    fn clienthello_rejects_every_truncation(
        ciphers in proptest::collection::vec(any::<u16>(), 1..8),
    ) {
        let hello = ClientHello {
            version: 0x0303,
            random: [9; 32],
            session_id: vec![1, 2, 3],
            cipher_suites: ciphers,
            compression: vec![0],
            extensions: vec![Extension::sni("p.example")],
        };
        let wire = hello.to_wire();
        for cut in 0..wire.len() {
            prop_assert!(ClientHello::parse(&wire[..cut]).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn md5_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 1usize..64) {
        let oneshot = fp_tls::md5::md5(&data);
        let mut ctx = fp_tls::md5::Md5::new();
        for chunk in data.chunks(split) {
            ctx.update(chunk);
        }
        prop_assert_eq!(ctx.finalize(), oneshot);
    }

    // -----------------------------------------------------------------
    // Mixing / sampling invariants.

    #[test]
    fn splittable_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = fp_types::Splittable::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(n) < n);
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn scale_monotone(count in 0u64..10_000_000, r in 0.0001f64..1.0) {
        let scaled = fp_types::Scale::ratio(r).apply(count);
        prop_assert!(scaled <= count.max(1));
        if count > 0 {
            prop_assert!(scaled >= 1);
        }
    }
}

proptest! {
    // -----------------------------------------------------------------
    // Compiled rule packs: the compiled artifact is behaviourally the
    // interpreted rule set, and its content hash versions exactly the
    // flagging behaviour.

    #[test]
    fn compiled_pack_matches_interpreted_flag_for_flag(
        bag in arb_rule_bag(),
        picks in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..24),
        noise in arb_fingerprint(),
    ) {
        let set = rule_set_of(&bag);
        let pack = RulePack::compile(&set);
        prop_assert_eq!(pack.len(), set.len());
        for r in requests_for(&set, &picks, &noise) {
            prop_assert_eq!(pack.matches(&r), set.matches(&r), "flag-for-flag: {:?}", r);
            prop_assert_eq!(
                pack.matching_rule(&r).cloned(),
                set.matching_rule(&r),
                "rule-for-rule: {:?}", r
            );
        }
    }

    #[test]
    fn matching_rule_is_construction_order_independent(
        bag in arb_rule_bag(),
        picks in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..16),
        noise in arb_fingerprint(),
    ) {
        let forward = rule_set_of(&bag);
        let mut reversed_bag = bag.clone();
        reversed_bag.reverse();
        let reversed = rule_set_of(&reversed_bag);
        prop_assert_eq!(forward.len(), reversed.len());
        for r in requests_for(&forward, &picks, &noise) {
            prop_assert_eq!(
                forward.matching_rule(&r),
                reversed.matching_rule(&r),
                "the first match must be a function of contents, not insertion order"
            );
        }
    }

    #[test]
    fn pack_hash_is_order_and_shard_invariant(
        bag in arb_rule_bag(),
        shards in 1usize..5,
    ) {
        let whole = rule_set_of(&bag);
        let reference = whole.content_hash();
        prop_assert_eq!(RulePack::compile(&whole).hash(), reference);

        // Reversed insertion order.
        let mut reversed_bag = bag.clone();
        reversed_bag.reverse();
        prop_assert_eq!(rule_set_of(&reversed_bag).content_hash(), reference);

        // Sharded mining: each shard mines its slice into its own set;
        // the merge (in shard-interleaved order) must hash identically,
        // whatever the shard count.
        let mut shard_sets = vec![RuleSet::new(); shards];
        for (i, (a, va, b, vb)) in bag.iter().enumerate() {
            if a != b {
                shard_sets[i % shards].add(SpatialRule::new(*a, *va, *b, *vb));
            }
        }
        let mut merged = RuleSet::new();
        for shard in &shard_sets {
            for rule in shard.iter() {
                merged.add(rule.clone());
            }
        }
        prop_assert_eq!(merged.content_hash(), reference);
        prop_assert_eq!(RulePack::compile(&merged).hash(), reference);
    }

    #[test]
    fn pack_hash_changes_with_any_single_rule(
        bag in arb_rule_bag(),
        extra in (arb_analysis_attr(), arb_rule_value(), arb_analysis_attr(), arb_rule_value()),
        drop in any::<u64>(),
    ) {
        let set = rule_set_of(&bag);
        let reference = set.content_hash();

        // Removing any one rule changes the hash.
        if !set.is_empty() {
            let skip = (drop % set.len() as u64) as usize;
            let mut minus_one = RuleSet::new();
            for (i, rule) in set.iter().enumerate() {
                if i != skip {
                    minus_one.add(rule.clone());
                }
            }
            prop_assert_ne!(minus_one.content_hash(), reference);
        }

        // Adding a rule not already present changes the hash.
        let (a, va, b, vb) = extra;
        if a != b {
            let candidate = SpatialRule::new(a, va, b, vb);
            let display = candidate.to_string();
            if set.iter().all(|r| r.to_string() != display) {
                let mut plus_one = rule_set_of(&bag);
                plus_one.add(candidate);
                prop_assert_ne!(plus_one.content_hash(), reference);
            }
        }
    }

    #[test]
    fn filter_list_roundtrip_preserves_pack_hash(bag in arb_rule_bag()) {
        let set = rule_set_of(&bag);
        let parsed = RuleSet::from_filter_list(&set.to_filter_list()).unwrap();
        prop_assert_eq!(parsed.content_hash(), set.content_hash());
        prop_assert_eq!(
            RulePack::compile(&parsed).hash(),
            RulePack::compile(&set).hash()
        );
        // And the compiled pack round-trips back to an equal-hash set.
        let back = RulePack::compile(&set).to_rule_set();
        prop_assert_eq!(back.content_hash(), set.content_hash());
    }
}

// ---------------------------------------------------------------------
// Oracle invariants (deterministic, exhaustive-ish loops rather than
// proptest: the value space is the catalogue).

#[test]
fn oracle_is_symmetric_for_all_catalog_pairs() {
    use fp_fingerprint::{Plausibility, ValidityOracle};
    let values = [
        (AttrId::UaDevice, AttrValue::text("iPhone")),
        (AttrId::UaDevice, AttrValue::text("Mac")),
        (AttrId::ScreenResolution, AttrValue::Resolution(390, 844)),
        (AttrId::ScreenResolution, AttrValue::Resolution(1920, 1080)),
        (AttrId::MaxTouchPoints, AttrValue::Int(0)),
        (AttrId::MaxTouchPoints, AttrValue::Int(5)),
        (AttrId::HardwareConcurrency, AttrValue::Int(4)),
        (AttrId::HardwareConcurrency, AttrValue::Int(32)),
        (AttrId::Vendor, AttrValue::text("Apple Computer, Inc.")),
        (AttrId::Platform, AttrValue::text("Win32")),
        (AttrId::UaBrowser, AttrValue::text("Chrome")),
        (AttrId::UaOs, AttrValue::text("Windows")),
    ];
    for (a, va) in &values {
        for (b, vb) in &values {
            if a == b {
                continue;
            }
            let fwd = ValidityOracle::judge(*a, va, *b, vb);
            let rev = ValidityOracle::judge(*b, vb, *a, va);
            assert_eq!(fwd, rev, "{a:?}/{b:?}");
            // Sanity: verdicts are one of the three states (no panics).
            let _ = matches!(
                fwd,
                Plausibility::Valid | Plausibility::Impossible | Plausibility::Unknown
            );
        }
    }
}

#[test]
fn consistent_collector_output_never_scans_impossible() {
    use fp_fingerprint::{
        BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile, LocaleSpec,
        ValidityOracle,
    };
    let mut rng = fp_types::Splittable::new(0xFACE);
    for _ in 0..300 {
        let kind = *rng.pick(&DeviceKind::ALL);
        let defaults = BrowserFamily::defaults_for(kind);
        let weights: Vec<f64> = defaults.iter().map(|(_, w)| *w).collect();
        let family = defaults[rng.pick_weighted(&weights)].0;
        let device = DeviceProfile::sample(kind, &mut rng);
        let browser = BrowserProfile::contemporary(family, &mut rng);
        let fp = Collector::collect(&device, &browser, &LocaleSpec::en_us());
        let bad = ValidityOracle::scan_impossible(&fp);
        assert!(bad.is_empty(), "{kind:?}/{family:?}: {bad:?}");
    }
}
