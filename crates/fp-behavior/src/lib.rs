//! The session behaviour detector: FP-Agent's separation signal in the
//! default chain.
//!
//! AI browsing agents drive a real Chromium: their fingerprint is
//! consistent, their ClientHello is truthful, and the only per-request
//! tell (DataDome's pointer read) sees nothing on a silent page load.
//! What they cannot hide is *session shape* — a harness ticks. FP-Agent
//! (PAPERS.md) separates agents from humans on interaction cadence and
//! navigation shape, which "Beyond the Crawl" measures on real users:
//! humans pause, read, branch and backtrack; harnesses pace page
//! transitions at machine-regular intervals.
//!
//! [`BehaviorDetector`] is that signal as a workspace [`Detector`]: it
//! reads the session-level [`fp_types::BehaviorFacet`] carried on every
//! request, accumulates machine-cadence observations *per cookie* (the
//! same state anchor as the temporal detectors, so sharded ingest stays
//! verdict-for-verdict identical to sequential), and flags once a cookie
//! has paced like a harness often enough. Deliberately, a credible
//! pointer trajectory does *not* override the cadence read: a replayed
//! human trace forges per-request pointer credibility (that is how the
//! FP-Agent counter-move beats DataDome), but the session's timing
//! regularity survives the forgery — which is why the signal earns a
//! detector of its own instead of a branch in DataDome's.
//!
//! [`BehaviorMember`] is the detector's defender lifecycle: thresholds
//! live in a shared [`HotSwap`] slot, and a re-fitting member re-learns
//! the machine-cadence cutoff from the retained training window at
//! cadence — the behavioural analogue of `SpatialMember` re-mining,
//! published barrier-free to every chain forked after the swap.

// A detection subsystem other crates build chains from: every public item
// is contract surface, so an undocumented one is a broken promise.
#![deny(missing_docs)]

use fp_obs::{Histogram, MetricsRegistry};
use fp_types::behavior::{credible_pointer, CADENCE_CV_CEILING, CADENCE_CV_FLOOR};
use fp_types::defense::{RetrainSpend, RoundContext, StackMember};
use fp_types::detect::{provenance, Detector, StateScope, Verdict};
use fp_types::{BehaviorThresholds, CookieId, HotSwap, StoredRequest};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Registry name of the re-fit window-scan timing histogram.
pub const REFIT_SCAN_NS: &str = "defense_behavior_refit_scan_ns";
/// Registry name of the threshold hot-swap timing histogram.
pub const THRESHOLD_SWAP_NS: &str = "defense_behavior_swap_ns";

/// The in-chain session behaviour detector (`fp-behavior` provenance).
///
/// Per-cookie stateful: each observed machine-cadence facet on a cookie
/// counts toward that cookie's conviction; the verdict turns `Bot` from
/// the `min_observations`-th machine-paced request onward. Thresholds are
/// read through a shared [`HotSwap`] slot so a re-fitting
/// [`BehaviorMember`] publishes new cutoffs without a barrier.
pub struct BehaviorDetector {
    thresholds: Arc<HotSwap<BehaviorThresholds>>,
    /// Machine-cadence observations per cookie (the per-anchor state the
    /// sharded pipeline partitions on).
    machine_obs: HashMap<CookieId, u32>,
}

impl Default for BehaviorDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl BehaviorDetector {
    /// A detector with its own threshold slot holding the sourced
    /// defaults ([`fp_types::behavior`]).
    pub fn new() -> BehaviorDetector {
        BehaviorDetector::tracking(Arc::new(HotSwap::new(BehaviorThresholds::default())))
    }

    /// A detector tracking a shared threshold slot — what
    /// [`BehaviorMember`] hands each round's chain, so a re-fit published
    /// between rounds reaches every detector forked afterwards.
    pub fn tracking(thresholds: Arc<HotSwap<BehaviorThresholds>>) -> BehaviorDetector {
        BehaviorDetector {
            thresholds,
            machine_obs: HashMap::new(),
        }
    }

    /// The thresholds currently applied (a snapshot of the shared slot).
    pub fn thresholds(&self) -> BehaviorThresholds {
        *self.thresholds.load()
    }
}

impl Detector for BehaviorDetector {
    fn name(&self) -> &'static str {
        provenance::FP_BEHAVIOR
    }

    fn scope(&self) -> StateScope {
        StateScope::PerCookie
    }

    fn observe(&mut self, request: &StoredRequest) -> Verdict {
        // No pointer-credibility override: a replayed human trajectory
        // forges the per-request read, the session cadence does not.
        let th = self.thresholds.load();
        if !th.machine_cadence(&request.cadence) {
            return Verdict::Human;
        }
        let seen = self.machine_obs.entry(request.cookie).or_insert(0);
        *seen += 1;
        Verdict::from_flag(*seen >= th.min_observations.max(1))
    }

    fn reset(&mut self) {
        self.machine_obs.clear();
    }

    fn fork(&self) -> Box<dyn Detector> {
        // Fresh per-cookie state, same (shared) thresholds — the shard
        // fork discipline.
        Box::new(BehaviorDetector::tracking(self.thresholds.clone()))
    }
}

/// Re-fit phase timings, resolved once at [`BehaviorMember::set_metrics`].
/// Two histograms, mirroring the re-mine discipline: scan grows with the
/// retained window; the swap must stay O(1) (it is the barrier-free
/// publish).
struct RefitMetrics {
    scan_ns: Arc<Histogram>,
    swap_ns: Arc<Histogram>,
}

/// The `fp-behavior` slot of a defense stack: session-cadence thresholds,
/// optionally re-fitted from the stack's retained training window.
///
/// The member owns the shared threshold [`HotSwap`] slot: each round's
/// detectors *track* it, so a re-fit at end-of-round re-learns the
/// machine-cadence cutoff off the hot path and publishes it atomically —
/// chains forked afterwards apply the new cutoff, in-flight chains finish
/// on their snapshot. The re-fit is the FP-Agent counter-counter-move:
/// when a humanising fleet drags its gap CV just over the static floor,
/// the member re-anchors the floor to the *trusted* human sample in the
/// window — requests with credible pointer input that no chain detector
/// flagged, the label-free stand-in for ground truth a real defender
/// has. A humanising fleet forges pointer credibility too, so the sample
/// can be poisoned from below; two ramparts bound the damage. First, the
/// fit never trusts a record the *currently deployed* thresholds call
/// machine-paced — the band being policed cannot vote its own acquittal,
/// so once the floor rises the forgers just under it stay excluded
/// (a ratchet, not a chase). Second, the fitted floor clamps into
/// `[CADENCE_CV_FLOOR, CADENCE_CV_CEILING]`: neither a poisoned nor a
/// thin sample can push the cutoff into genuine-user territory, and an
/// agent paying full human-grade jitter (CV past the ceiling) escapes by
/// design — at the throughput cost that makes the evasion Pyrrhic.
pub struct BehaviorMember {
    slot: Arc<HotSwap<BehaviorThresholds>>,
    /// Re-fit after every `cadence`-th round; `None` freezes the sourced
    /// default thresholds forever.
    cadence: Option<u32>,
    metrics: Option<RefitMetrics>,
}

impl BehaviorMember {
    /// A frozen member deploying the sourced default thresholds forever.
    pub fn frozen() -> BehaviorMember {
        BehaviorMember {
            slot: Arc::new(HotSwap::new(BehaviorThresholds::default())),
            cadence: None,
            metrics: None,
        }
    }

    /// A re-fitting member: starts from the sourced defaults, then
    /// re-learns the cadence cutoff from the training window its stack
    /// retains at the end of every `cadence`-th round (cadence 1 = every
    /// round).
    pub fn refitting(cadence: u32) -> BehaviorMember {
        BehaviorMember {
            slot: Arc::new(HotSwap::new(BehaviorThresholds::default())),
            cadence: Some(cadence.max(1)),
            metrics: None,
        }
    }

    /// Attach re-fit phase timing histograms ([`REFIT_SCAN_NS`],
    /// [`THRESHOLD_SWAP_NS`]) resolved from `registry`. Call before
    /// boxing the member into a stack.
    pub fn set_metrics(&mut self, registry: &Arc<MetricsRegistry>) {
        self.metrics = Some(RefitMetrics {
            scan_ns: registry.histogram(REFIT_SCAN_NS),
            swap_ns: registry.histogram(THRESHOLD_SWAP_NS),
        });
    }

    /// The thresholds currently deployed (refreshed by re-fitting).
    pub fn thresholds(&self) -> BehaviorThresholds {
        *self.slot.load()
    }

    /// The deployment slot itself — share it to observe re-fits as they
    /// publish.
    pub fn slot(&self) -> Arc<HotSwap<BehaviorThresholds>> {
        self.slot.clone()
    }

    /// The configured re-fit cadence (`None` = frozen).
    pub fn cadence(&self) -> Option<u32> {
        self.cadence
    }

    /// The cutoff a trusted-human gap-CV sample re-anchors the floor to:
    /// 95 % of the sample's 5th percentile, clamped into
    /// `[CADENCE_CV_FLOOR, CADENCE_CV_CEILING]`. An empty sample keeps
    /// the sourced default.
    pub fn fit_floor(mut trusted_cv: Vec<f32>) -> f32 {
        if trusted_cv.is_empty() {
            return CADENCE_CV_FLOOR;
        }
        trusted_cv.sort_by(f32::total_cmp);
        let p05 = trusted_cv[(trusted_cv.len() - 1) * 5 / 100];
        (p05 * 0.95).clamp(CADENCE_CV_FLOOR, CADENCE_CV_CEILING)
    }
}

impl StackMember for BehaviorMember {
    fn member_name(&self) -> &'static str {
        provenance::FP_BEHAVIOR
    }

    fn detector(&self) -> Box<dyn Detector> {
        Box::new(BehaviorDetector::tracking(self.slot.clone()))
    }

    fn wants_history(&self) -> bool {
        self.cadence.is_some()
    }

    fn end_of_round(&mut self, epoch: &RoundContext<'_>) -> RetrainSpend {
        let Some(cadence) = self.cadence else {
            return RetrainSpend::default();
        };
        if !(epoch.round + 1).is_multiple_of(cadence) {
            return RetrainSpend::default();
        }
        // One pass over the window: collect the trusted human sample —
        // facet observed, credible pointer input, no detector flag, and
        // not machine-paced under the *deployed* thresholds. The last
        // filter is the anti-poisoning ratchet: traffic in the band being
        // policed never votes on where the band ends.
        let t0 = Instant::now();
        let deployed = *self.slot.load();
        let trusted: Vec<f32> = epoch
            .records
            .iter()
            .filter(|r| {
                r.cadence.is_observed()
                    && credible_pointer(&r.behavior)
                    && !r.verdicts.iter().any(|(_, v)| v.is_bot())
                    && !deployed.machine_cadence(&r.cadence)
            })
            .map(|r| r.cadence.gap_cv)
            .collect();
        let scanned = epoch.records.len() as u64;
        let floor = BehaviorMember::fit_floor(trusted);
        let t1 = Instant::now();
        let prev = *self.slot.load();
        self.slot.store(BehaviorThresholds {
            cadence_cv_floor: floor,
            ..prev
        });
        if let Some(m) = &self.metrics {
            m.scan_ns.record((t1 - t0).as_nanos() as u64);
            m.swap_ns.record(t1.elapsed().as_nanos() as u64);
        }
        RetrainSpend {
            retrained_members: 1,
            records_scanned: scanned,
            ..RetrainSpend::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_types::retention::RecordView;
    use fp_types::{
        sym, BehaviorFacet, BehaviorTrace, Fingerprint, PointerStats, SimTime, TrafficSource,
        VerdictSet,
    };

    fn record(cookie: CookieId, cadence: BehaviorFacet, behavior: BehaviorTrace) -> StoredRequest {
        StoredRequest {
            id: 0,
            time: SimTime::EPOCH,
            site_token: sym("t"),
            ip_hash: 1,
            ip_offset_minutes: 0,
            ip_region: sym("United States of America/California"),
            ip_lat: 0.0,
            ip_lon: 0.0,
            asn: 1,
            asn_flagged: false,
            ip_blocklisted: false,
            tor_exit: false,
            cookie,
            fingerprint: Fingerprint::new(),
            tls: fp_types::TlsFacet::unobserved(),
            behavior,
            cadence,
            source: TrafficSource::RealUser,
            verdicts: VerdictSet::new(),
        }
    }

    fn machine() -> BehaviorFacet {
        BehaviorFacet::observed(3_000, 3_300, 0.05, 6, 1, 2_800)
    }

    fn human() -> BehaviorFacet {
        BehaviorFacet::observed(9_000, 40_000, 0.7, 4, 3, 8_000)
    }

    fn humanised() -> BehaviorFacet {
        // The FP-Agent counter-move: jittered just over the static floor,
        // still short of the genuine human envelope.
        BehaviorFacet::observed(5_000, 9_000, 0.25, 6, 1, 4_000)
    }

    fn human_pointer() -> BehaviorTrace {
        BehaviorTrace {
            mouse_events: 25,
            touch_events: 0,
            pointer: Some(PointerStats {
                samples: 40,
                duration_ms: 2200,
                speed_cv: 0.55,
                curvature: 0.12,
                pause_fraction: 0.25,
            }),
            first_input_delay_ms: 400,
        }
    }

    #[test]
    fn flags_machine_cadence_after_the_warmup() {
        let mut d = BehaviorDetector::new();
        assert_eq!(d.name(), provenance::FP_BEHAVIOR);
        assert_eq!(d.scope(), StateScope::PerCookie);
        let r = record(9, machine(), BehaviorTrace::silent());
        assert!(!d.observe(&r).is_bot(), "1st machine observation: warm-up");
        assert!(!d.observe(&r).is_bot(), "2nd: still warm-up");
        assert!(d.observe(&r).is_bot(), "3rd: convicted");
        assert!(d.observe(&r).is_bot(), "…and stays convicted");
    }

    #[test]
    fn warmup_is_per_cookie() {
        let mut d = BehaviorDetector::new();
        for cookie in [1, 2, 3] {
            let r = record(cookie, machine(), BehaviorTrace::silent());
            assert!(!d.observe(&r).is_bot(), "fresh cookie starts its warm-up");
        }
        let r = record(1, machine(), BehaviorTrace::silent());
        assert!(!d.observe(&r).is_bot());
        assert!(d.observe(&r).is_bot(), "cookie 1 reaches its own 3rd");
    }

    #[test]
    fn human_cadence_and_unobserved_facets_pass() {
        let mut d = BehaviorDetector::new();
        let h = record(5, human(), BehaviorTrace::silent());
        let u = record(6, BehaviorFacet::unobserved(), BehaviorTrace::silent());
        for _ in 0..10 {
            assert!(!d.observe(&h).is_bot(), "human cadence never counts");
            assert!(!d.observe(&u).is_bot(), "no telemetry, no conviction");
        }
    }

    #[test]
    fn a_forged_pointer_does_not_shield_machine_cadence() {
        // The FP-Agent counter-move replays a human trajectory to pass
        // DataDome's per-request read; the session cadence still convicts.
        let mut d = BehaviorDetector::new();
        let r = record(7, machine(), human_pointer());
        assert!(!d.observe(&r).is_bot(), "warm-up");
        assert!(!d.observe(&r).is_bot(), "warm-up");
        assert!(
            d.observe(&r).is_bot(),
            "pointer credibility must not override the cadence read"
        );
    }

    #[test]
    fn reset_and_fork_drop_state_but_share_thresholds() {
        let mut d = BehaviorDetector::new();
        let r = record(9, machine(), BehaviorTrace::silent());
        for _ in 0..3 {
            d.observe(&r);
        }
        assert!(d.observe(&r).is_bot());
        let mut forked = d.fork();
        assert!(
            !forked.observe(&r).is_bot(),
            "forks start from empty per-cookie state"
        );
        d.reset();
        assert!(!d.observe(&r).is_bot(), "reset drops accumulated state");
    }

    #[test]
    fn refit_recaptures_humanised_cadence_without_touching_humans() {
        let mut member = BehaviorMember::refitting(1);
        assert!(member.wants_history());
        let mut d = member.detector();
        let agent = record(1, humanised(), BehaviorTrace::silent());
        for _ in 0..5 {
            assert!(
                !d.observe(&agent).is_bot(),
                "humanised cadence clears the static floor"
            );
        }

        // The window holds trusted humans (credible pointer, CV ≥ 0.38).
        let window: Vec<StoredRequest> = (0..40)
            .map(|i| {
                let mut facet = human();
                facet.gap_cv = 0.38 + (i as f32) * 0.01;
                record(100 + i as u64, facet, human_pointer())
            })
            .collect();
        let spend = member.end_of_round(&RoundContext {
            round: 0,
            records: RecordView::from_slice(&window),
            now: SimTime::EPOCH,
        });
        assert_eq!(spend.retrained_members, 1);
        assert_eq!(spend.records_scanned, 40);
        let floor = member.thresholds().cadence_cv_floor;
        assert_eq!(floor, CADENCE_CV_CEILING, "p05·0.95 clamps to the ceiling");

        // Detectors forked after the publish apply the re-fitted floor…
        let mut refit = member.detector();
        for i in 0..2 {
            assert!(!refit.observe(&agent).is_bot(), "warm-up {i}");
        }
        assert!(refit.observe(&agent).is_bot(), "humanised agent recaptured");
        // …and genuine humans still pass (CV ≥ 0.38 > ceiling).
        let mut fpr = member.detector();
        for w in &window {
            assert!(!fpr.observe(w).is_bot(), "trusted humans stay clean");
        }
    }

    #[test]
    fn poisoned_forgers_cannot_drag_a_raised_floor_back_down() {
        // Round 0: a clean human window raises the floor to the ceiling.
        let mut member = BehaviorMember::refitting(1);
        let humans: Vec<StoredRequest> = (0..40)
            .map(|i| {
                let mut facet = human();
                facet.gap_cv = 0.38 + (i as f32) * 0.01;
                record(100 + i as u64, facet, human_pointer())
            })
            .collect();
        member.end_of_round(&RoundContext {
            round: 0,
            records: RecordView::from_slice(&humans),
            now: SimTime::EPOCH,
        });
        assert_eq!(member.thresholds().cadence_cv_floor, CADENCE_CV_CEILING);

        // Round 1: the fleet floods the window with forged-pointer
        // humanised sessions (unflagged — that is the erosion). They sit
        // in the policed band, so the ratchet keeps them out of the fit.
        let mut window = humans;
        window.extend((0..200).map(|i| record(500 + i, humanised(), human_pointer())));
        member.end_of_round(&RoundContext {
            round: 1,
            records: RecordView::from_slice(&window),
            now: SimTime::EPOCH,
        });
        assert_eq!(
            member.thresholds().cadence_cv_floor,
            CADENCE_CV_CEILING,
            "traffic under the deployed floor must not vote the floor down"
        );
    }

    #[test]
    fn refit_on_an_empty_trusted_sample_keeps_the_sourced_default() {
        let mut member = BehaviorMember::refitting(1);
        let window = vec![record(1, machine(), BehaviorTrace::silent()); 5];
        member.end_of_round(&RoundContext {
            round: 0,
            records: RecordView::from_slice(&window),
            now: SimTime::EPOCH,
        });
        assert_eq!(member.thresholds().cadence_cv_floor, CADENCE_CV_FLOOR);
    }

    #[test]
    fn cadence_gates_the_refit_and_frozen_never_fires() {
        let window = vec![record(1, human(), human_pointer()); 4];
        let mut gated = BehaviorMember::refitting(2);
        let r0 = gated.end_of_round(&RoundContext {
            round: 0,
            records: RecordView::from_slice(&window),
            now: SimTime::EPOCH,
        });
        assert_eq!(r0, RetrainSpend::default(), "cadence 2 skips after round 0");
        let r1 = gated.end_of_round(&RoundContext {
            round: 1,
            records: RecordView::from_slice(&window),
            now: SimTime::EPOCH,
        });
        assert_eq!(r1.retrained_members, 1, "…and fires after round 1");

        let mut frozen = BehaviorMember::frozen();
        assert!(!frozen.wants_history());
        let spend = frozen.end_of_round(&RoundContext {
            round: 0,
            records: RecordView::from_slice(&window),
            now: SimTime::EPOCH,
        });
        assert_eq!(spend, RetrainSpend::default());
        assert_eq!(frozen.thresholds(), BehaviorThresholds::default());
    }

    #[test]
    fn inflight_detectors_keep_their_snapshot_across_a_refit() {
        let mut member = BehaviorMember::refitting(1);
        let agent = record(1, humanised(), BehaviorTrace::silent());
        let mut in_flight = member.detector();
        let window: Vec<StoredRequest> = (0..40)
            .map(|i| record(100 + i, human(), human_pointer()))
            .collect();
        member.end_of_round(&RoundContext {
            round: 0,
            records: RecordView::from_slice(&window),
            now: SimTime::EPOCH,
        });
        // The shared slot is intentionally live: the in-flight detector
        // *reads through* the slot per observation (the chain forks per
        // round, so within a round no swap happens; across rounds the new
        // floor is exactly what should apply).
        for _ in 0..2 {
            in_flight.observe(&agent);
        }
        assert!(in_flight.observe(&agent).is_bot());
    }

    #[test]
    fn fit_floor_clamps_both_directions() {
        assert_eq!(BehaviorMember::fit_floor(vec![]), CADENCE_CV_FLOOR);
        assert_eq!(
            BehaviorMember::fit_floor(vec![0.9; 10]),
            CADENCE_CV_CEILING,
            "a high human envelope clamps to the ceiling"
        );
        assert_eq!(
            BehaviorMember::fit_floor(vec![0.01; 10]),
            CADENCE_CV_FLOOR,
            "a poisoned-low sample clamps to the sourced floor"
        );
        let mid = BehaviorMember::fit_floor(vec![0.25; 10]);
        assert!((mid - 0.2375).abs() < 1e-6, "{mid}");
    }

    #[test]
    fn refit_records_one_timing_sample_per_phase_per_fire() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut member = BehaviorMember::refitting(2);
        member.set_metrics(&registry);
        let window = vec![record(1, human(), human_pointer()); 4];
        for round in 0..4 {
            member.end_of_round(&RoundContext {
                round,
                records: RecordView::from_slice(&window),
                now: SimTime::EPOCH,
            });
        }
        let snap = registry.snapshot();
        for name in [REFIT_SCAN_NS, THRESHOLD_SWAP_NS] {
            let h = snap.histogram(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(h.count(), 2, "{name}: one sample per fired re-fit");
        }
    }
}
