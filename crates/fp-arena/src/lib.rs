//! `fp-arena` — the closed-loop mitigation & bot-adaptation arena.
//!
//! The paper's §6 is not a story about who gets flagged; it is a story
//! about what evasive bot services *do after mitigation lands*: they
//! rotate source IPs across ASNs and geographies and mutate the
//! fingerprint attributes the rules keyed on, until they slip back in.
//! The rest of this workspace measures a single contact; this crate closes
//! the loop and measures the fight over time.
//!
//! * [`ResponsePolicy`] — what the site does with a flagged request:
//!   Allow (control), Captcha, Block-with-TTL (enforced at admission via
//!   `fp-netsim`'s [`fp_netsim::TtlBlocklist`]), or ShadowFlag (the
//!   paper's own record-everything-serve-everything posture). It is one
//!   implementation of the [`fp_types::defense::DecisionPolicy`] contract;
//!   richer policies (per-detector weights/actions, repeat-offender TTL
//!   escalation) plug into the same slot via [`Arena::set_policy`].
//! * [`DefenseStack`] (from `fp-honeysite`) — the defender as a value:
//!   lifecycle-aware members, the decision policy, and the
//!   epoch-segmented training store. The arena drives the defender's
//!   lifecycle between rounds — with [`ArenaConfig::remine_cadence`]
//!   set, `fp-spatial` re-mines its rule set from the retained labeled
//!   rounds, the counter-move to §6's rule rot; with
//!   [`ArenaConfig::retention`] set to a bounding policy, that window
//!   (and the re-mining scan spend) stays flat however long the
//!   campaign runs, with eviction counted in the trajectory's
//!   defender-spend columns.
//! * [`AdaptationStrategy`] — how a bot service rewrites its next round
//!   from the outcomes it can *see*: [`IpRotation`] (fresh addresses →
//!   residential ASNs → new geographies), [`FingerprintMutation`]
//!   (timezone alignment, hardware re-randomisation, cookie laundering),
//!   [`TlsUpgrade`] (laggards gradually paying for real browser stacks),
//!   [`Cooldown`] (retreat), composed freely with [`Composite`]. The
//!   truthful populations (real users, and the AI agents' honest
//!   handshakes) return unchanged every round — they have nothing to
//!   hide; the §7.5 privacy experiment stays outside the arena entirely.
//! * [`Arena`] — the round loop itself. Round 0 is flag-for-flag the
//!   single-shot cohort campaign; every later round regenerates the
//!   adversarial fleet under its strategies, admits it through the TTL
//!   blocklist, detects with the full six-detector chain on the sharded
//!   pipeline, applies the policy, and feeds each service its own
//!   [`fp_types::RoundOutcome`].
//!
//! The measurement comes out as a
//! [`fp_inconsistent_core::TrajectoryReport`]: per-detector recall/FPR per
//! round, evasion half-life, the adversary's attribute-mutation cost per
//! evading request — and, on the other side of the ledger, the defender's
//! retraining spend per round.

#![deny(missing_docs)]

pub mod arena;
pub mod policy;
pub mod strategy;

pub use arena::{Arena, ArenaConfig, RoundResult, ROUND_SECS};
pub use fp_honeysite::DefenseStack;
pub use policy::{ResponsePolicy, DEFAULT_BLOCK_TTL_SECS};
pub use strategy::{
    AdaptationStrategy, BehaviouralMutation, Composite, Cooldown, FingerprintMutation, IpRotation,
    MutationReceipt, Static, TlsUpgrade,
};
