//! Response policies: how the site answers a flagged request.
//!
//! The paper's honey site runs what [`ResponsePolicy::shadow`] models —
//! record every verdict, serve every page — which is ideal for measurement
//! and useless as mitigation. Production sites pick a visible action, and
//! the §6 finding is that visible mitigation *teaches* evasive services:
//! they rotate IPs across ASNs and geographies and mutate fingerprint
//! attributes until they slip back in. A [`ResponsePolicy`] is therefore
//! the arena's independent variable: same traffic, same detectors, four
//! different feedback signals to the adversary.

use fp_types::{MitigationAction, VerdictSet};

/// Maps a request's recorded [`VerdictSet`] to a [`MitigationAction`].
///
/// The trigger is a vote threshold over the chain's named verdicts: a
/// request is acted on when at least `min_votes` detectors flagged it
/// (1 = any flag acts, higher values trade recall for collateral safety).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponsePolicy {
    /// Display name for reports and tables.
    pub name: &'static str,
    /// Number of flagging detectors required before the action applies.
    pub min_votes: usize,
    /// The action applied to triggered requests; everything else is served
    /// normally.
    pub action: MitigationAction,
}

/// Default TTL for [`ResponsePolicy::block`]: one full campaign window
/// (91 days), so a block issued mid-round still binds through part of the
/// next round and measurably decays across it.
pub const DEFAULT_BLOCK_TTL_SECS: u64 = fp_types::STUDY_DAYS as u64 * 86_400;

impl ResponsePolicy {
    /// Serve everything (the do-nothing control: no feedback, no denial).
    pub fn allow() -> ResponsePolicy {
        ResponsePolicy {
            name: "allow",
            min_votes: 1,
            action: MitigationAction::Allow,
        }
    }

    /// Challenge flagged requests with a CAPTCHA — visible to the client,
    /// but no blocklist entry, so the same address can try again.
    pub fn captcha() -> ResponsePolicy {
        ResponsePolicy {
            name: "captcha",
            min_votes: 1,
            action: MitigationAction::Captcha,
        }
    }

    /// Deny flagged requests and blocklist their address for `ttl_secs` of
    /// simulated time (enforced at admission until expiry).
    pub fn block(ttl_secs: u64) -> ResponsePolicy {
        ResponsePolicy {
            name: "block",
            min_votes: 1,
            action: MitigationAction::Block(ttl_secs),
        }
    }

    /// Record the flag, serve the page — the paper's own measurement
    /// posture. The adversary sees pure success and never adapts.
    pub fn shadow() -> ResponsePolicy {
        ResponsePolicy {
            name: "shadow",
            min_votes: 1,
            action: MitigationAction::ShadowFlag,
        }
    }

    /// The same policy with a different vote threshold.
    pub fn with_min_votes(mut self, min_votes: usize) -> ResponsePolicy {
        self.min_votes = min_votes.max(1);
        self
    }

    /// The four shipped policies, in ablation order.
    pub fn all() -> [ResponsePolicy; 4] {
        [
            ResponsePolicy::allow(),
            ResponsePolicy::shadow(),
            ResponsePolicy::captcha(),
            ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS),
        ]
    }

    /// Decide one request from its recorded verdicts.
    pub fn decide(&self, verdicts: &VerdictSet) -> MitigationAction {
        let votes = verdicts.iter().filter(|(_, v)| v.is_bot()).count();
        if votes >= self.min_votes {
            self.action
        } else {
            MitigationAction::Allow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_types::{sym, Verdict};

    fn verdicts(bots: usize, humans: usize) -> VerdictSet {
        let mut set = VerdictSet::new();
        for i in 0..bots {
            set.record(sym(&format!("b{i}")), Verdict::Bot);
        }
        for i in 0..humans {
            set.record(sym(&format!("h{i}")), Verdict::Human);
        }
        set
    }

    #[test]
    fn votes_gate_the_action() {
        let policy = ResponsePolicy::block(100).with_min_votes(2);
        assert_eq!(policy.decide(&verdicts(0, 3)), MitigationAction::Allow);
        assert_eq!(policy.decide(&verdicts(1, 2)), MitigationAction::Allow);
        assert_eq!(policy.decide(&verdicts(2, 1)), MitigationAction::Block(100));
    }

    #[test]
    fn allow_policy_never_escalates() {
        let policy = ResponsePolicy::allow();
        assert_eq!(policy.decide(&verdicts(5, 0)), MitigationAction::Allow);
    }

    #[test]
    fn shadow_triggers_invisibly() {
        let policy = ResponsePolicy::shadow();
        let action = policy.decide(&verdicts(1, 0));
        assert_eq!(action, MitigationAction::ShadowFlag);
        assert!(!action.visible_to_client());
    }

    #[test]
    fn min_votes_floor_is_one() {
        let policy = ResponsePolicy::captcha().with_min_votes(0);
        assert_eq!(policy.min_votes, 1);
        assert_eq!(policy.decide(&verdicts(0, 2)), MitigationAction::Allow);
    }
}
