//! Response policies: how the site answers a flagged request.
//!
//! The paper's honey site runs what [`ResponsePolicy::shadow`] models —
//! record every verdict, serve every page — which is ideal for measurement
//! and useless as mitigation. Production sites pick a visible action, and
//! the §6 finding is that visible mitigation *teaches* evasive services:
//! they rotate IPs across ASNs and geographies and mutate fingerprint
//! attributes until they slip back in. A [`ResponsePolicy`] is therefore
//! the arena's independent variable: same traffic, same detectors, four
//! different feedback signals to the adversary.
//!
//! Since the `DefenseStack` redesign, `ResponsePolicy` is *one*
//! [`DecisionPolicy`] implementation — the static global vote threshold —
//! and the richer policy space (per-detector weights/actions, TTL
//! escalation on repeat offenders) lives in
//! [`fp_types::defense`]. [`ResponsePolicy::escalating`] lifts a block
//! policy onto the escalation ladder.

use fp_types::defense::{DecisionContext, DecisionPolicy, EscalatingTtl};
use fp_types::{MitigationAction, VerdictSet};

/// Maps a request's recorded [`VerdictSet`] to a [`MitigationAction`].
///
/// The trigger is a vote threshold over the chain's named verdicts: a
/// request is acted on when at least `min_votes` detectors flagged it
/// (1 = any flag acts, higher values trade recall for collateral safety).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponsePolicy {
    /// Display name for reports and tables.
    pub name: &'static str,
    /// Number of flagging detectors required before the action applies.
    pub min_votes: usize,
    /// The action applied to triggered requests; everything else is served
    /// normally.
    pub action: MitigationAction,
}

/// Default TTL for [`ResponsePolicy::block`]: one full campaign window
/// (91 days), so a block issued mid-round still binds through part of the
/// next round and measurably decays across it.
pub const DEFAULT_BLOCK_TTL_SECS: u64 = fp_types::STUDY_DAYS as u64 * 86_400;

impl ResponsePolicy {
    /// Serve everything (the do-nothing control: no feedback, no denial).
    pub fn allow() -> ResponsePolicy {
        ResponsePolicy {
            name: "allow",
            min_votes: 1,
            action: MitigationAction::Allow,
        }
    }

    /// Challenge flagged requests with a CAPTCHA — visible to the client,
    /// but no blocklist entry, so the same address can try again.
    pub fn captcha() -> ResponsePolicy {
        ResponsePolicy {
            name: "captcha",
            min_votes: 1,
            action: MitigationAction::Captcha,
        }
    }

    /// Deny flagged requests and blocklist their address for `ttl_secs` of
    /// simulated time (enforced at admission until expiry).
    pub fn block(ttl_secs: u64) -> ResponsePolicy {
        ResponsePolicy {
            name: "block",
            min_votes: 1,
            action: MitigationAction::Block(ttl_secs),
        }
    }

    /// Record the flag, serve the page — the paper's own measurement
    /// posture. The adversary sees pure success and never adapts.
    pub fn shadow() -> ResponsePolicy {
        ResponsePolicy {
            name: "shadow",
            min_votes: 1,
            action: MitigationAction::ShadowFlag,
        }
    }

    /// The same policy with a different vote threshold.
    pub fn with_min_votes(mut self, min_votes: usize) -> ResponsePolicy {
        self.min_votes = min_votes.max(1);
        self
    }

    /// The four shipped policies, in ablation order.
    pub fn all() -> [ResponsePolicy; 4] {
        [
            ResponsePolicy::allow(),
            ResponsePolicy::shadow(),
            ResponsePolicy::captcha(),
            ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS),
        ]
    }

    /// Decide one request from its recorded verdicts.
    pub fn decide(&self, verdicts: &VerdictSet) -> MitigationAction {
        let votes = verdicts.iter().filter(|(_, v)| v.is_bot()).count();
        if votes >= self.min_votes {
            self.action
        } else {
            MitigationAction::Allow
        }
    }

    /// Lift this policy onto the repeat-offender escalation ladder: every
    /// `Block` it issues starts from its own TTL and multiplies by
    /// `multiplier` per prior offense, capped at `max_ttl_secs` (see
    /// [`EscalatingTtl`]).
    pub fn escalating(self, multiplier: u64, max_ttl_secs: u64) -> EscalatingTtl {
        let base = match self.action {
            MitigationAction::Block(ttl_secs) => ttl_secs,
            _ => DEFAULT_BLOCK_TTL_SECS,
        };
        EscalatingTtl::new(Box::new(self), base, multiplier, max_ttl_secs)
    }
}

/// The static global vote threshold as a [`DecisionPolicy`] — what the
/// defense stack runs when no richer policy is configured. Provably the
/// pre-redesign behaviour: the decision reads only the verdict set, so a
/// stack under this policy is action-for-action the old per-record
/// `ResponsePolicy::decide` loop.
impl DecisionPolicy for ResponsePolicy {
    fn name(&self) -> &str {
        self.name
    }

    fn decide(&self, ctx: &DecisionContext<'_>) -> MitigationAction {
        ResponsePolicy::decide(self, ctx.verdicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_types::{sym, Verdict};

    fn verdicts(bots: usize, humans: usize) -> VerdictSet {
        let mut set = VerdictSet::new();
        for i in 0..bots {
            set.record(sym(&format!("b{i}")), Verdict::Bot);
        }
        for i in 0..humans {
            set.record(sym(&format!("h{i}")), Verdict::Human);
        }
        set
    }

    #[test]
    fn votes_gate_the_action() {
        let policy = ResponsePolicy::block(100).with_min_votes(2);
        assert_eq!(policy.decide(&verdicts(0, 3)), MitigationAction::Allow);
        assert_eq!(policy.decide(&verdicts(1, 2)), MitigationAction::Allow);
        assert_eq!(policy.decide(&verdicts(2, 1)), MitigationAction::Block(100));
    }

    #[test]
    fn allow_policy_never_escalates() {
        let policy = ResponsePolicy::allow();
        assert_eq!(policy.decide(&verdicts(5, 0)), MitigationAction::Allow);
    }

    #[test]
    fn shadow_triggers_invisibly() {
        let policy = ResponsePolicy::shadow();
        let action = policy.decide(&verdicts(1, 0));
        assert_eq!(action, MitigationAction::ShadowFlag);
        assert!(!action.visible_to_client());
    }

    #[test]
    fn min_votes_floor_is_one() {
        let policy = ResponsePolicy::captcha().with_min_votes(0);
        assert_eq!(policy.min_votes, 1);
        assert_eq!(policy.decide(&verdicts(0, 2)), MitigationAction::Allow);
    }

    #[test]
    fn decision_policy_impl_matches_the_inherent_decide() {
        use fp_types::SimTime;
        for policy in ResponsePolicy::all() {
            let policy = policy.with_min_votes(2);
            for (bots, humans) in [(0, 3), (1, 2), (2, 1), (5, 0)] {
                let set = verdicts(bots, humans);
                let ctx = DecisionContext {
                    verdicts: &set,
                    ip_hash: 99,
                    now: SimTime::EPOCH,
                    prior_offenses: 7, // static policies must ignore this
                };
                let via_trait = DecisionPolicy::decide(&policy, &ctx);
                assert_eq!(via_trait, policy.decide(&set), "policy {}", policy.name);
            }
        }
    }

    #[test]
    fn escalating_block_ladders_from_the_policy_ttl() {
        use fp_types::SimTime;
        let policy = ResponsePolicy::block(1_000).escalating(3, 100_000);
        let set = verdicts(1, 0);
        let decide = |offenses| {
            DecisionPolicy::decide(
                &policy,
                &DecisionContext {
                    verdicts: &set,
                    ip_hash: 1,
                    now: SimTime::EPOCH,
                    prior_offenses: offenses,
                },
            )
        };
        assert_eq!(decide(0), MitigationAction::Block(1_000));
        assert_eq!(decide(1), MitigationAction::Block(3_000));
        assert_eq!(decide(4), MitigationAction::Block(81_000));
        assert_eq!(decide(40), MitigationAction::Block(100_000), "capped");
        // Non-block policies fall back to the default block TTL base.
        let from_captcha = ResponsePolicy::captcha().escalating(2, u64::MAX);
        assert_eq!(from_captcha.ttl_for(0), DEFAULT_BLOCK_TTL_SECS);
    }
}
