//! Bot adaptation strategies — the §6 behaviours, made executable.
//!
//! The paper observed that after mitigation landed, evasive services
//! changed their traffic: IP geolocation and ASN mixes shifted, and
//! fingerprint attributes that rules keyed on were mutated. An
//! [`AdaptationStrategy`] reproduces that feedback loop for one traffic
//! source: it watches the source's [`RoundOutcome`] (only what a client
//! can see — denials, CAPTCHAs, blocks), builds up pressure, and rewrites
//! the source's next-round requests accordingly. Every rewrite returns a
//! [`MutationReceipt`] so the arena can report the *cost* of staying
//! evasive, not just the rate.
//!
//! Truthful traffic never gets a strategy: real users keep presenting
//! whatever their browsers genuinely say, round after round.

use fp_netsim::asn::{asns_in, AsnClass};
use fp_netsim::{NetDb, Region};
use fp_types::{AttrId, Fingerprint, Request, RoundOutcome, Splittable};

/// What one [`AdaptationStrategy::apply`] call changed about a request —
/// the arena sums these into `core::evaluate::MutationStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationReceipt {
    /// The source address was replaced.
    pub rotated_ip: bool,
    /// Number of fingerprint attributes rewritten (cookie rotation counts
    /// as one — the cookie is the temporal anchor being laundered).
    pub mutated_attrs: u32,
    /// The TLS facet was upgraded to the truthful hello for the claimed UA.
    pub upgraded_tls: bool,
    /// The session cadence facet was re-shaped to look human-paced.
    pub humanised_cadence: bool,
}

impl MutationReceipt {
    /// A receipt for an untouched request.
    pub const NONE: MutationReceipt = MutationReceipt {
        rotated_ip: false,
        mutated_attrs: 0,
        upgraded_tls: false,
        humanised_cadence: false,
    };

    /// Did the strategy change anything?
    pub fn touched(&self) -> bool {
        self.rotated_ip || self.mutated_attrs > 0 || self.upgraded_tls || self.humanised_cadence
    }

    /// Union of two receipts on the same request (for [`Composite`]).
    pub fn merge(self, other: MutationReceipt) -> MutationReceipt {
        MutationReceipt {
            rotated_ip: self.rotated_ip || other.rotated_ip,
            mutated_attrs: self.mutated_attrs + other.mutated_attrs,
            upgraded_tls: self.upgraded_tls || other.upgraded_tls,
            humanised_cadence: self.humanised_cadence || other.humanised_cadence,
        }
    }
}

/// How a bot service (or cohort) rewrites its next round of traffic in
/// response to what it observed this round.
///
/// The contract mirrors the detector contract deliberately: `observe` is
/// fed outcomes in round order, `apply` is called once per next-round
/// request, and implementations must be deterministic given the same
/// outcome sequence and RNG stream — the arena's shard-invariance and
/// reproducibility guarantees rest on it.
pub trait AdaptationStrategy: Send {
    /// Strategy name, for reports.
    fn name(&self) -> &'static str;

    /// Digest one round's visible outcome (called once per round, in
    /// order, after the round completes).
    fn observe(&mut self, outcome: &RoundOutcome);

    /// Fraction of the next round's traffic the source actually sends
    /// (cooldown/retreat strategies shrink it; everyone else sends all).
    fn volume_factor(&self) -> f64 {
        1.0
    }

    /// Rewrite one next-round request in place and account for the change.
    fn apply(&mut self, request: &mut Request, rng: &mut Splittable) -> MutationReceipt;
}

/// Rewrite the fingerprint's timezone story to `region`, returning how
/// many attribute values actually changed. Re-asserting an
/// already-correct value is not a mutation — this is what keeps the cost
/// accounting honest when strategies compose (e.g. `IpRotation` patching
/// the timezone and `FingerprintMutation` aligning it again).
fn align_location(fp: &mut Fingerprint, region: &'static Region) -> u32 {
    let mut changed = 0;
    if fp.get(AttrId::Timezone).as_str() != Some(region.timezone) {
        fp.set(AttrId::Timezone, region.timezone);
        changed += 1;
    }
    let offset = i64::from(region.offset_minutes);
    if fp.get(AttrId::TimezoneOffset).as_int() != Some(offset) {
        fp.set(AttrId::TimezoneOffset, offset);
        changed += 1;
    }
    changed
}

/// The do-nothing control: a service that never adapts.
#[derive(Clone, Copy, Debug, Default)]
pub struct Static;

impl AdaptationStrategy for Static {
    fn name(&self) -> &'static str {
        "static"
    }
    fn observe(&mut self, _outcome: &RoundOutcome) {}
    fn apply(&mut self, _request: &mut Request, _rng: &mut Splittable) -> MutationReceipt {
        MutationReceipt::NONE
    }
}

/// Countries the rotation market sells egress in (all have residential and
/// datacenter inventory in the ASN table).
const ROTATION_COUNTRIES: [&str; 4] = ["United States of America", "Canada", "France", "Germany"];

/// §6.1: rotate source IPs when mitigation bites, escalating from "fresh
/// addresses" to "different ASN class" to "different geography".
///
/// * level 1 — fresh addresses in the same country and class (burns TTL
///   blocklist entries);
/// * level 2 — shift to residential ASNs (changes the ASN mix the way the
///   paper measured);
/// * level 3 — rotate the country too (shifts the geolocation mix; with
///   `patch_timezone` the browser timezone is rewritten to match the new
///   address, otherwise the rotation leaks a location inconsistency).
pub struct IpRotation {
    /// Visible failure rate above which pressure escalates.
    pub trigger: f64,
    /// Rewrite `Timezone`/`TimezoneOffset` to the new address's region
    /// (costs two attribute mutations per request, but starves the
    /// location rules).
    pub patch_timezone: bool,
    level: u8,
}

impl IpRotation {
    /// A rotation strategy with the given escalation trigger.
    pub fn new(trigger: f64, patch_timezone: bool) -> IpRotation {
        IpRotation {
            trigger,
            patch_timezone,
            level: 0,
        }
    }

    /// Current escalation level (0 = dormant, 3 = full geo rotation).
    pub fn level(&self) -> u8 {
        self.level
    }
}

impl AdaptationStrategy for IpRotation {
    fn name(&self) -> &'static str {
        "ip-rotation"
    }

    fn observe(&mut self, outcome: &RoundOutcome) {
        if outcome.visible_failure_rate() > self.trigger {
            self.level = (self.level + 1).min(3);
        }
    }

    fn apply(&mut self, request: &mut Request, rng: &mut Splittable) -> MutationReceipt {
        if self.level == 0 {
            return MutationReceipt::NONE;
        }
        let current = NetDb::lookup(request.ip);
        let country = if self.level >= 3 {
            // Rotate geography: any rotation-market country but the one the
            // request already sits in.
            loop {
                let cand = *rng.pick(&ROTATION_COUNTRIES);
                if cand != current.region.country {
                    break cand;
                }
            }
        } else {
            current.region.country
        };
        let class = if self.level >= 2 {
            AsnClass::Residential
        } else {
            current.asn.class
        };
        let pool = {
            let exact = asns_in(country, class);
            if !exact.is_empty() {
                exact
            } else {
                // No inventory of this class where the request sits (e.g.
                // Singapore has datacenter space only) — buy in one of the
                // rotation market's stocked countries instead.
                let market = *rng.pick(&ROTATION_COUNTRIES);
                let stocked = asns_in(market, class);
                if stocked.is_empty() {
                    asns_in(market, AsnClass::Residential)
                } else {
                    stocked
                }
            }
        };
        let asn = pool[rng.next_below(pool.len() as u64) as usize];
        request.ip = NetDb::sample_ip(asn, rng);

        let mut receipt = MutationReceipt {
            rotated_ip: true,
            ..MutationReceipt::NONE
        };
        if self.patch_timezone {
            let region = NetDb::lookup(request.ip).region;
            receipt.mutated_attrs += align_location(&mut request.fingerprint, region);
        }
        receipt
    }
}

/// Hardware-concurrency values the mutation pool draws from: plausible
/// mid-range counts the campaign's archetypes rarely emit, so mined
/// concrete pairs keyed on the original values stop matching.
const MUTATED_CORES: [i64; 4] = [6, 10, 14, 20];

/// Platform strings the sloppier mutation draws — off the beaten path of
/// the round-0 traffic, so no mined pair anchors on them.
const MUTATED_PLATFORMS: [&str; 3] = ["Linux i686", "FreeBSD amd64", "Win64"];

/// §6.2: mutate the fingerprint attributes mitigation keys on.
///
/// Once the visible failure rate crosses the trigger the strategy latches
/// on and rewrites every request: timezone aligned with the source address
/// (starves the location generalisation), screen/hardware values
/// re-randomised away from the mined concrete pairs, and the first-party
/// cookie rotated per request (launders the temporal anchor). With
/// probability `1 - thoroughness` the platform string is swapped too — a
/// sloppy touch that a *re-mined* rule set would catch, exactly the
/// paper's point about static filter lists rotting.
pub struct FingerprintMutation {
    /// Visible failure rate above which the strategy latches on.
    pub trigger: f64,
    /// How careful the operator is: careless mutations (platform swaps)
    /// happen with probability `1 - thoroughness`.
    pub thoroughness: f64,
    active: bool,
}

impl FingerprintMutation {
    /// A mutation strategy with the given trigger and carefulness.
    pub fn new(trigger: f64, thoroughness: f64) -> FingerprintMutation {
        FingerprintMutation {
            trigger,
            thoroughness,
            active: false,
        }
    }

    /// Has adaptation pressure activated the strategy?
    pub fn active(&self) -> bool {
        self.active
    }
}

impl AdaptationStrategy for FingerprintMutation {
    fn name(&self) -> &'static str {
        "fingerprint-mutation"
    }

    fn observe(&mut self, outcome: &RoundOutcome) {
        if outcome.visible_failure_rate() > self.trigger {
            self.active = true;
        }
    }

    fn apply(&mut self, request: &mut Request, rng: &mut Splittable) -> MutationReceipt {
        if !self.active {
            return MutationReceipt::NONE;
        }
        let mut mutated = 0u32;

        // Align the browser timezone with whatever address carries the
        // request — the location rules live off this mismatch. Counts only
        // values that actually change.
        let region = NetDb::lookup(request.ip).region;
        mutated += align_location(&mut request.fingerprint, region);
        let fp = &mut request.fingerprint;

        // Re-randomise the hardware story away from the mined pairs.
        let res = (
            800 + rng.next_below(1800) as u16,
            500 + rng.next_below(1100) as u16,
        );
        fp.set(AttrId::ScreenResolution, res);
        fp.set(AttrId::AvailResolution, res);
        fp.set(AttrId::HardwareConcurrency, *rng.pick(&MUTATED_CORES));
        mutated += 3;

        // Careless operators swap the platform string too.
        if !rng.chance(self.thoroughness) {
            fp.set(AttrId::Platform, *rng.pick(&MUTATED_PLATFORMS));
            mutated += 1;
        }

        // Fresh cookie per request: the temporal anchor never accumulates.
        request.cookie = Some(rng.next_u64());
        mutated += 1;

        MutationReceipt {
            mutated_attrs: mutated,
            ..MutationReceipt::NONE
        }
    }
}

/// The laggard's way out: upgrade the TLS stack to match the claimed UA.
///
/// Stack upgrades are the expensive mutation — swapping a Go fetcher for a
/// real browser runtime — so the fleet converts gradually: each pressured
/// round moves `upgrade_rate` more of the fleet onto the truthful hello.
/// Until a request's slice of the fleet has upgraded, its hello keeps
/// telling the truth about the old stack, and the cross-layer detector
/// keeps catching it — recall decays *only* at the pace the adversary pays
/// this cost, which is the arena's TLS-side headline.
pub struct TlsUpgrade {
    /// Visible failure rate above which another fleet slice upgrades.
    pub trigger: f64,
    /// Fraction of the fleet upgraded per pressured round.
    pub upgrade_rate: f64,
    fleet_upgraded: f64,
}

impl TlsUpgrade {
    /// A gradual-upgrade strategy.
    pub fn new(trigger: f64, upgrade_rate: f64) -> TlsUpgrade {
        TlsUpgrade {
            trigger,
            upgrade_rate,
            fleet_upgraded: 0.0,
        }
    }

    /// Fraction of the fleet running the truthful stack.
    pub fn fleet_upgraded(&self) -> f64 {
        self.fleet_upgraded
    }
}

impl AdaptationStrategy for TlsUpgrade {
    fn name(&self) -> &'static str {
        "tls-upgrade"
    }

    fn observe(&mut self, outcome: &RoundOutcome) {
        if outcome.visible_failure_rate() > self.trigger {
            self.fleet_upgraded = (self.fleet_upgraded + self.upgrade_rate).min(1.0);
        }
    }

    fn apply(&mut self, request: &mut Request, rng: &mut Splittable) -> MutationReceipt {
        if self.fleet_upgraded <= 0.0 || !rng.chance(self.fleet_upgraded) {
            return MutationReceipt::NONE;
        }
        let truthful = fp_botnet::archetype::truthful_tls(&request.fingerprint);
        if !truthful.is_observed() {
            return MutationReceipt::NONE;
        }
        request.tls = truthful;
        MutationReceipt {
            upgraded_tls: true,
            ..MutationReceipt::NONE
        }
    }
}

/// The FP-Agent counter-move: pace the agent like a person.
///
/// An AI agent's natural cadence is machine-regular — page gaps a few
/// seconds apart with almost no jitter (`gap_cv` ≈ 0.02–0.10), which is
/// exactly what the `fp-behavior` detector's static floor catches — and
/// its page loads are pointer-silent, which is what DataDome's
/// per-request read catches. The counter-move forges both: the agent
/// replays a recorded human pointer trajectory (passing the naturalness
/// score per request) and injects think-time jitter into its scheduler.
/// The jitter costs real wall-clock throughput — so,
/// like [`TlsUpgrade`], the fleet converts gradually: each pressured
/// round moves `humanise_rate` more of the fleet onto jittered pacing.
/// A humanised request's cadence facet is rewritten to sit *above* the
/// detector's static floor but *below* any credible human's variance
/// (`gap_cv` ∈ 0.20–0.30) — enough to beat a frozen detector, still
/// separable by one that re-fits its floor from retained human traffic.
pub struct BehaviouralMutation {
    /// Visible failure rate above which another fleet slice humanises.
    pub trigger: f64,
    /// Fraction of the fleet humanised per pressured round.
    pub humanise_rate: f64,
    fleet_humanised: f64,
}

impl BehaviouralMutation {
    /// A gradual cadence-humanising strategy.
    pub fn new(trigger: f64, humanise_rate: f64) -> BehaviouralMutation {
        BehaviouralMutation {
            trigger,
            humanise_rate,
            fleet_humanised: 0.0,
        }
    }

    /// Fraction of the fleet pacing itself like a person.
    pub fn fleet_humanised(&self) -> f64 {
        self.fleet_humanised
    }
}

impl AdaptationStrategy for BehaviouralMutation {
    fn name(&self) -> &'static str {
        "behavioural-mutation"
    }

    fn observe(&mut self, outcome: &RoundOutcome) {
        if outcome.visible_failure_rate() > self.trigger {
            self.fleet_humanised = (self.fleet_humanised + self.humanise_rate).min(1.0);
        }
    }

    fn apply(&mut self, request: &mut Request, rng: &mut Splittable) -> MutationReceipt {
        if self.fleet_humanised <= 0.0 || !rng.chance(self.fleet_humanised) {
            return MutationReceipt::NONE;
        }
        let cadence = request.cadence;
        if !cadence.is_observed() {
            // Nothing to humanise: the session never presented a cadence
            // facet (laggard services replay headless bursts with no
            // page-event stream to reshape).
            return MutationReceipt::NONE;
        }
        // Stretch the gaps (think time slows the crawl) and jitter them:
        // the humanised coefficient of variation lands in 0.20–0.30.
        let gap_q50 = cadence.gap_q50_ms + 3_000 + rng.next_below(6_000) as u32;
        let gap_cv = 0.20 + rng.next_below(1_000) as f32 / 10_000.0;
        let gap_q90 = gap_q50 * 2 + rng.next_below(8_000) as u32;
        let dwell = cadence.dwell_q50_ms + 2_000 + rng.next_below(6_000) as u32;
        request.cadence = fp_types::BehaviorFacet::observed(
            gap_q50,
            gap_q90,
            gap_cv,
            cadence.pages,
            cadence.unique_transitions.max(2),
            dwell,
        );
        // Replay a recorded human pointer trajectory: jittered around the
        // human envelope, it clears the per-request naturalness score —
        // the forgery that beats DataDome but not the session cadence.
        request.behavior = fp_types::BehaviorTrace {
            mouse_events: 12 + rng.next_below(24) as u16,
            touch_events: 0,
            pointer: Some(fp_types::PointerStats {
                samples: 25 + rng.next_below(40) as u16,
                duration_ms: 1_500 + rng.next_below(2_500) as u32,
                speed_cv: 0.40 + rng.next_below(400) as f32 / 1_000.0,
                curvature: 0.08 + rng.next_below(100) as f32 / 1_000.0,
                pause_fraction: 0.15 + rng.next_below(200) as f32 / 1_000.0,
            }),
            first_input_delay_ms: 300 + rng.next_below(1_500) as u32,
        };
        MutationReceipt {
            humanised_cadence: true,
            ..MutationReceipt::NONE
        }
    }
}

/// Retreat: when mitigation bites, send less until the heat dies down.
pub struct Cooldown {
    /// Visible failure rate above which the source throttles.
    pub trigger: f64,
    /// Fraction of normal volume sent while cooling.
    pub factor: f64,
    cooling: bool,
}

impl Cooldown {
    /// A cooldown strategy sending `factor` of normal volume under
    /// pressure.
    pub fn new(trigger: f64, factor: f64) -> Cooldown {
        Cooldown {
            trigger,
            factor: factor.clamp(0.0, 1.0),
            cooling: false,
        }
    }
}

impl AdaptationStrategy for Cooldown {
    fn name(&self) -> &'static str {
        "cooldown"
    }

    fn observe(&mut self, outcome: &RoundOutcome) {
        self.cooling = outcome.visible_failure_rate() > self.trigger;
    }

    fn volume_factor(&self) -> f64 {
        if self.cooling {
            self.factor
        } else {
            1.0
        }
    }

    fn apply(&mut self, _request: &mut Request, _rng: &mut Splittable) -> MutationReceipt {
        MutationReceipt::NONE
    }
}

/// Run several strategies on the same source (observed in order, applied
/// in order, volume factors multiplied).
pub struct Composite {
    strategies: Vec<Box<dyn AdaptationStrategy>>,
}

impl Composite {
    /// Compose strategies; they apply in the given order.
    pub fn new(strategies: Vec<Box<dyn AdaptationStrategy>>) -> Composite {
        Composite { strategies }
    }
}

impl AdaptationStrategy for Composite {
    fn name(&self) -> &'static str {
        "composite"
    }

    fn observe(&mut self, outcome: &RoundOutcome) {
        for s in &mut self.strategies {
            s.observe(outcome);
        }
    }

    fn volume_factor(&self) -> f64 {
        self.strategies.iter().map(|s| s.volume_factor()).product()
    }

    fn apply(&mut self, request: &mut Request, rng: &mut Splittable) -> MutationReceipt {
        let mut receipt = MutationReceipt::NONE;
        for s in &mut self.strategies {
            receipt = receipt.merge(s.apply(request, rng));
        }
        receipt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_fingerprint::{
        BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile, LocaleSpec,
    };
    use fp_types::{sym, BehaviorTrace, SimTime, TrafficSource};
    use std::net::Ipv4Addr;

    fn request(ip: Ipv4Addr) -> Request {
        let mut rng = Splittable::new(1);
        let d = DeviceProfile::sample(DeviceKind::WindowsDesktop, &mut rng);
        let b = BrowserProfile::contemporary(BrowserFamily::Chrome, &mut rng);
        Request {
            id: 0,
            time: SimTime::from_day(1, 10),
            site_token: sym("t"),
            ip,
            cookie: Some(7),
            fingerprint: Collector::collect(&d, &b, &LocaleSpec::en_us()),
            tls: b.family.tls_facet(),
            behavior: BehaviorTrace::silent(),
            cadence: fp_types::BehaviorFacet::unobserved(),
            source: TrafficSource::Bot(fp_types::ServiceId(1)),
        }
    }

    fn pressured(rate_num: u64) -> RoundOutcome {
        RoundOutcome {
            round: 0,
            sent: 100,
            denied: rate_num,
            captchas: 0,
            blocked: 0,
            allowed: 100 - rate_num,
        }
    }

    #[test]
    fn static_strategy_never_touches() {
        let mut s = Static;
        s.observe(&pressured(90));
        let mut req = request(Ipv4Addr::new(52, 9, 9, 9));
        let before = req.clone();
        assert!(!s.apply(&mut req, &mut Splittable::new(2)).touched());
        assert_eq!(req.ip, before.ip);
        assert_eq!(req.fingerprint, before.fingerprint);
    }

    #[test]
    fn rotation_escalates_under_pressure_only() {
        let mut s = IpRotation::new(0.2, true);
        let mut req = request(Ipv4Addr::new(52, 9, 9, 9));
        assert!(!s.apply(&mut req, &mut Splittable::new(3)).touched());

        s.observe(&pressured(50));
        assert_eq!(s.level(), 1);
        let mut rng = Splittable::new(4);
        let before_ip = req.ip;
        let receipt = s.apply(&mut req, &mut rng);
        assert!(receipt.rotated_ip);
        assert_ne!(req.ip, before_ip);
        // Level 1 keeps the country and class.
        assert_eq!(
            NetDb::lookup(req.ip).region.country,
            "United States of America"
        );
        assert_eq!(NetDb::lookup(req.ip).asn.class, AsnClass::CloudDatacenter);
    }

    #[test]
    fn rotation_shifts_class_then_geography() {
        let mut s = IpRotation::new(0.2, false);
        s.observe(&pressured(50));
        s.observe(&pressured(50));
        assert_eq!(s.level(), 2);
        let mut rng = Splittable::new(5);
        let mut req = request(Ipv4Addr::new(52, 9, 9, 9));
        s.apply(&mut req, &mut rng);
        assert_eq!(NetDb::lookup(req.ip).asn.class, AsnClass::Residential);

        s.observe(&pressured(50));
        assert_eq!(s.level(), 3);
        let mut moved = 0;
        for i in 0..20 {
            let mut req = request(Ipv4Addr::new(52, 9, 9, i as u8 + 1));
            s.apply(&mut req, &mut rng);
            if NetDb::lookup(req.ip).region.country != "United States of America" {
                moved += 1;
            }
        }
        assert_eq!(moved, 20, "level 3 always leaves the country");
        s.observe(&pressured(50));
        assert_eq!(s.level(), 3, "escalation caps at 3");
    }

    #[test]
    fn rotation_timezone_patch_keeps_location_consistent() {
        let mut s = IpRotation::new(0.2, true);
        for _ in 0..3 {
            s.observe(&pressured(50));
        }
        let mut rng = Splittable::new(6);
        for i in 0..10 {
            let mut req = request(Ipv4Addr::new(52, 9, 1, i + 1));
            let receipt = s.apply(&mut req, &mut rng);
            assert!(
                receipt.mutated_attrs <= 2,
                "at most timezone + offset change"
            );
            let region = NetDb::lookup(req.ip).region;
            assert_eq!(
                req.fingerprint.get(AttrId::Timezone).as_str(),
                Some(region.timezone)
            );
            assert_eq!(
                req.fingerprint.get(AttrId::TimezoneOffset).as_int(),
                Some(i64::from(region.offset_minutes))
            );
        }
    }

    #[test]
    fn mutation_latches_and_rewrites() {
        let mut s = FingerprintMutation::new(0.2, 1.0);
        let mut req = request(Ipv4Addr::new(73, 9, 9, 9));
        assert!(!s.apply(&mut req, &mut Splittable::new(7)).touched());
        s.observe(&pressured(30));
        assert!(s.active());
        // Pressure off again — the strategy stays latched.
        s.observe(&pressured(0));
        assert!(s.active());

        let before_cookie = req.cookie;
        let receipt = s.apply(&mut req, &mut Splittable::new(8));
        // Resolution (2) + cores (1) + cookie (1) always change; the
        // timezone pair counts only if it was actually wrong.
        assert!(receipt.mutated_attrs >= 4);
        assert_ne!(req.cookie, before_cookie, "cookie rotated");
        let region = NetDb::lookup(req.ip).region;
        assert_eq!(
            req.fingerprint.get(AttrId::Timezone).as_str(),
            Some(region.timezone)
        );
    }

    #[test]
    fn tls_upgrade_converts_the_fleet_gradually() {
        let mut s = TlsUpgrade::new(0.2, 0.5);
        let mut rng = Splittable::new(9);
        let mut req = request(Ipv4Addr::new(73, 1, 1, 1));
        req.tls = fp_tls::TlsClientKind::GoHttp.facet();
        assert!(!s.apply(&mut req, &mut rng).touched(), "no pressure yet");

        s.observe(&pressured(80));
        assert!((s.fleet_upgraded() - 0.5).abs() < 1e-12);
        let mut upgrades = 0;
        for _ in 0..200 {
            let mut req = request(Ipv4Addr::new(73, 1, 1, 1));
            req.tls = fp_tls::TlsClientKind::GoHttp.facet();
            if s.apply(&mut req, &mut rng).upgraded_tls {
                upgrades += 1;
                assert_eq!(
                    req.tls,
                    fp_tls::TlsClientKind::Chromium.facet(),
                    "Chrome UA upgrades to the Chromium hello"
                );
            }
        }
        assert!(
            (70..=130).contains(&upgrades),
            "≈half the fleet upgraded, got {upgrades}/200"
        );

        s.observe(&pressured(80));
        assert!((s.fleet_upgraded() - 1.0).abs() < 1e-12, "caps at 1.0");
    }

    #[test]
    fn behavioural_mutation_humanises_the_fleet_gradually() {
        use fp_types::behavior::{CADENCE_CV_CEILING, CADENCE_CV_FLOOR};
        let mut s = BehaviouralMutation::new(0.2, 0.5);
        let mut rng = Splittable::new(12);
        let machine = fp_types::BehaviorFacet::observed(3_000, 3_300, 0.05, 6, 1, 2_800);
        let mut req = request(Ipv4Addr::new(73, 1, 1, 1));
        req.cadence = machine;
        assert!(!s.apply(&mut req, &mut rng).touched(), "no pressure yet");

        s.observe(&pressured(80));
        assert!((s.fleet_humanised() - 0.5).abs() < 1e-12);
        let mut humanised = 0;
        for _ in 0..200 {
            let mut req = request(Ipv4Addr::new(73, 1, 1, 1));
            req.cadence = machine;
            if s.apply(&mut req, &mut rng).humanised_cadence {
                humanised += 1;
                // The rewritten cadence clears the static floor but stays
                // below the re-fit ceiling — beats a frozen detector,
                // separable by a re-fitted one.
                assert!(req.cadence.gap_cv > CADENCE_CV_FLOOR);
                assert!(req.cadence.gap_cv < CADENCE_CV_CEILING);
                assert!(req.cadence.gap_q50_ms > machine.gap_q50_ms, "think time");
                // And the replayed trajectory passes the per-request
                // pointer read DataDome applies.
                assert!(
                    fp_types::behavior::credible_pointer(&req.behavior),
                    "the forged trajectory must clear the naturalness score"
                );
            }
        }
        assert!(
            (70..=130).contains(&humanised),
            "≈half the fleet humanised, got {humanised}/200"
        );

        // Sessions with no cadence facet have nothing to reshape.
        let mut silent = request(Ipv4Addr::new(73, 1, 1, 1));
        silent.cadence = fp_types::BehaviorFacet::unobserved();
        s.observe(&pressured(80));
        assert!((s.fleet_humanised() - 1.0).abs() < 1e-12, "caps at 1.0");
        assert!(!s.apply(&mut silent, &mut rng).touched());
    }

    #[test]
    fn cooldown_throttles_volume_only() {
        let mut s = Cooldown::new(0.3, 0.4);
        assert_eq!(s.volume_factor(), 1.0);
        s.observe(&pressured(50));
        assert!((s.volume_factor() - 0.4).abs() < 1e-12);
        s.observe(&pressured(0));
        assert_eq!(s.volume_factor(), 1.0, "cooldown releases");
        let mut req = request(Ipv4Addr::new(73, 1, 1, 1));
        assert!(!s.apply(&mut req, &mut Splittable::new(10)).touched());
    }

    #[test]
    fn composite_merges_receipts_and_factors() {
        let mut s = Composite::new(vec![
            Box::new(IpRotation::new(0.2, false)),
            Box::new(FingerprintMutation::new(0.2, 1.0)),
            Box::new(Cooldown::new(0.2, 0.5)),
        ]);
        s.observe(&pressured(50));
        assert!((s.volume_factor() - 0.5).abs() < 1e-12);
        let mut req = request(Ipv4Addr::new(52, 9, 9, 9));
        let receipt = s.apply(&mut req, &mut Splittable::new(11));
        assert!(receipt.rotated_ip);
        assert!(receipt.mutated_attrs >= 4);
    }
}
