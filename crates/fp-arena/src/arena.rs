//! The closed loop: rounds of traffic → verdicts → mitigation → adaptation
//! → (since the `DefenseStack` redesign) defender retraining.
//!
//! One [`Arena`] owns everything both sides of the §6 feedback loop need:
//! the defender's [`DefenseStack`] (member chain + decision policy —
//! by default the honey-site chain plus FP-Inconsistent's members, mined
//! on round 0's paper traffic: mine offline, deploy online), the TTL
//! blocklist the policy writes, and one [`AdaptationStrategy`] per bot
//! service.
//!
//! A round is:
//!
//! 1. **Generate** — every source emits its traffic. Round 0 is exactly
//!    the single-shot cohort campaign (provably flag-for-flag identical to
//!    the pre-arena pipeline); later rounds re-generate the bot services
//!    and the TLS-laggard cohort and let their strategies rewrite the
//!    requests, while real users and AI agents are the same truthful
//!    population every round, shifted in time.
//! 2. **Admit** — the TTL blocklist (written by earlier rounds, expiring
//!    on simulated time) turns away listed addresses before anything else
//!    sees them — `fp-netsim`'s enforcement point.
//! 3. **Detect** — the admitted stream runs through the sharded ingest
//!    pipeline under the stack's *current* detector chain; every record
//!    carries the full named `VerdictSet`.
//! 4. **Mitigate** — the stack's [`DecisionPolicy`] maps each record's
//!    verdicts (plus the address's offense history) to a
//!    [`MitigationAction`]; blocks feed the blocklist for *subsequent*
//!    rounds (mitigation ships in batches, like real vendors' list
//!    updates).
//! 5. **Retrain** — the defender's lifecycle: the stack seals the round's
//!    labeled records into its training store as one epoch, applies
//!    [`ArenaConfig::retention`] (evicting stale epochs), and every stack
//!    member digests the retained window
//!    ([`DefenseStack::end_of_round`]). With a re-mining cadence
//!    configured, `fp-spatial` re-runs Algorithm 1 over that window and
//!    the *next* round's chain deploys the refreshed rules. The spend —
//!    retraining *and* eviction — is recorded in the round's stats.
//! 6. **Adapt** — each bot service observes its own visible outcome (and
//!    nothing else) and updates its strategy for the next round.
//!
//! Everything is seeded and the per-round ingest is the shard-invariant
//! pipeline, so a whole campaign replays identically at any shard count.

use crate::policy::ResponsePolicy;
use crate::strategy::{AdaptationStrategy, BehaviouralMutation};
use fp_behavior::BehaviorMember;
use fp_botnet::{Campaign, CampaignConfig};
use fp_honeysite::{DefenseStack, HoneySite, RequestStore};
use fp_inconsistent_core::defense::{ChurnLedger, RoundChurn, SpatialMember};
use fp_inconsistent_core::evaluate::{self, MutationStats, RoundStats, TrajectoryReport};
use fp_inconsistent_core::{FpInconsistent, MineConfig, PackSlot, RulePack};
use fp_netsim::{NetDb, TtlBlocklist};
use fp_obs::{MetricsRegistry, RoundObs};
use fp_types::defense::{DecisionContext, DecisionPolicy, Frozen};
use fp_types::runfp::{component_of, RunComponents, RunFingerprint};
use fp_types::{
    mix2, ActionLedger, BehaviorThresholds, Cohort, HotSwap, MitigationAction, Request,
    RetentionPolicy, RoundOutcome, Scale, ServiceId, SimTime, Splittable, TrafficSource,
    STUDY_DAYS,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Simulated seconds per arena round (one full campaign window).
pub const ROUND_SECS: u64 = STUDY_DAYS as u64 * 86_400;

/// Visible-failure trigger for the [`ArenaConfig::agent_humanise`]
/// preset's [`BehaviouralMutation`]: low enough that a blocking policy's
/// first round of mitigation starts the humanising conversion.
pub const AGENT_HUMANISE_TRIGGER: f64 = 0.05;

/// Arena parameters.
#[derive(Clone, Copy, Debug)]
pub struct ArenaConfig {
    /// Volume scale relative to the paper's campaign.
    pub scale: Scale,
    /// Master seed; every round's generation and adaptation derives from
    /// it.
    pub seed: u64,
    /// Ingest shards per round (1 = sequential-equivalent).
    pub shards: usize,
    /// The response policy under test (installed as the stack's
    /// [`DecisionPolicy`]; swap in a richer one with
    /// [`Arena::set_policy`]).
    pub policy: ResponsePolicy,
    /// Defender re-mining cadence for the `fp-spatial` member: with
    /// `Some(n)`, the rule set is re-mined from the retained labeled
    /// rounds at the end of every `n`-th round (1 = every round). `None`
    /// freezes the round-0 rules forever — the pre-redesign behaviour.
    pub remine_cadence: Option<u32>,
    /// Retention policy for the defender's training window: each round is
    /// sealed into the stack's store as one epoch and this policy decides
    /// what stays. `KeepAll` (the default) is the unbounded pre-refactor
    /// window; `SlidingWindow { epochs }` caps peak resident records and
    /// re-mining scan spend for long-horizon arenas. Eviction is counted
    /// in the trajectory's defender-spend columns.
    pub retention: RetentionPolicy,
    /// The AI-agent operator's counter-move: with `Some(rate)`, the agent
    /// cohort runs a [`BehaviouralMutation`] strategy that converts
    /// `rate` of the fleet to human-paced cadence per pressured round
    /// (trigger [`AGENT_HUMANISE_TRIGGER`]). `None` keeps the agents'
    /// stock machine cadence forever.
    pub agent_humanise: Option<f64>,
    /// Behaviour-detector re-fit cadence: with `Some(n)`,
    /// [`Arena::new`] mounts a [`BehaviorMember`] that re-fits its
    /// cadence floor from the retained trusted traffic at the end of
    /// every `n`-th round. `None` freezes the static floor — the
    /// [`fp_honeysite::DefenseStack::default`] behaviour. (Arenas built
    /// with [`Arena::with_stack`] keep whatever behaviour member the
    /// caller's stack mounts; this knob drives the default stack only.)
    pub behavior_refit: Option<u32>,
    /// Drive each round through the continuously running serving layer
    /// ([`fp_honeysite::serve`]) instead of the batch sharded pipeline:
    /// requests are submitted one at a time with the TTL-blocklist check
    /// as the service's admission gate on the submit hot path. `None`
    /// (the default) keeps the batch path. Use
    /// [`fp_types::OverflowPolicy::Block`] here — a shedding arena would silently drop round traffic (shed
    /// requests are neither recorded nor counted as denied). Like
    /// [`ArenaConfig::shards`], this is an execution parameter the
    /// serving layer proves behaviour-invariant, so it is excluded from
    /// the run fingerprint.
    pub serve: Option<fp_types::ServeConfig>,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig {
            scale: Scale::ratio(0.02),
            seed: 0xF91C0DE,
            shards: 1,
            policy: ResponsePolicy::block(crate::policy::DEFAULT_BLOCK_TTL_SECS),
            remine_cadence: None,
            retention: RetentionPolicy::KeepAll,
            agent_humanise: None,
            behavior_refit: None,
            serve: None,
        }
    }
}

/// Everything one completed round hands back.
pub struct RoundResult {
    /// The round index.
    pub round: u32,
    /// The round's recorded store (admitted traffic with full verdict
    /// provenance).
    pub store: RequestStore,
    /// Per-source visible outcomes — what each adaptation strategy was
    /// shown.
    pub outcomes: HashMap<TrafficSource, RoundOutcome>,
    /// The round's measurement (also accumulated in the arena's
    /// [`TrajectoryReport`]).
    pub stats: RoundStats,
}

impl RoundResult {
    /// A source's outcome (zero-filled if it sent nothing).
    pub fn outcome(&self, source: TrafficSource) -> RoundOutcome {
        self.outcomes.get(&source).copied().unwrap_or(RoundOutcome {
            round: self.round,
            ..RoundOutcome::default()
        })
    }
}

/// The closed-loop mitigation & adaptation arena.
pub struct Arena {
    config: ArenaConfig,
    base: Campaign,
    engine: FpInconsistent,
    stack: DefenseStack,
    /// The spatial member's deployment slot (shared with the member): the
    /// arena reads it to report the active pack, tests read it to verify
    /// the compiled/interpreted equivalence round by round.
    spatial_pack: std::sync::Arc<PackSlot>,
    /// The spatial member's per-re-mine churn trail (shared with the
    /// member, like the pack slot): what each freshly mined rule costs
    /// on the window's truthful traffic.
    spatial_churn: std::sync::Arc<ChurnLedger>,
    blocklist: TtlBlocklist,
    strategies: HashMap<ServiceId, Box<dyn AdaptationStrategy>>,
    laggard_strategy: Option<Box<dyn AdaptationStrategy>>,
    agent_strategy: Option<Box<dyn AdaptationStrategy>>,
    /// The behaviour member's live thresholds slot (shared with the
    /// member mounted by [`Arena::new`], like the spatial pack slot):
    /// the arena reads it to report the deployed cadence floor round by
    /// round. `None` for caller-supplied stacks.
    behavior_slot: Option<Arc<HotSwap<BehaviorThresholds>>>,
    trajectory: TrajectoryReport,
    /// The one metrics registry every layer records into: the per-round
    /// site chain, the stack and its re-mining member, the training
    /// store, and the admission blocklist. Per-round deltas land on each
    /// [`RoundStats::obs`]; the registry itself accumulates campaign
    /// totals.
    registry: Arc<MetricsRegistry>,
    round: u32,
}

impl Arena {
    /// Set up the arena from the default defense stack (the honey site's
    /// commercial chain): generate the base campaign, mine the engine on
    /// its paper-faithful traffic (bots + real users) exactly like the
    /// single-shot pipeline does, and mount the FP-Inconsistent members.
    /// The behaviour member rides frozen or re-fitting per
    /// [`ArenaConfig::behavior_refit`], with its re-fit scan/swap
    /// instruments wired into the arena's registry.
    pub fn new(config: ArenaConfig) -> Arena {
        let registry = Arc::new(MetricsRegistry::new());
        let mut behavior = match config.behavior_refit {
            None => BehaviorMember::frozen(),
            Some(cadence) => BehaviorMember::refitting(cadence),
        };
        behavior.set_metrics(&registry);
        let slot = behavior.slot();
        let mut arena =
            Arena::with_registry(config, DefenseStack::with_behavior(behavior), registry);
        arena.behavior_slot = Some(slot);
        arena
    }

    /// Set up the arena from a caller-supplied base stack. The stack
    /// provides the leading (commercial) members; the arena mines the
    /// FP-Inconsistent engine on the base campaign's paper traffic as run
    /// through that stack's chain, appends the engine's members (the
    /// spatial member re-mining at [`ArenaConfig::remine_cadence`], the
    /// two frozen temporal anchors), and installs [`ArenaConfig::policy`]
    /// as the stack's decision policy.
    pub fn with_stack(config: ArenaConfig, stack: DefenseStack) -> Arena {
        Arena::with_registry(config, stack, Arc::new(MetricsRegistry::new()))
    }

    /// The shared constructor body: callers that pre-wire instruments
    /// into members before boxing them (as [`Arena::new`] does for the
    /// behaviour member) pass the registry those members record into.
    fn with_registry(
        config: ArenaConfig,
        mut stack: DefenseStack,
        registry: Arc<MetricsRegistry>,
    ) -> Arena {
        let base = Campaign::generate(CampaignConfig {
            scale: config.scale,
            seed: config.seed,
        });
        let mut mine_site = HoneySite::from_stack(&stack);
        Self::register_tokens(&mut mine_site, &base);
        mine_site.ingest_all(base.bot_requests.iter().cloned());
        mine_site.ingest_all(base.real_users.iter().map(|r| r.request.clone()));
        let engine = FpInconsistent::mine(&mine_site.into_store(), &MineConfig::default());

        stack.set_policy(Box::new(config.policy));
        stack.set_retention(config.retention);
        let mut member = match config.remine_cadence {
            None => SpatialMember::frozen(&engine),
            // The member's window starts empty: round 0 replays the
            // mining traffic, so pre-seeding would double-count it.
            Some(cadence) => SpatialMember::remining(&engine, MineConfig::default(), cadence),
        };
        member.set_metrics(&registry);
        let spatial_pack = member.pack_slot();
        let spatial_churn = member.churn_ledger();
        stack.push_member(Box::new(member));
        // The spatial slot is the member above; the engine's remaining
        // detectors (the temporal anchors) retrain nothing between rounds
        // and ride frozen. Select by provenance name, not position, so a
        // reordered or extended engine chain cannot silently double-mount
        // the spatial detector.
        for detector in engine
            .detectors()
            .into_iter()
            .filter(|d| d.name() != fp_types::detect::provenance::FP_SPATIAL)
        {
            stack.push_member(Box::new(Frozen::new(detector)));
        }
        stack.set_metrics(registry.clone());
        let mut blocklist = TtlBlocklist::new();
        blocklist.set_metrics(&registry);

        Arena {
            config,
            base,
            engine,
            stack,
            spatial_pack,
            spatial_churn,
            blocklist,
            strategies: HashMap::new(),
            laggard_strategy: None,
            agent_strategy: config.agent_humanise.map(|rate| {
                Box::new(BehaviouralMutation::new(AGENT_HUMANISE_TRIGGER, rate))
                    as Box<dyn AdaptationStrategy>
            }),
            behavior_slot: None,
            trajectory: TrajectoryReport::new(),
            registry,
            round: 0,
        }
    }

    /// The spatial member's *currently deployed* compiled rule pack — a
    /// snapshot of the hot-swap slot the member publishes re-mined rules
    /// through. Its [`RulePack::hash`] is the defense version the
    /// trajectory tables print; its rules rebuild the interpreted
    /// reference matcher in equivalence tests.
    pub fn spatial_pack(&self) -> std::sync::Arc<RulePack> {
        self.spatial_pack.load()
    }

    /// The spatial member's per-re-mine rule churn so far, in firing
    /// order: for every re-mine that actually deployed, which rules were
    /// added/removed and what each costs on that window's truthful
    /// (non-automation) traffic. Empty for frozen arenas. One entry's
    /// `added`/`removed` lengths match the round's
    /// `rules_added`/`rules_removed` ledger on
    /// [`fp_types::defense::RetrainSpend`].
    pub fn rule_churn(&self) -> Vec<RoundChurn> {
        self.spatial_churn
            .lock()
            .expect("churn ledger poisoned")
            .clone()
    }

    /// Give one bot service an adaptation strategy (services without one
    /// stay static).
    pub fn set_strategy(&mut self, id: ServiceId, strategy: Box<dyn AdaptationStrategy>) {
        self.strategies.insert(id, strategy);
    }

    /// Give the TLS-laggard cohort an adaptation strategy.
    pub fn set_laggard_strategy(&mut self, strategy: Box<dyn AdaptationStrategy>) {
        self.laggard_strategy = Some(strategy);
    }

    /// Give the AI-agent cohort an adaptation strategy (normally a
    /// [`BehaviouralMutation`]; [`ArenaConfig::agent_humanise`] installs
    /// one at construction). The agents stay the same truthful fleet —
    /// only their *pacing* is the strategy's to reshape.
    pub fn set_agent_strategy(&mut self, strategy: Box<dyn AdaptationStrategy>) {
        self.agent_strategy = Some(strategy);
    }

    /// The behaviour detector's currently deployed thresholds — the
    /// static defaults until a re-fitting [`BehaviorMember`] publishes a
    /// learned floor. `None` when the arena was built from a
    /// caller-supplied stack ([`Arena::with_stack`]), whose behaviour
    /// member (if any) the caller holds.
    pub fn behavior_thresholds(&self) -> Option<BehaviorThresholds> {
        self.behavior_slot.as_ref().map(|slot| *slot.load())
    }

    /// Replace the stack's decision policy (e.g. with an
    /// [`fp_types::defense::EscalatingTtl`] or a per-detector policy).
    /// Detector members and their training state are untouched.
    pub fn set_policy(&mut self, policy: Box<dyn DecisionPolicy>) {
        self.stack.set_policy(policy);
    }

    /// The shipped adaptive preset: every service rotates IPs (with the
    /// timezone patched to match) and mutates fingerprints once mitigation
    /// bites; the laggard fleet gradually pays for real browser stacks.
    pub fn adaptive_defaults(&mut self) {
        use crate::strategy::{Composite, FingerprintMutation, IpRotation, TlsUpgrade};
        for id in ServiceId::all() {
            self.set_strategy(
                id,
                Box::new(Composite::new(vec![
                    Box::new(IpRotation::new(0.15, true)),
                    Box::new(FingerprintMutation::new(0.15, 0.85)),
                ])),
            );
        }
        self.set_laggard_strategy(Box::new(TlsUpgrade::new(0.15, 0.5)));
    }

    /// The arena's configuration.
    pub fn config(&self) -> &ArenaConfig {
        &self.config
    }

    /// The base (round-0) campaign.
    pub fn base_campaign(&self) -> &Campaign {
        &self.base
    }

    /// The engine as mined on round 0's paper traffic. With re-mining
    /// enabled this is the *initial* state only — the live rules are the
    /// stack's spatial member's.
    pub fn engine(&self) -> &FpInconsistent {
        &self.engine
    }

    /// The defender's stack: member chain and decision policy.
    pub fn stack(&self) -> &DefenseStack {
        &self.stack
    }

    /// The mitigation blocklist as of now (entries from all completed
    /// rounds, expired ones included until swept).
    pub fn blocklist(&self) -> &TtlBlocklist {
        &self.blocklist
    }

    /// Rounds completed so far.
    pub fn rounds_played(&self) -> u32 {
        self.round
    }

    /// The accumulated round-over-round measurement.
    pub fn trajectory(&self) -> &TrajectoryReport {
        &self.trajectory
    }

    /// The arena's metrics registry — campaign-cumulative latency and
    /// timing instruments from every layer (site chain, blocklist, store,
    /// stack members). Per-round deltas of the same registry land on each
    /// round's [`RoundStats::obs`]. Render it with
    /// [`fp_obs::expose::render_text`] or [`fp_obs::expose::ledger`].
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Consume the arena, keeping the trajectory.
    pub fn into_trajectory(self) -> TrajectoryReport {
        self.trajectory
    }

    /// The run's `RUNFP_V1` component breakdown — the audit surface
    /// behind [`Arena::run_fingerprint`]. Components, in fingerprint
    /// order:
    ///
    /// * `config.scale`, `config.policy`, `config.retention`,
    ///   `config.remine`, `config.humanise`, `config.refit` — one
    ///   component per [`ArenaConfig`] knob, so a
    ///   frozen-vs-re-mining pair diverges in `config.remine` alone while
    ///   every other config component attests the pairing. These hash the
    ///   *configured* run parameters; a policy hot-swapped at runtime via
    ///   [`Arena::set_policy`] shows up in `behavior` (where its observable
    ///   effect lands), not here.
    /// * `seed` — the master seed every round's generation and adaptation
    ///   derives from.
    /// * `behavior` — the trajectory fold
    ///   ([`TrajectoryReport::behavior_component`]): per-detector flag
    ///   counts, denials, mitigation actions, mutation spend, defender
    ///   spend with pack hashes and eviction ledgers, per round in order.
    ///
    /// [`ArenaConfig::shards`] and [`ArenaConfig::serve`] are
    /// deliberately **not** components: the shard count and the
    /// batch-vs-serving execution mode are parameters the pipeline
    /// proves behaviour-invariant, so the same campaign at 1, 2 or 8
    /// shards — batch or served — must attest identically; that
    /// invariance is what the fingerprint is *for*. The metrics registry ([`Arena::metrics`]) and each
    /// round's [`RoundStats::obs`] snapshot are excluded for the same
    /// reason: latency histograms and wall-clock timings are host noise,
    /// so folding them would make the same campaign fingerprint
    /// differently on different machines.
    pub fn run_components(&self) -> RunComponents {
        let c = &self.config;
        let retention = match c.retention {
            RetentionPolicy::KeepAll => "retention=keep".to_string(),
            RetentionPolicy::SlidingWindow { epochs } => format!("retention=sliding:{epochs}"),
            RetentionPolicy::SampledDecay { keep_rate, floor } => {
                format!("retention=decay:{keep_rate}:{floor}")
            }
        };
        let remine = match c.remine_cadence {
            None => "remine=off".to_string(),
            Some(cadence) => format!("remine={cadence}"),
        };
        let humanise = match c.agent_humanise {
            None => "humanise=off".to_string(),
            Some(rate) => format!("humanise={rate}"),
        };
        let refit = match c.behavior_refit {
            None => "refit=off".to_string(),
            Some(cadence) => format!("refit={cadence}"),
        };
        let mut out = RunComponents::new();
        out.push(
            "config.scale",
            component_of("config.scale", &[&format!("scale={}", c.scale.fraction())]),
        );
        out.push(
            "config.policy",
            component_of(
                "config.policy",
                &[&format!(
                    "policy={}:votes={}:action={}",
                    c.policy.name, c.policy.min_votes, c.policy.action
                )],
            ),
        );
        out.push(
            "config.retention",
            component_of("config.retention", &[&retention]),
        );
        out.push("config.remine", component_of("config.remine", &[&remine]));
        out.push(
            "config.humanise",
            component_of("config.humanise", &[&humanise]),
        );
        out.push("config.refit", component_of("config.refit", &[&refit]));
        out.push("seed", component_of("seed", &[&format!("seed={}", c.seed)]));
        out.push("behavior", self.trajectory.behavior_component());
        out
    }

    /// The deterministic fingerprint of everything this arena was
    /// configured with and everything that observably happened in the
    /// rounds played so far. Equal fingerprints mean "the same campaign";
    /// on divergence, compare [`Arena::run_components`] breakdowns to
    /// name the facet that moved.
    pub fn run_fingerprint(&self) -> RunFingerprint {
        self.run_components().fingerprint()
    }

    /// Play one round; returns its full result.
    pub fn step(&mut self) -> RoundResult {
        let round = self.round;
        // The round's observability window: wall clock plus the registry
        // delta between here and the stats literal below. Deltas (not
        // totals) land on the round so `RoundStats::obs` is per-round even
        // though the registry accumulates across the campaign.
        let wall_start = Instant::now();
        let obs_before = self.registry.snapshot();
        let (stream, mutation) = self.round_stream(round);

        // Admission + detection under the stack's current chain. Both
        // paths evaluate the same TTL-blocklist check per request: the
        // batch path ahead of the sharded scoped-thread pipeline, the
        // serving path as the service's admission gate on the submit hot
        // path (denied requests never cost queue space).
        let mut outcomes: HashMap<TrafficSource, RoundOutcome> = HashMap::new();
        let mut denied = [0u64; Cohort::ALL.len()];
        let site = self.site();
        let store = if let Some(serve_cfg) = self.config.serve {
            let blocklist = &self.blocklist;
            let mut service = site.serve(serve_cfg);
            for request in stream {
                let source = request.source;
                let time = request.time;
                let outcome = outcomes.entry(source).or_insert(RoundOutcome {
                    round,
                    ..RoundOutcome::default()
                });
                outcome.sent += 1;
                let submitted = service
                    .submit_with_gate(request, |_, ip_hash| !blocklist.contains(ip_hash, time));
                if submitted == fp_honeysite::SubmitOutcome::Denied {
                    outcome.denied += 1;
                    denied[source.cohort().index()] += 1;
                }
            }
            service.finish().into_store()
        } else {
            let mut admitted = Vec::with_capacity(stream.len());
            for request in stream {
                let outcome = outcomes.entry(request.source).or_insert(RoundOutcome {
                    round,
                    ..RoundOutcome::default()
                });
                outcome.sent += 1;
                if self
                    .blocklist
                    .contains(NetDb::hash_ip(request.ip), request.time)
                {
                    outcome.denied += 1;
                    denied[request.source.cohort().index()] += 1;
                } else {
                    admitted.push(request);
                }
            }
            let mut site = site;
            site.ingest_stream(admitted, self.config.shards);
            site.into_store()
        };

        // Mitigation: the stack's policy maps verdicts (+ offense history)
        // to actions; blocks land on the list that gates the *next*
        // rounds' admissions. A new ban *episode* is opened only when no
        // ban is currently binding for the address; blocked requests that
        // arrive during an episode renew its lease (coverage extends from
        // the latest activity) without re-listing. Ban length therefore
        // scales with offense episodes and activity span — never with raw
        // request volume (TTLs do not stack per request) — and an
        // escalating policy's TTL cap bounds each episode.
        let mut actions = ActionLedger::default();
        for record in store.iter() {
            let outcome = outcomes.entry(record.source).or_insert(RoundOutcome {
                round,
                ..RoundOutcome::default()
            });
            // "Prior offenses" means episodes *before* the one the address
            // may currently be serving: a binding episode's own listing is
            // excluded, so every decision within one episode sits on the
            // same escalation rung (lease renewals do not climb the
            // ladder).
            let offenses = self.blocklist.offenses(record.ip_hash);
            let prior_offenses = if self.blocklist.contains(record.ip_hash, record.time) {
                offenses.saturating_sub(1)
            } else {
                offenses
            };
            let action = self.stack.decide(&DecisionContext {
                verdicts: &record.verdicts,
                ip_hash: record.ip_hash,
                now: record.time,
                prior_offenses,
            });
            actions.record(action);
            match action {
                MitigationAction::Allow | MitigationAction::ShadowFlag => outcome.allowed += 1,
                MitigationAction::Captcha => {
                    outcome.captchas += 1;
                    // Policies on the CAPTCHA-then-block ladder need the
                    // served challenge remembered: record it as a
                    // never-binding strike whose history outlives the
                    // round-end purge for the policy's memory TTL, so
                    // the offense count moves — across rounds — without
                    // denying anything. Plain policies leave the
                    // blocklist untouched.
                    if let Some(memory_ttl) = self.stack.policy().captcha_strike_ttl() {
                        self.blocklist
                            .strike(record.ip_hash, record.time, memory_ttl);
                    }
                }
                MitigationAction::Block(ttl_secs) => {
                    outcome.blocked += 1;
                    if !self
                        .blocklist
                        .refresh(record.ip_hash, record.time, ttl_secs)
                    {
                        self.blocklist.block(record.ip_hash, record.time, ttl_secs);
                    }
                }
            }
        }
        let round_end = SimTime(u64::from(round + 1) * ROUND_SECS);
        self.blocklist.purge_expired(round_end);

        // Defender lifecycle: the stack seals the round's labeled records
        // into its training store as one epoch (retention applied), and
        // every member digests the retained window; retraining members
        // refresh their model here and the *next* round's chain deploys
        // it. Eviction rides back in the spend.
        let defense = self.stack.end_of_round(round, store.records(), round_end);

        let stats = RoundStats {
            round,
            cohorts: evaluate::cohort_report(&store),
            denied,
            actions,
            mutation,
            defense,
            obs: RoundObs {
                wall_ns: wall_start.elapsed().as_nanos() as u64,
                snapshot: self.registry.snapshot().delta(&obs_before),
            },
        };
        self.trajectory.push(stats.clone());

        // Adaptation: every strategy sees its own source's outcome only.
        for (id, strategy) in &mut self.strategies {
            let source = TrafficSource::Bot(*id);
            let outcome = outcomes.get(&source).copied().unwrap_or(RoundOutcome {
                round,
                ..RoundOutcome::default()
            });
            strategy.observe(&outcome);
        }
        if let Some(strategy) = &mut self.laggard_strategy {
            let outcome =
                outcomes
                    .get(&TrafficSource::TlsLaggard)
                    .copied()
                    .unwrap_or(RoundOutcome {
                        round,
                        ..RoundOutcome::default()
                    });
            strategy.observe(&outcome);
        }
        if let Some(strategy) = &mut self.agent_strategy {
            let outcome = outcomes
                .get(&TrafficSource::AiAgent)
                .copied()
                .unwrap_or(RoundOutcome {
                    round,
                    ..RoundOutcome::default()
                });
            strategy.observe(&outcome);
        }

        self.round += 1;
        RoundResult {
            round,
            store,
            outcomes,
            stats,
        }
    }

    /// Play `rounds` rounds and return the accumulated trajectory.
    pub fn run(&mut self, rounds: u32) -> &TrajectoryReport {
        for _ in 0..rounds {
            self.step();
        }
        &self.trajectory
    }

    /// A fresh honey site for one round: every token registered and the
    /// stack's current detector chain — detector state starts empty each
    /// round (a measurement window reset), while training state lives on
    /// in the stack members.
    fn site(&self) -> HoneySite {
        let mut site = HoneySite::from_stack(&self.stack);
        site.set_metrics(self.registry.clone());
        Self::register_tokens(&mut site, &self.base);
        site
    }

    fn register_tokens(site: &mut HoneySite, campaign: &Campaign) {
        for id in ServiceId::all() {
            site.register_token(campaign.token_of(id));
        }
        site.register_token(campaign.real_user_token());
        site.register_token(campaign.ai_agent_token());
        site.register_token(campaign.tls_laggard_token());
    }

    /// Build round `r`'s request stream (bots, then real users, AI agents
    /// and TLS laggards — the cohort-campaign order) plus the adaptation
    /// spend that went into it.
    fn round_stream(&mut self, r: u32) -> (Vec<Request>, MutationStats) {
        if r == 0 {
            // Round 0 is the single-shot cohort campaign, untouched: no
            // blocklist entries exist yet and no strategy has observed
            // anything, so the arena's first round *is* the pre-arena
            // pipeline.
            let mut stream = self.base.bot_requests.clone();
            stream.extend(self.base.real_users.iter().map(|u| u.request.clone()));
            stream.extend(self.base.ai_agents.iter().cloned());
            stream.extend(self.base.tls_laggards.iter().cloned());
            return (stream, MutationStats::default());
        }

        // Only the adversarial fleet is regenerated — the truthful
        // populations are reused from the base campaign below, so there is
        // no point paying to generate fresh ones.
        let fresh = Campaign::generate_adversarial(CampaignConfig {
            scale: self.config.scale,
            seed: mix2(self.config.seed, u64::from(r)),
        });
        let arena_rng = Splittable::new(self.config.seed)
            .child_str("arena")
            .child(u64::from(r));
        let mut service_rngs: HashMap<ServiceId, Splittable> = ServiceId::all()
            .map(|id| (id, arena_rng.child(u64::from(id.0))))
            .collect();
        let mut mutation = MutationStats::default();
        let mut stream = Vec::with_capacity(
            fresh.bot_requests.len()
                + self.base.real_users.len()
                + self.base.ai_agents.len()
                + fresh.tls_laggards.len(),
        );

        // Bot services: regenerated fleet, rewritten by each service's
        // strategy. Tokens are seed-derived, so the regenerated requests
        // are re-tokenised to the base campaign's registrations.
        for mut request in fresh.bot_requests {
            let TrafficSource::Bot(id) = request.source else {
                continue;
            };
            request.site_token = self.base.token_of(id);
            let rng = service_rngs.get_mut(&id).expect("every service has an rng");
            if let Some(strategy) = self.strategies.get_mut(&id) {
                if !rng.chance(strategy.volume_factor()) {
                    continue; // retreat: this request is never sent
                }
                let receipt = strategy.apply(&mut request, rng);
                absorb_receipt(&mut mutation, receipt);
            }
            request.time = shift_round(request.time, r);
            stream.push(request);
        }

        // Truthful population: the same users and agents come back every
        // round (their devices and habits don't change because a bot got
        // blocked), just later in simulated time.
        stream.extend(self.base.real_users.iter().map(|u| {
            let mut request = u.request.clone();
            request.time = shift_round(request.time, r);
            request
        }));

        // AI agents: the same task fleet, but its operator may adapt the
        // *pacing* under pressure (the FP-Agent counter-move). Everything
        // else about the agents — devices, truthful TLS, tasks — is
        // replayed verbatim.
        let mut agent_rng = arena_rng.child_str("agents");
        let agent_strategy = &mut self.agent_strategy;
        stream.extend(self.base.ai_agents.iter().filter_map(|a| {
            let mut request = a.clone();
            if let Some(strategy) = agent_strategy {
                if !agent_rng.chance(strategy.volume_factor()) {
                    return None;
                }
                let receipt = strategy.apply(&mut request, &mut agent_rng);
                absorb_receipt(&mut mutation, receipt);
            }
            request.time = shift_round(request.time, r);
            Some(request)
        }));

        // The TLS-laggard cohort: regenerated fleet under its strategy.
        let mut laggard_rng = arena_rng.child_str("laggards");
        for mut request in fresh.tls_laggards {
            request.site_token = self.base.tls_laggard_token();
            if let Some(strategy) = &mut self.laggard_strategy {
                if !laggard_rng.chance(strategy.volume_factor()) {
                    continue;
                }
                let receipt = strategy.apply(&mut request, &mut laggard_rng);
                absorb_receipt(&mut mutation, receipt);
            }
            request.time = shift_round(request.time, r);
            stream.push(request);
        }

        (stream, mutation)
    }
}

/// Shift a round-local arrival time into round `r`'s window.
fn shift_round(time: SimTime, r: u32) -> SimTime {
    SimTime(time.0 + u64::from(r) * ROUND_SECS)
}

fn absorb_receipt(stats: &mut MutationStats, receipt: crate::strategy::MutationReceipt) {
    stats.absorb(MutationStats {
        adapted_requests: u64::from(receipt.touched()),
        mutated_attrs: u64::from(receipt.mutated_attrs),
        rotated_ips: u64::from(receipt.rotated_ip),
        tls_upgrades: u64::from(receipt.upgraded_tls),
        cadence_humanised: u64::from(receipt.humanised_cadence),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FingerprintMutation, IpRotation, Static};
    use fp_types::detect::provenance;

    fn tiny_config(policy: ResponsePolicy) -> ArenaConfig {
        ArenaConfig {
            scale: Scale::ratio(0.005),
            seed: 77,
            shards: 1,
            policy,
            ..ArenaConfig::default()
        }
    }

    #[test]
    fn rounds_advance_time_and_trajectory() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::shadow()));
        let r0 = arena.step();
        let r1 = arena.step();
        assert_eq!(r0.round, 0);
        assert_eq!(r1.round, 1);
        assert_eq!(arena.rounds_played(), 2);
        assert_eq!(arena.trajectory().rounds.len(), 2);
        let max_t0 = r0.store.iter().map(|r| r.time).max().unwrap();
        let min_t1 = r1.store.iter().map(|r| r.time).min().unwrap();
        assert!(min_t1 >= SimTime(ROUND_SECS), "round 1 is later in time");
        assert!(max_t0 < SimTime(ROUND_SECS));
    }

    #[test]
    fn shadow_policy_never_denies_or_blocks() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::shadow()));
        arena.adaptive_defaults();
        for _ in 0..2 {
            let result = arena.step();
            for outcome in result.outcomes.values() {
                assert_eq!(outcome.denied, 0);
                assert_eq!(outcome.blocked, 0);
                assert_eq!(outcome.captchas, 0);
                assert_eq!(outcome.visible_failure_rate(), 0.0);
            }
        }
        assert!(arena.blocklist().is_empty());
    }

    #[test]
    fn block_policy_feeds_the_blocklist_and_denies_next_round() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ROUND_SECS * 2)));
        let r0 = arena.step();
        let blocked: u64 = r0.outcomes.values().map(|o| o.blocked).sum();
        assert!(blocked > 0, "the chain flags plenty of round-0 bots");
        assert!(!arena.blocklist().is_empty());
        let r1 = arena.step();
        let denied: u64 = r1.outcomes.values().map(|o| o.denied).sum();
        assert!(denied > 0, "round-1 admissions hit round-0 blocks");
        assert_eq!(
            r0.outcomes.values().map(|o| o.denied).sum::<u64>(),
            0,
            "round 0 starts with an empty list"
        );
    }

    #[test]
    fn blocklist_entries_expire_across_rounds() {
        // A TTL much shorter than a round leaves (at most) the tail-end
        // blocks alive at the round boundary, so round-1 denials collapse
        // compared to a TTL that spans the whole next round.
        let denied_r1 = |ttl: u64| {
            let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ttl)));
            arena.step();
            let r1 = arena.step();
            r1.outcomes.values().map(|o| o.denied).sum::<u64>()
        };
        let short = denied_r1(1_000);
        let long = denied_r1(ROUND_SECS * 2);
        assert!(long > 0, "long-TTL blocks must deny round-1 traffic");
        assert!(
            short * 20 < long,
            "short-TTL entries mostly expired: {short} denied vs {long}"
        );
    }

    #[test]
    fn static_services_replay_identically_at_any_shard_count() {
        let run = |shards: usize| {
            let mut config = tiny_config(ResponsePolicy::block(ROUND_SECS));
            config.shards = shards;
            let mut arena = Arena::new(config);
            arena.set_strategy(ServiceId(1), Box::new(Static));
            arena.set_strategy(ServiceId(2), Box::new(IpRotation::new(0.1, true)));
            let r0 = arena.step();
            let r1 = arena.step();
            (r0.store, r1.store)
        };
        let (a0, a1) = run(1);
        let (b0, b1) = run(3);
        for (a, b) in [(a0, b0), (a1, b1)] {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.verdicts, y.verdicts);
                assert_eq!(x.ip_hash, y.ip_hash);
                assert_eq!(x.cookie, y.cookie);
            }
        }
    }

    #[test]
    fn serving_rounds_replay_batch_rounds_identically() {
        // The serving layer is an execution mode, not a behaviour: two
        // rounds driven through bounded-queue shard workers (with the
        // blocklist gate on the submit hot path) must produce the same
        // stores, outcomes and run fingerprint as the batch pipeline.
        let run = |serve: Option<fp_types::ServeConfig>| {
            let mut config = tiny_config(ResponsePolicy::block(ROUND_SECS));
            config.serve = serve;
            let mut arena = Arena::new(config);
            let r0 = arena.step();
            let r1 = arena.step();
            (r0, r1, arena.run_fingerprint())
        };
        let (b0, b1, batch_fp) = run(None);
        let (s0, s1, serve_fp) = run(Some(fp_types::ServeConfig::with_shards(2)));
        for (b, s) in [(&b0, &s0), (&b1, &s1)] {
            assert_eq!(b.store.len(), s.store.len());
            for (x, y) in b.store.iter().zip(s.store.iter()) {
                assert_eq!(x.verdicts, y.verdicts);
                assert_eq!(x.cookie, y.cookie);
                assert_eq!(x.ip_hash, y.ip_hash);
            }
            assert_eq!(b.outcomes, s.outcomes, "denials and blocks match");
        }
        assert_eq!(batch_fp, serve_fp, "execution mode never moves the RUNFP");
    }

    #[test]
    fn strategies_only_see_their_own_outcome() {
        // A mutating service adapts; a static one stays put. The static
        // service's round-1 traffic must equal a no-strategy run's.
        let run = |mutate_s1: bool| {
            let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ROUND_SECS)));
            if mutate_s1 {
                arena.set_strategy(ServiceId(1), Box::new(FingerprintMutation::new(0.05, 1.0)));
            }
            arena.step();
            let r1 = arena.step();
            let digests: Vec<u64> = r1
                .store
                .iter()
                .filter(|r| r.source == TrafficSource::Bot(ServiceId(3)))
                .map(|r| r.fingerprint.digest())
                .collect();
            digests
        };
        assert_eq!(run(false), run(true), "S3's traffic is unaffected by S1");
    }

    #[test]
    fn mutation_spend_is_accounted() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ROUND_SECS)));
        arena.set_strategy(ServiceId(1), Box::new(FingerprintMutation::new(0.05, 1.0)));
        arena.step();
        let r1 = arena.step();
        assert!(r1.stats.mutation.adapted_requests > 0);
        // Resolution (2) + cores (1) + cookie (1) change on every adapted
        // request; timezone attrs only count when they were wrong.
        assert!(r1.stats.mutation.mutated_attrs >= 4 * r1.stats.mutation.adapted_requests);
        assert_eq!(r1.stats.mutation.tls_upgrades, 0);
    }

    #[test]
    fn every_round_keeps_full_verdict_provenance() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::captcha()));
        arena.step();
        let r1 = arena.step();
        for record in r1.store.iter().take(50) {
            for name in [
                provenance::DATADOME,
                provenance::BOTD,
                provenance::FP_TLS_CROSSLAYER,
                provenance::FP_BEHAVIOR,
                provenance::FP_SPATIAL,
                provenance::FP_TEMPORAL_COOKIE,
                provenance::FP_TEMPORAL_IP,
            ] {
                assert!(
                    record.verdicts.verdict(name).is_some(),
                    "round-1 record {} missing {name}",
                    record.id
                );
            }
        }
    }

    #[test]
    fn frozen_defender_reports_no_retraining_spend() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ROUND_SECS)));
        arena.step();
        let r1 = arena.step();
        assert_eq!(r1.stats.defense.retrained_members, 0);
        assert_eq!(r1.stats.defense.records_scanned, 0);
        assert!(
            r1.stats.defense.rules_active > 0,
            "the frozen rule set is still live and reported"
        );
    }

    #[test]
    fn remining_defender_spends_at_its_cadence() {
        let mut config = tiny_config(ResponsePolicy::block(ROUND_SECS));
        config.remine_cadence = Some(2);
        let mut arena = Arena::new(config);
        let r0 = arena.step();
        assert_eq!(
            r0.stats.defense.retrained_members, 0,
            "cadence 2 skips the first round boundary"
        );
        assert!(r0.stats.defense.rules_active > 0);
        let r1 = arena.step();
        assert_eq!(r1.stats.defense.retrained_members, 1);
        assert_eq!(
            r1.stats.defense.records_scanned as usize,
            r0.store.len() + r1.store.len(),
            "the window holds exactly both rounds' records — no pre-seeded \
             copy of the mining traffic (that would double-count round 0)"
        );
        let spend = arena.trajectory().defense_spend_trajectory();
        assert_eq!(spend.len(), 2);
        assert_eq!(
            arena.trajectory().total_defense_scans(),
            spend[1].records_scanned
        );
    }

    #[test]
    fn rounds_carry_metric_deltas_that_sum_to_the_registry_totals() {
        let mut config = tiny_config(ResponsePolicy::block(ROUND_SECS));
        config.remine_cadence = Some(1);
        let mut arena = Arena::new(config);
        let fp_before = arena.run_fingerprint();
        let r0 = arena.step();
        let r1 = arena.step();

        // Every layer reported into the one registry.
        let totals = arena.metrics().snapshot();
        let admitted_total = totals
            .counter(fp_honeysite::site::REQUESTS_ADMITTED)
            .expect("site counters registered");
        assert_eq!(
            admitted_total as usize,
            r0.store.len() + r1.store.len(),
            "admitted counter tracks the recorded stores"
        );
        let latency = totals
            .histogram(fp_honeysite::site::ADMISSION_TO_VERDICT_NS)
            .expect("latency histogram registered");
        assert_eq!(latency.count(), admitted_total);
        assert!(
            totals
                .counter(fp_netsim::blocklist::BLOCKLIST_CHECKS)
                .unwrap()
                > 0,
            "admission checks counted"
        );
        assert_eq!(
            totals
                .counter(fp_netsim::blocklist::BLOCKLIST_PURGE_SWEEPS)
                .unwrap(),
            2,
            "one purge sweep per round"
        );
        assert_eq!(
            totals
                .histogram(fp_inconsistent_core::defense::REMINE_SCAN_NS)
                .unwrap()
                .count(),
            2,
            "cadence-1 re-mine timed every round"
        );

        // Round deltas partition the totals.
        let per_round: u64 = [&r0, &r1]
            .iter()
            .map(|r| {
                r.stats
                    .obs
                    .snapshot
                    .counter(fp_honeysite::site::REQUESTS_ADMITTED)
                    .unwrap()
            })
            .sum();
        assert_eq!(per_round, admitted_total);
        assert!(r0.stats.obs.wall_ns > 0, "rounds take wall time");

        // …and none of it moved the fingerprint: stepping changed the
        // behaviour component (rounds were played), but an identical
        // replay fingerprints identically, timings and all.
        assert_ne!(arena.run_fingerprint(), fp_before);
        let mut replay = Arena::new(config);
        replay.step();
        replay.step();
        assert_eq!(arena.run_fingerprint(), replay.run_fingerprint());
    }

    #[test]
    fn bans_are_episodes_not_per_request_listings() {
        // A long flat TTL: every blocked address opens exactly one ban
        // episode this round, no matter how many of its requests were
        // blocked — ban length must scale with offense episodes, not raw
        // request volume.
        let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ROUND_SECS * 2)));
        let r0 = arena.step();
        let blocked: u64 = r0.outcomes.values().map(|o| o.blocked).sum();
        let mut blocked_hashes: Vec<u64> = r0
            .store
            .iter()
            .filter(|r| arena.blocklist().offenses(r.ip_hash) > 0)
            .map(|r| r.ip_hash)
            .collect();
        blocked_hashes.sort_unstable();
        blocked_hashes.dedup();
        assert!(blocked > blocked_hashes.len() as u64, "addresses repeat");
        for hash in &blocked_hashes {
            assert_eq!(
                arena.blocklist().offenses(*hash),
                1,
                "one binding ban = one episode, however many requests it denied"
            );
        }
    }

    #[test]
    fn escalating_policy_compounds_within_round_recidivism() {
        // A base TTL much shorter than a round (≈2.3 days of the 91-day
        // window): addresses that come back after their ban lapses open
        // new episodes, the offense count climbs, and the escalated TTLs
        // eventually outlive the round — unlike the flat policy, whose
        // expired entries are all swept at the round boundary.
        let base = 5_000;
        let mut flat = Arena::new(tiny_config(ResponsePolicy::block(base)));
        flat.step();
        // Only episodes opened inside the round's final `base` seconds can
        // survive the boundary under the flat policy.
        let flat_survivors = flat.blocklist().len();

        let mut escalated = Arena::new(tiny_config(ResponsePolicy::block(base)));
        escalated.set_policy(Box::new(
            ResponsePolicy::block(base).escalating(64, ROUND_SECS * 4),
        ));
        let r0 = escalated.step();
        let max_offenses = r0
            .store
            .iter()
            .map(|r| escalated.blocklist().offenses(r.ip_hash))
            .max()
            .unwrap();
        assert!(
            max_offenses >= 2,
            "recidivist addresses must accumulate episodes: max {max_offenses}"
        );
        // 64²·5k ≈ 20.5M simulated seconds > the 7.86M-second round, so
        // every third-episode ban outlives the round wherever it was
        // opened — escalation must keep strictly more entries alive than
        // the flat policy's tail-end survivors.
        assert!(
            escalated.blocklist().len() > flat_survivors,
            "escalated repeat-offender bans must outlive the round boundary: \
             flat {flat_survivors}, escalated {}",
            escalated.blocklist().len()
        );
    }
}
