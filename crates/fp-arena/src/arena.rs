//! The closed loop: rounds of traffic → verdicts → mitigation → adaptation.
//!
//! One [`Arena`] owns everything both sides of the §6 feedback loop need:
//! the defender's detector chain (the default honey-site chain plus
//! FP-Inconsistent's adapters, mined once on round 0's paper traffic — the
//! deployment setting: mine offline, deploy online), a [`ResponsePolicy`],
//! the TTL blocklist the policy writes, and one
//! [`AdaptationStrategy`] per bot service.
//!
//! A round is:
//!
//! 1. **Generate** — every source emits its traffic. Round 0 is exactly
//!    the single-shot cohort campaign (provably flag-for-flag identical to
//!    the pre-arena pipeline); later rounds re-generate the bot services
//!    and the TLS-laggard cohort and let their strategies rewrite the
//!    requests, while real users and AI agents are the same truthful
//!    population every round, shifted in time.
//! 2. **Admit** — the TTL blocklist (written by earlier rounds, expiring
//!    on simulated time) turns away listed addresses before anything else
//!    sees them — `fp-netsim`'s enforcement point.
//! 3. **Detect** — the admitted stream runs through the sharded ingest
//!    pipeline; every record carries the full named `VerdictSet`.
//! 4. **Mitigate** — the policy maps each record's verdicts to a
//!    [`MitigationAction`]; blocks feed the blocklist for *subsequent*
//!    rounds (mitigation ships in batches, like real vendors' list
//!    updates).
//! 5. **Adapt** — each bot service observes its own visible outcome (and
//!    nothing else) and updates its strategy for the next round.
//!
//! Everything is seeded and the per-round ingest is the shard-invariant
//! pipeline, so a whole campaign replays identically at any shard count.

use crate::policy::ResponsePolicy;
use crate::strategy::AdaptationStrategy;
use fp_botnet::{Campaign, CampaignConfig};
use fp_honeysite::{HoneySite, RequestStore};
use fp_inconsistent_core::evaluate::{self, MutationStats, RoundStats, TrajectoryReport};
use fp_inconsistent_core::{FpInconsistent, MineConfig};
use fp_netsim::{NetDb, TtlBlocklist};
use fp_types::{
    mix2, Cohort, MitigationAction, Request, RoundOutcome, Scale, ServiceId, SimTime, Splittable,
    TrafficSource, STUDY_DAYS,
};
use std::collections::HashMap;

/// Simulated seconds per arena round (one full campaign window).
pub const ROUND_SECS: u64 = STUDY_DAYS as u64 * 86_400;

/// Arena parameters.
#[derive(Clone, Copy, Debug)]
pub struct ArenaConfig {
    /// Volume scale relative to the paper's campaign.
    pub scale: Scale,
    /// Master seed; every round's generation and adaptation derives from
    /// it.
    pub seed: u64,
    /// Ingest shards per round (1 = sequential-equivalent).
    pub shards: usize,
    /// The response policy under test.
    pub policy: ResponsePolicy,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig {
            scale: Scale::ratio(0.02),
            seed: 0xF91C0DE,
            shards: 1,
            policy: ResponsePolicy::block(crate::policy::DEFAULT_BLOCK_TTL_SECS),
        }
    }
}

/// Everything one completed round hands back.
pub struct RoundResult {
    /// The round index.
    pub round: u32,
    /// The round's recorded store (admitted traffic with full verdict
    /// provenance).
    pub store: RequestStore,
    /// Per-source visible outcomes — what each adaptation strategy was
    /// shown.
    pub outcomes: HashMap<TrafficSource, RoundOutcome>,
    /// The round's measurement (also accumulated in the arena's
    /// [`TrajectoryReport`]).
    pub stats: RoundStats,
}

impl RoundResult {
    /// A source's outcome (zero-filled if it sent nothing).
    pub fn outcome(&self, source: TrafficSource) -> RoundOutcome {
        self.outcomes.get(&source).copied().unwrap_or(RoundOutcome {
            round: self.round,
            ..RoundOutcome::default()
        })
    }
}

/// The closed-loop mitigation & adaptation arena.
pub struct Arena {
    config: ArenaConfig,
    base: Campaign,
    engine: FpInconsistent,
    blocklist: TtlBlocklist,
    strategies: HashMap<ServiceId, Box<dyn AdaptationStrategy>>,
    laggard_strategy: Option<Box<dyn AdaptationStrategy>>,
    trajectory: TrajectoryReport,
    round: u32,
}

impl Arena {
    /// Set up the arena: generate the base campaign and mine the engine on
    /// its paper-faithful traffic (bots + real users), exactly like the
    /// single-shot pipeline does.
    pub fn new(config: ArenaConfig) -> Arena {
        let base = Campaign::generate(CampaignConfig {
            scale: config.scale,
            seed: config.seed,
        });
        let mut mine_site = Self::site_without_engine(&base);
        mine_site.ingest_all(base.bot_requests.iter().cloned());
        mine_site.ingest_all(base.real_users.iter().map(|r| r.request.clone()));
        let engine = FpInconsistent::mine(&mine_site.into_store(), &MineConfig::default());
        Arena {
            config,
            base,
            engine,
            blocklist: TtlBlocklist::new(),
            strategies: HashMap::new(),
            laggard_strategy: None,
            trajectory: TrajectoryReport::new(),
            round: 0,
        }
    }

    /// Give one bot service an adaptation strategy (services without one
    /// stay static).
    pub fn set_strategy(&mut self, id: ServiceId, strategy: Box<dyn AdaptationStrategy>) {
        self.strategies.insert(id, strategy);
    }

    /// Give the TLS-laggard cohort an adaptation strategy.
    pub fn set_laggard_strategy(&mut self, strategy: Box<dyn AdaptationStrategy>) {
        self.laggard_strategy = Some(strategy);
    }

    /// The shipped adaptive preset: every service rotates IPs (with the
    /// timezone patched to match) and mutates fingerprints once mitigation
    /// bites; the laggard fleet gradually pays for real browser stacks.
    pub fn adaptive_defaults(&mut self) {
        use crate::strategy::{Composite, FingerprintMutation, IpRotation, TlsUpgrade};
        for id in ServiceId::all() {
            self.set_strategy(
                id,
                Box::new(Composite::new(vec![
                    Box::new(IpRotation::new(0.15, true)),
                    Box::new(FingerprintMutation::new(0.15, 0.85)),
                ])),
            );
        }
        self.set_laggard_strategy(Box::new(TlsUpgrade::new(0.15, 0.5)));
    }

    /// The arena's configuration.
    pub fn config(&self) -> &ArenaConfig {
        &self.config
    }

    /// The base (round-0) campaign.
    pub fn base_campaign(&self) -> &Campaign {
        &self.base
    }

    /// The mined engine deployed in every round's chain.
    pub fn engine(&self) -> &FpInconsistent {
        &self.engine
    }

    /// The mitigation blocklist as of now (entries from all completed
    /// rounds, expired ones included until swept).
    pub fn blocklist(&self) -> &TtlBlocklist {
        &self.blocklist
    }

    /// Rounds completed so far.
    pub fn rounds_played(&self) -> u32 {
        self.round
    }

    /// The accumulated round-over-round measurement.
    pub fn trajectory(&self) -> &TrajectoryReport {
        &self.trajectory
    }

    /// Consume the arena, keeping the trajectory.
    pub fn into_trajectory(self) -> TrajectoryReport {
        self.trajectory
    }

    /// Play one round; returns its full result.
    pub fn step(&mut self) -> RoundResult {
        let round = self.round;
        let (stream, mutation) = self.round_stream(round);

        // Admission: the blocklist written by earlier rounds turns listed
        // addresses away before the detector chain sees them.
        let mut outcomes: HashMap<TrafficSource, RoundOutcome> = HashMap::new();
        let mut denied = [0u64; Cohort::ALL.len()];
        let mut admitted = Vec::with_capacity(stream.len());
        for request in stream {
            let outcome = outcomes.entry(request.source).or_insert(RoundOutcome {
                round,
                ..RoundOutcome::default()
            });
            outcome.sent += 1;
            if self
                .blocklist
                .contains(NetDb::hash_ip(request.ip), request.time)
            {
                outcome.denied += 1;
                denied[request.source.cohort().index()] += 1;
            } else {
                admitted.push(request);
            }
        }

        // Detection: the sharded pipeline with the full six-detector chain.
        let mut site = self.site();
        site.ingest_stream(admitted, self.config.shards);
        let store = site.into_store();

        // Mitigation: verdicts → actions; blocks land on the list that
        // gates the *next* rounds' admissions.
        for record in store.iter() {
            let outcome = outcomes.entry(record.source).or_insert(RoundOutcome {
                round,
                ..RoundOutcome::default()
            });
            match self.config.policy.decide(&record.verdicts) {
                MitigationAction::Allow | MitigationAction::ShadowFlag => outcome.allowed += 1,
                MitigationAction::Captcha => outcome.captchas += 1,
                MitigationAction::Block(ttl_secs) => {
                    outcome.blocked += 1;
                    self.blocklist.block(record.ip_hash, record.time, ttl_secs);
                }
            }
        }
        self.blocklist
            .purge_expired(SimTime(u64::from(round + 1) * ROUND_SECS));

        let stats = RoundStats {
            round,
            cohorts: evaluate::cohort_report(&store),
            denied,
            mutation,
        };
        self.trajectory.push(stats.clone());

        // Adaptation: every strategy sees its own source's outcome only.
        for (id, strategy) in &mut self.strategies {
            let source = TrafficSource::Bot(*id);
            let outcome = outcomes.get(&source).copied().unwrap_or(RoundOutcome {
                round,
                ..RoundOutcome::default()
            });
            strategy.observe(&outcome);
        }
        if let Some(strategy) = &mut self.laggard_strategy {
            let outcome =
                outcomes
                    .get(&TrafficSource::TlsLaggard)
                    .copied()
                    .unwrap_or(RoundOutcome {
                        round,
                        ..RoundOutcome::default()
                    });
            strategy.observe(&outcome);
        }

        self.round += 1;
        RoundResult {
            round,
            store,
            outcomes,
            stats,
        }
    }

    /// Play `rounds` rounds and return the accumulated trajectory.
    pub fn run(&mut self, rounds: u32) -> &TrajectoryReport {
        for _ in 0..rounds {
            self.step();
        }
        &self.trajectory
    }

    /// A fresh honey site with every token registered and the full chain
    /// (default detectors + the mined engine's adapters) — detector state
    /// starts empty each round, like a measurement window reset.
    fn site(&self) -> HoneySite {
        let mut site = Self::site_without_engine(&self.base);
        for detector in self.engine.detectors() {
            site.push_detector(detector);
        }
        site
    }

    fn site_without_engine(campaign: &Campaign) -> HoneySite {
        let mut site = HoneySite::new();
        for id in ServiceId::all() {
            site.register_token(campaign.token_of(id));
        }
        site.register_token(campaign.real_user_token());
        site.register_token(campaign.ai_agent_token());
        site.register_token(campaign.tls_laggard_token());
        site
    }

    /// Build round `r`'s request stream (bots, then real users, AI agents
    /// and TLS laggards — the cohort-campaign order) plus the adaptation
    /// spend that went into it.
    fn round_stream(&mut self, r: u32) -> (Vec<Request>, MutationStats) {
        if r == 0 {
            // Round 0 is the single-shot cohort campaign, untouched: no
            // blocklist entries exist yet and no strategy has observed
            // anything, so the arena's first round *is* the pre-arena
            // pipeline.
            let mut stream = self.base.bot_requests.clone();
            stream.extend(self.base.real_users.iter().map(|u| u.request.clone()));
            stream.extend(self.base.ai_agents.iter().cloned());
            stream.extend(self.base.tls_laggards.iter().cloned());
            return (stream, MutationStats::default());
        }

        // Only the adversarial fleet is regenerated — the truthful
        // populations are reused from the base campaign below, so there is
        // no point paying to generate fresh ones.
        let fresh = Campaign::generate_adversarial(CampaignConfig {
            scale: self.config.scale,
            seed: mix2(self.config.seed, u64::from(r)),
        });
        let arena_rng = Splittable::new(self.config.seed)
            .child_str("arena")
            .child(u64::from(r));
        let mut service_rngs: HashMap<ServiceId, Splittable> = ServiceId::all()
            .map(|id| (id, arena_rng.child(u64::from(id.0))))
            .collect();
        let mut mutation = MutationStats::default();
        let mut stream = Vec::with_capacity(
            fresh.bot_requests.len()
                + self.base.real_users.len()
                + self.base.ai_agents.len()
                + fresh.tls_laggards.len(),
        );

        // Bot services: regenerated fleet, rewritten by each service's
        // strategy. Tokens are seed-derived, so the regenerated requests
        // are re-tokenised to the base campaign's registrations.
        for mut request in fresh.bot_requests {
            let TrafficSource::Bot(id) = request.source else {
                continue;
            };
            request.site_token = self.base.token_of(id);
            let rng = service_rngs.get_mut(&id).expect("every service has an rng");
            if let Some(strategy) = self.strategies.get_mut(&id) {
                if !rng.chance(strategy.volume_factor()) {
                    continue; // retreat: this request is never sent
                }
                let receipt = strategy.apply(&mut request, rng);
                absorb_receipt(&mut mutation, receipt);
            }
            request.time = shift_round(request.time, r);
            stream.push(request);
        }

        // Truthful population: the same users and agents come back every
        // round (their devices and habits don't change because a bot got
        // blocked), just later in simulated time.
        stream.extend(self.base.real_users.iter().map(|u| {
            let mut request = u.request.clone();
            request.time = shift_round(request.time, r);
            request
        }));
        stream.extend(self.base.ai_agents.iter().map(|a| {
            let mut request = a.clone();
            request.time = shift_round(request.time, r);
            request
        }));

        // The TLS-laggard cohort: regenerated fleet under its strategy.
        let mut laggard_rng = arena_rng.child_str("laggards");
        for mut request in fresh.tls_laggards {
            request.site_token = self.base.tls_laggard_token();
            if let Some(strategy) = &mut self.laggard_strategy {
                if !laggard_rng.chance(strategy.volume_factor()) {
                    continue;
                }
                let receipt = strategy.apply(&mut request, &mut laggard_rng);
                absorb_receipt(&mut mutation, receipt);
            }
            request.time = shift_round(request.time, r);
            stream.push(request);
        }

        (stream, mutation)
    }
}

/// Shift a round-local arrival time into round `r`'s window.
fn shift_round(time: SimTime, r: u32) -> SimTime {
    SimTime(time.0 + u64::from(r) * ROUND_SECS)
}

fn absorb_receipt(stats: &mut MutationStats, receipt: crate::strategy::MutationReceipt) {
    stats.absorb(MutationStats {
        adapted_requests: u64::from(receipt.touched()),
        mutated_attrs: u64::from(receipt.mutated_attrs),
        rotated_ips: u64::from(receipt.rotated_ip),
        tls_upgrades: u64::from(receipt.upgraded_tls),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FingerprintMutation, IpRotation, Static};
    use fp_types::detect::provenance;

    fn tiny_config(policy: ResponsePolicy) -> ArenaConfig {
        ArenaConfig {
            scale: Scale::ratio(0.005),
            seed: 77,
            shards: 1,
            policy,
        }
    }

    #[test]
    fn rounds_advance_time_and_trajectory() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::shadow()));
        let r0 = arena.step();
        let r1 = arena.step();
        assert_eq!(r0.round, 0);
        assert_eq!(r1.round, 1);
        assert_eq!(arena.rounds_played(), 2);
        assert_eq!(arena.trajectory().rounds.len(), 2);
        let max_t0 = r0.store.iter().map(|r| r.time).max().unwrap();
        let min_t1 = r1.store.iter().map(|r| r.time).min().unwrap();
        assert!(min_t1 >= SimTime(ROUND_SECS), "round 1 is later in time");
        assert!(max_t0 < SimTime(ROUND_SECS));
    }

    #[test]
    fn shadow_policy_never_denies_or_blocks() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::shadow()));
        arena.adaptive_defaults();
        for _ in 0..2 {
            let result = arena.step();
            for outcome in result.outcomes.values() {
                assert_eq!(outcome.denied, 0);
                assert_eq!(outcome.blocked, 0);
                assert_eq!(outcome.captchas, 0);
                assert_eq!(outcome.visible_failure_rate(), 0.0);
            }
        }
        assert!(arena.blocklist().is_empty());
    }

    #[test]
    fn block_policy_feeds_the_blocklist_and_denies_next_round() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ROUND_SECS * 2)));
        let r0 = arena.step();
        let blocked: u64 = r0.outcomes.values().map(|o| o.blocked).sum();
        assert!(blocked > 0, "the chain flags plenty of round-0 bots");
        assert!(!arena.blocklist().is_empty());
        let r1 = arena.step();
        let denied: u64 = r1.outcomes.values().map(|o| o.denied).sum();
        assert!(denied > 0, "round-1 admissions hit round-0 blocks");
        assert_eq!(
            r0.outcomes.values().map(|o| o.denied).sum::<u64>(),
            0,
            "round 0 starts with an empty list"
        );
    }

    #[test]
    fn blocklist_entries_expire_across_rounds() {
        // A TTL much shorter than a round leaves (at most) the tail-end
        // blocks alive at the round boundary, so round-1 denials collapse
        // compared to a TTL that spans the whole next round.
        let denied_r1 = |ttl: u64| {
            let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ttl)));
            arena.step();
            let r1 = arena.step();
            r1.outcomes.values().map(|o| o.denied).sum::<u64>()
        };
        let short = denied_r1(1_000);
        let long = denied_r1(ROUND_SECS * 2);
        assert!(long > 0, "long-TTL blocks must deny round-1 traffic");
        assert!(
            short * 20 < long,
            "short-TTL entries mostly expired: {short} denied vs {long}"
        );
    }

    #[test]
    fn static_services_replay_identically_at_any_shard_count() {
        let run = |shards: usize| {
            let mut config = tiny_config(ResponsePolicy::block(ROUND_SECS));
            config.shards = shards;
            let mut arena = Arena::new(config);
            arena.set_strategy(ServiceId(1), Box::new(Static));
            arena.set_strategy(ServiceId(2), Box::new(IpRotation::new(0.1, true)));
            let r0 = arena.step();
            let r1 = arena.step();
            (r0.store, r1.store)
        };
        let (a0, a1) = run(1);
        let (b0, b1) = run(3);
        for (a, b) in [(a0, b0), (a1, b1)] {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.verdicts, y.verdicts);
                assert_eq!(x.ip_hash, y.ip_hash);
                assert_eq!(x.cookie, y.cookie);
            }
        }
    }

    #[test]
    fn strategies_only_see_their_own_outcome() {
        // A mutating service adapts; a static one stays put. The static
        // service's round-1 traffic must equal a no-strategy run's.
        let run = |mutate_s1: bool| {
            let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ROUND_SECS)));
            if mutate_s1 {
                arena.set_strategy(ServiceId(1), Box::new(FingerprintMutation::new(0.05, 1.0)));
            }
            arena.step();
            let r1 = arena.step();
            let digests: Vec<u64> = r1
                .store
                .iter()
                .filter(|r| r.source == TrafficSource::Bot(ServiceId(3)))
                .map(|r| r.fingerprint.digest())
                .collect();
            digests
        };
        assert_eq!(run(false), run(true), "S3's traffic is unaffected by S1");
    }

    #[test]
    fn mutation_spend_is_accounted() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::block(ROUND_SECS)));
        arena.set_strategy(ServiceId(1), Box::new(FingerprintMutation::new(0.05, 1.0)));
        arena.step();
        let r1 = arena.step();
        assert!(r1.stats.mutation.adapted_requests > 0);
        // Resolution (2) + cores (1) + cookie (1) change on every adapted
        // request; timezone attrs only count when they were wrong.
        assert!(r1.stats.mutation.mutated_attrs >= 4 * r1.stats.mutation.adapted_requests);
        assert_eq!(r1.stats.mutation.tls_upgrades, 0);
    }

    #[test]
    fn every_round_keeps_full_verdict_provenance() {
        let mut arena = Arena::new(tiny_config(ResponsePolicy::captcha()));
        arena.step();
        let r1 = arena.step();
        for record in r1.store.iter().take(50) {
            for name in [
                provenance::DATADOME,
                provenance::BOTD,
                provenance::FP_TLS_CROSSLAYER,
                provenance::FP_SPATIAL,
                provenance::FP_TEMPORAL_COOKIE,
                provenance::FP_TEMPORAL_IP,
            ] {
                assert!(
                    record.verdicts.verdict(name).is_some(),
                    "round-1 record {} missing {name}",
                    record.id
                );
            }
        }
    }
}
