//! The shared streaming-detection contract.
//!
//! Every bot detector in the workspace — the simulated commercial services
//! (`fp-antibot`'s DataDome/BotD), FP-Inconsistent's spatial rule matcher
//! and its temporal state machines (`core`) — speaks this one interface:
//! observe stored requests **in arrival order**, emit one [`Verdict`] per
//! request. The honey-site pipeline runs a chain of detectors inline at
//! ingest and records each verdict with named provenance in a
//! [`VerdictSet`], so downstream analysis never special-cases a detector.
//!
//! [`StateScope`] declares which anchor a detector's cross-request state
//! hangs off. The sharded ingest pipeline uses it to partition work: a
//! `PerIp` detector only ever sees one address's requests on one shard (in
//! arrival order), which makes N-shard execution verdict-for-verdict
//! identical to sequential execution.

use crate::interner::Symbol;
use crate::stored::StoredRequest;
use serde::de::{MapAccess, Visitor};
use serde::ser::SerializeMap;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// A detector's decision on one request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Verdict {
    /// Let through — the request looked human.
    Human,
    /// Blocked — the request was classified as a bot.
    Bot,
}

impl Verdict {
    /// Did the request get past the detector?
    pub fn evaded(self) -> bool {
        self == Verdict::Human
    }

    /// Was the request flagged?
    pub fn is_bot(self) -> bool {
        self == Verdict::Bot
    }

    /// Lift a boolean flag (`true` = bot) into a verdict.
    pub fn from_flag(flagged: bool) -> Verdict {
        if flagged {
            Verdict::Bot
        } else {
            Verdict::Human
        }
    }
}

/// Which anchor a detector's cross-request state is keyed by.
///
/// The contract: a detector's verdict for a request may depend only on the
/// requests *with the same anchor value* that it observed earlier (plus the
/// request itself). `Stateless` detectors depend on the request alone.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateScope {
    /// Pure function of the request.
    Stateless,
    /// State keyed by the source address (its stored hash).
    PerIp,
    /// State keyed by the first-party cookie.
    PerCookie,
}

/// A streaming bot detector.
///
/// Implementations must be fed requests in arrival order (per state anchor;
/// see [`StateScope`]). `Send` so shards can run detector instances on
/// worker threads.
pub trait Detector: Send {
    /// Provenance name recorded with every verdict (see [`provenance`]).
    fn name(&self) -> &'static str;

    /// Which anchor this detector's state is keyed by. Required (no
    /// `Stateless` default) because a wrong answer silently breaks the
    /// sharded pipeline's equivalence guarantee — a stateful detector
    /// declared stateless gets forked per shard and sees only a slice of
    /// its anchor's history.
    fn scope(&self) -> StateScope;

    /// Decide one request. `&mut self` because stateful detectors update
    /// their per-anchor history.
    fn observe(&mut self, request: &StoredRequest) -> Verdict;

    /// Drop accumulated state (new measurement run).
    fn reset(&mut self);

    /// A fresh instance of this detector with empty state and the same
    /// configuration — what each ingest shard runs.
    fn fork(&self) -> Box<dyn Detector>;
}

/// Canonical provenance names for the workspace's detectors.
pub mod provenance {
    use crate::interner::Symbol;

    /// The DataDome-like server-side engine.
    pub const DATADOME: &str = "DataDome";
    /// The BotD-like client-side script.
    pub const BOTD: &str = "BotD";
    /// FP-Inconsistent's mined spatial rules + location generalisation.
    pub const FP_SPATIAL: &str = "fp-spatial";
    /// FP-Inconsistent's per-cookie immutable-attribute anchor (§7.2).
    pub const FP_TEMPORAL_COOKIE: &str = "fp-temporal-cookie";
    /// FP-Inconsistent's per-IP timezone-churn anchor (§7.2).
    pub const FP_TEMPORAL_IP: &str = "fp-temporal-ip";
    /// The cross-layer TLS consistency check: the stack the ClientHello
    /// exhibits vs. the stack the User-Agent claims (§8.2 extension).
    pub const FP_TLS_CROSSLAYER: &str = "fp-tls-crosslayer";
    /// The session behaviour detector: per-cookie machine-cadence
    /// accumulation over the behavioural facet (FP-Agent extension).
    pub const FP_BEHAVIOR: &str = "fp-behavior";

    /// [`DATADOME`] interned once per process — whole-store loops reading
    /// the [`super::VerdictSet`] by symbol stay an integer compare with no
    /// interner lock.
    pub fn datadome_sym() -> Symbol {
        static SYM: std::sync::OnceLock<Symbol> = std::sync::OnceLock::new();
        *SYM.get_or_init(|| crate::sym(DATADOME))
    }

    /// [`BOTD`] interned once per process (see [`datadome_sym`]).
    pub fn botd_sym() -> Symbol {
        static SYM: std::sync::OnceLock<Symbol> = std::sync::OnceLock::new();
        *SYM.get_or_init(|| crate::sym(BOTD))
    }
}

/// The named verdicts recorded for one request, in detector-chain order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerdictSet {
    entries: Vec<(Symbol, Verdict)>,
}

impl VerdictSet {
    /// No verdicts yet.
    pub fn new() -> VerdictSet {
        VerdictSet::default()
    }

    /// Compat constructor for the two original hardcoded services.
    pub fn from_services(datadome_bot: bool, botd_bot: bool) -> VerdictSet {
        let mut v = VerdictSet::new();
        v.record(
            crate::sym(provenance::DATADOME),
            Verdict::from_flag(datadome_bot),
        );
        v.record(crate::sym(provenance::BOTD), Verdict::from_flag(botd_bot));
        v
    }

    /// Append a detector's verdict (replaces an existing entry of the same
    /// name, so re-running a detector is idempotent).
    pub fn record(&mut self, detector: Symbol, verdict: Verdict) {
        if let Some(slot) = self.entries.iter_mut().find(|(d, _)| *d == detector) {
            slot.1 = verdict;
        } else {
            self.entries.push((detector, verdict));
        }
    }

    /// The verdict recorded under `name`, if that detector ran.
    pub fn verdict(&self, name: &str) -> Option<Verdict> {
        self.entries
            .iter()
            .find(|(d, _)| d.as_str() == name)
            .map(|(_, v)| *v)
    }

    /// [`VerdictSet::verdict`] by interned symbol: an integer compare per
    /// entry, no interner lock — what hot whole-store loops should use.
    pub fn verdict_sym(&self, detector: Symbol) -> Option<Verdict> {
        self.entries
            .iter()
            .find(|(d, _)| *d == detector)
            .map(|(_, v)| *v)
    }

    /// Did the named detector flag this request? (`false` when it did not
    /// run.)
    pub fn bot(&self, name: &str) -> bool {
        self.verdict(name) == Some(Verdict::Bot)
    }

    /// [`VerdictSet::bot`] by interned symbol (see [`VerdictSet::verdict_sym`]).
    pub fn bot_sym(&self, detector: Symbol) -> bool {
        self.verdict_sym(detector) == Some(Verdict::Bot)
    }

    /// Did any detector flag this request?
    pub fn any_bot(&self) -> bool {
        self.entries.iter().any(|(_, v)| v.is_bot())
    }

    /// Number of recorded verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Were no verdicts recorded?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All `(detector, verdict)` pairs in chain order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Verdict)> + '_ {
        self.entries.iter().copied()
    }
}

impl Serialize for VerdictSet {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.entries.len()))?;
        for (detector, verdict) in &self.entries {
            map.serialize_entry(detector.as_str(), &verdict.is_bot())?;
        }
        map.end()
    }
}

impl<'de> Deserialize<'de> for VerdictSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VsVisitor;
        impl<'de> Visitor<'de> for VsVisitor {
            type Value = VerdictSet;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map of detector name to bot flag")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut access: A) -> Result<VerdictSet, A::Error> {
                let mut set = VerdictSet::new();
                while let Some((name, bot)) = access.next_entry::<String, bool>()? {
                    set.record(crate::sym(&name), Verdict::from_flag(bot));
                }
                Ok(set)
            }
        }
        deserializer.deserialize_map(VsVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym;

    #[test]
    fn verdict_evaded() {
        assert!(Verdict::Human.evaded());
        assert!(!Verdict::Bot.evaded());
        assert!(Verdict::from_flag(true).is_bot());
        assert!(!Verdict::from_flag(false).is_bot());
    }

    #[test]
    fn record_and_query() {
        let mut set = VerdictSet::new();
        assert!(set.is_empty());
        set.record(sym(provenance::DATADOME), Verdict::Bot);
        set.record(sym(provenance::BOTD), Verdict::Human);
        assert!(set.bot(provenance::DATADOME));
        assert!(!set.bot(provenance::BOTD));
        assert!(
            !set.bot(provenance::FP_SPATIAL),
            "absent detector is not a bot flag"
        );
        assert_eq!(set.verdict(provenance::FP_SPATIAL), None);
        assert!(set.any_bot());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn record_is_idempotent_per_detector() {
        let mut set = VerdictSet::new();
        set.record(sym("x"), Verdict::Bot);
        set.record(sym("x"), Verdict::Human);
        assert_eq!(set.len(), 1);
        assert!(!set.bot("x"));
    }

    #[test]
    fn compat_constructor_matches_legacy_fields() {
        let set = VerdictSet::from_services(true, false);
        assert!(set.bot(provenance::DATADOME));
        assert!(!set.bot(provenance::BOTD));
    }

    #[test]
    fn serde_roundtrip() {
        let set = VerdictSet::from_services(false, true);
        let json = serde_json::to_string(&set).unwrap();
        assert_eq!(json, r#"{"DataDome":false,"BotD":true}"#);
        let back: VerdictSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }
}
