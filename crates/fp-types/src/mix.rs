//! Deterministic splittable hashing.
//!
//! Generators and detector simulators need per-entity randomness (per
//! request, per device, per day) that is (a) reproducible from the campaign
//! seed and (b) independent across entities. SplitMix64 gives both: hash the
//! seed together with the entity coordinates and treat the output as a
//! uniform 64-bit draw. This is how e.g. the DataDome simulator decides the
//! stochastic part of a verdict without any shared-RNG ordering hazards.

/// One round of SplitMix64 (public-domain constants from Steele et al.).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash two coordinates into one draw.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a) ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Hash three coordinates into one draw.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix2(mix2(a, b), c)
}

/// Map a 64-bit draw to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn unit_f64(x: u64) -> f64 {
    // 53 mantissa bits.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The shard owning a state key (cookie or IP hash). One definition shared
/// by the store's sharded indexes and the ingest pipeline so they always
/// agree; mixes first because test fixtures use small sequential keys.
#[inline]
pub fn shard_for(key: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (splitmix64(key) % shards as u64) as usize
}

/// A tiny splittable PRNG handle: a seed plus a counter, supporting
/// hierarchical derivation (`child`) so each subsystem gets an independent
/// stream from the single campaign seed.
#[derive(Clone, Copy, Debug)]
pub struct Splittable {
    state: u64,
}

impl Splittable {
    /// Root stream from a campaign seed.
    pub fn new(seed: u64) -> Splittable {
        Splittable {
            state: splitmix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Derive an independent child stream for a labelled subsystem.
    pub fn child(&self, label: u64) -> Splittable {
        Splittable {
            state: mix2(self.state, label),
        }
    }

    /// Derive a child from a string label (e.g. `"geo"`, `"plugins"`).
    pub fn child_str(&self, label: &str) -> Splittable {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.child(h)
    }

    /// Draw the next u64 (advances the stream).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Draw a uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Draw a uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for the n used here (< 2^32).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Pick an index according to non-negative weights (must not all be 0).
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0);
        let mut draw = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values_stable() {
        // Fixed anchors: any change to the mixing constants is a break.
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000u64 {
            let f = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = Splittable::new(42).child(7);
        let mut b = Splittable::new(42).child(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn child_streams_differ() {
        let root = Splittable::new(42);
        let mut a = root.child(1);
        let mut b = root.child(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn child_str_matches_itself_only() {
        let root = Splittable::new(9);
        let mut a = root.child_str("geo");
        let mut b = root.child_str("geo");
        let mut c = root.child_str("plugins");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_bounds() {
        let mut r = Splittable::new(3);
        for n in [1u64, 2, 7, 100, 1_000_000] {
            for _ in 0..100 {
                assert!(r.next_below(n) < n);
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Splittable::new(4);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn pick_weighted_respects_zero_weights() {
        let mut r = Splittable::new(5);
        for _ in 0..200 {
            let i = r.pick_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = Splittable::new(6);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!(
                (800..1200).contains(&b),
                "bucket count {b} outside tolerance"
            );
        }
    }
}
