//! The mitigation contract of the closed-loop arena.
//!
//! The paper's §6 measurement is not "who gets flagged" but *what evasive
//! bots do after mitigation lands* — rotating IPs across ASNs and
//! geographies and mutating fingerprint attributes to slip back in. Closing
//! that loop needs two shared types: the action a site takes on a flagged
//! request ([`MitigationAction`]) and the round-level outcome a bot service
//! can actually *observe* and adapt to ([`RoundOutcome`]). They live here,
//! next to [`crate::VerdictSet`], because both sides of the arena speak
//! them: `fp-arena` applies actions and tallies outcomes, bot adaptation
//! strategies consume the outcomes, and `core::evaluate` reports the
//! resulting trajectories.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What the site does with one request after the detector chain has spoken.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MitigationAction {
    /// Serve the page normally.
    Allow,
    /// Serve a CAPTCHA interstitial. Humans solve it; automation fails, so
    /// the client *sees* the mitigation (a visible failure).
    Captcha,
    /// Deny the request and put its source address on a block list for the
    /// carried number of simulated seconds. Until the entry expires, later
    /// requests from the address are turned away at admission.
    Block(u64),
    /// Record the flag but serve the page normally — the response is
    /// indistinguishable from [`MitigationAction::Allow`], so the client
    /// learns nothing (the measurement-friendly policy the paper's
    /// honey site itself runs).
    ShadowFlag,
}

impl MitigationAction {
    /// Can the client tell this action apart from a normal page load? This
    /// is what drives adaptation: bots react to *visible* failures only, so
    /// shadow-flagged traffic never learns it was caught.
    pub fn visible_to_client(self) -> bool {
        matches!(self, MitigationAction::Captcha | MitigationAction::Block(_))
    }

    /// Does this action feed the admission blocklist?
    pub fn blocks(self) -> bool {
        matches!(self, MitigationAction::Block(_))
    }

    /// How aggressive the action is, for policies that must pick one of
    /// several candidate responses: `Allow` < `ShadowFlag` < `Captcha` <
    /// `Block` (per-detector policies let the highest-severity flagged
    /// detector win).
    pub fn severity(self) -> u8 {
        match self {
            MitigationAction::Allow => 0,
            MitigationAction::ShadowFlag => 1,
            MitigationAction::Captcha => 2,
            MitigationAction::Block(_) => 3,
        }
    }
}

impl fmt::Display for MitigationAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitigationAction::Allow => f.write_str("allow"),
            MitigationAction::Captcha => f.write_str("captcha"),
            MitigationAction::Block(ttl_secs) => write!(f, "block({ttl_secs}s)"),
            MitigationAction::ShadowFlag => f.write_str("shadow-flag"),
        }
    }
}

/// The site-side tally of mitigation actions over one arena round —
/// every admitted request lands in exactly one bucket. Unlike
/// [`RoundOutcome`] (a single source's censored view, with shadow flags
/// folded into `allowed`), this is the defender's full ledger, and it is
/// part of the run's observable behaviour: the arena folds it into the
/// per-round behaviour fingerprint ([`crate::runfp`]), so a policy change
/// that shifts even one request between buckets flips the run fingerprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionLedger {
    /// Requests served normally with no flag acted on.
    pub allowed: u64,
    /// Requests flagged but served (recorded, invisible to the client).
    pub shadow_flagged: u64,
    /// Requests answered with a CAPTCHA interstitial.
    pub captchas: u64,
    /// Requests denied with a block (a blocklist write or lease renewal).
    pub blocked: u64,
}

impl ActionLedger {
    /// Count one decided action.
    pub fn record(&mut self, action: MitigationAction) {
        match action {
            MitigationAction::Allow => self.allowed += 1,
            MitigationAction::ShadowFlag => self.shadow_flagged += 1,
            MitigationAction::Captcha => self.captchas += 1,
            MitigationAction::Block(_) => self.blocked += 1,
        }
    }

    /// Total actions decided (= admitted requests this round).
    pub fn total(&self) -> u64 {
        self.allowed + self.shadow_flagged + self.captchas + self.blocked
    }
}

/// One traffic source's view of one arena round: how many requests it sent
/// and what visibly happened to them. This is deliberately *less* than the
/// site knows — shadow flags are folded into `allowed`, and per-request
/// verdict provenance is absent — because a bot service only observes
/// responses, never the detectors behind them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundOutcome {
    /// The round index the outcome describes (0 = the pre-mitigation round).
    pub round: u32,
    /// Requests the source attempted this round.
    pub sent: u64,
    /// Requests turned away at admission by a live blocklist entry.
    pub denied: u64,
    /// Requests answered with a CAPTCHA interstitial.
    pub captchas: u64,
    /// Requests denied with a fresh block (and a new blocklist entry).
    pub blocked: u64,
    /// Requests served normally — including shadow-flagged ones, which the
    /// client cannot distinguish.
    pub allowed: u64,
}

impl RoundOutcome {
    /// Fraction of sent requests that visibly failed (denied at admission,
    /// challenged, or block-denied). The adaptation pressure signal.
    pub fn visible_failure_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        (self.denied + self.captchas + self.blocked) as f64 / self.sent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_split() {
        assert!(!MitigationAction::Allow.visible_to_client());
        assert!(!MitigationAction::ShadowFlag.visible_to_client());
        assert!(MitigationAction::Captcha.visible_to_client());
        assert!(MitigationAction::Block(60).visible_to_client());
        assert!(MitigationAction::Block(60).blocks());
        assert!(!MitigationAction::Captcha.blocks());
    }

    #[test]
    fn severity_orders_actions() {
        assert!(MitigationAction::Allow.severity() < MitigationAction::ShadowFlag.severity());
        assert!(MitigationAction::ShadowFlag.severity() < MitigationAction::Captcha.severity());
        assert!(MitigationAction::Captcha.severity() < MitigationAction::Block(1).severity());
        assert_eq!(
            MitigationAction::Block(1).severity(),
            MitigationAction::Block(u64::MAX).severity(),
            "TTL does not change the severity class"
        );
    }

    #[test]
    fn failure_rate() {
        let outcome = RoundOutcome {
            round: 1,
            sent: 100,
            denied: 10,
            captchas: 5,
            blocked: 5,
            allowed: 80,
        };
        assert!((outcome.visible_failure_rate() - 0.2).abs() < 1e-12);
        assert_eq!(RoundOutcome::default().visible_failure_rate(), 0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MitigationAction::Allow.to_string(), "allow");
        assert_eq!(MitigationAction::Block(3600).to_string(), "block(3600s)");
    }

    #[test]
    fn action_ledger_buckets_every_action_once() {
        let mut ledger = ActionLedger::default();
        for action in [
            MitigationAction::Allow,
            MitigationAction::ShadowFlag,
            MitigationAction::ShadowFlag,
            MitigationAction::Captcha,
            MitigationAction::Block(60),
            MitigationAction::Block(3_600),
        ] {
            ledger.record(action);
        }
        assert_eq!(ledger.allowed, 1);
        assert_eq!(ledger.shadow_flagged, 2);
        assert_eq!(ledger.captchas, 1);
        assert_eq!(ledger.blocked, 2, "TTL does not change the bucket");
        assert_eq!(ledger.total(), 6);
    }

    #[test]
    fn serde_roundtrip() {
        let action = MitigationAction::Block(7);
        let json = serde_json::to_string(&action).unwrap();
        let back: MitigationAction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, action);
    }
}
