//! Attribute values.
//!
//! A value is a small tagged union. List-valued attributes (plugins, fonts,
//! languages) intern the *joined* canonical form as well, so two requests
//! with the same plugin set compare equal on a single `Symbol` — the miner
//! treats each distinct list as one configuration, exactly like the paper
//! treats "Plugins" as one attribute.

use crate::interner::{sym, Symbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One fingerprint attribute value.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum AttrValue {
    /// Attribute absent (API not present in this browser, or blocked).
    Missing,
    /// Boolean attribute (`webdriver`, `hdr`, storage availability, ...).
    Bool(bool),
    /// Integer attribute (cores, touch points, color depth, tz offset, ...).
    Int(i64),
    /// Floating-point attribute (`deviceMemory`, audio digest, widths).
    /// Stored as milli-units to keep `AttrValue: Eq + Hash` honest.
    Milli(i64),
    /// Interned string attribute (platform, vendor, timezone, digests, ...).
    /// Also the canonical form of list attributes (joined with `,`).
    Sym(Symbol),
    /// Screen-like dimension pair, `width x height`.
    Resolution(u16, u16),
}

impl Eq for AttrValue {}

impl std::hash::Hash for AttrValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            AttrValue::Missing => {}
            AttrValue::Bool(b) => b.hash(state),
            AttrValue::Int(i) => i.hash(state),
            AttrValue::Milli(m) => m.hash(state),
            AttrValue::Sym(s) => s.hash(state),
            AttrValue::Resolution(w, h) => {
                w.hash(state);
                h.hash(state);
            }
        }
    }
}

impl AttrValue {
    /// Build a float value (stored with millis precision).
    pub fn float(v: f64) -> AttrValue {
        AttrValue::Milli((v * 1000.0).round() as i64)
    }

    /// Build a string value.
    pub fn text(s: &str) -> AttrValue {
        AttrValue::Sym(sym(s))
    }

    /// Build a canonical list value: items joined by `,` (order preserved —
    /// plugin order is itself a fingerprint signal).
    pub fn list<I: IntoIterator<Item = S>, S: AsRef<str>>(items: I) -> AttrValue {
        let joined = items
            .into_iter()
            .map(|s| s.as_ref().to_owned())
            .collect::<Vec<_>>()
            .join(",");
        AttrValue::Sym(sym(&joined))
    }

    /// `true` when the value is [`AttrValue::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, AttrValue::Missing)
    }

    /// Integer view (for `Int` and `Bool`).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            AttrValue::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Float view (for `Milli`, `Int`, `Bool`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Milli(m) => Some(*m as f64 / 1000.0),
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// Symbol view.
    pub fn as_sym(&self) -> Option<Symbol> {
        match self {
            AttrValue::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// String view (symbols only).
    pub fn as_str(&self) -> Option<&'static str> {
        self.as_sym().map(Symbol::as_str)
    }

    /// Resolution view.
    pub fn as_resolution(&self) -> Option<(u16, u16)> {
        match self {
            AttrValue::Resolution(w, h) => Some((*w, *h)),
            _ => None,
        }
    }

    /// Split a canonical list value back into items. Empty list for the
    /// empty string, `None` for non-symbol values.
    pub fn as_list(&self) -> Option<Vec<&'static str>> {
        let s = self.as_str()?;
        if s.is_empty() {
            return Some(Vec::new());
        }
        Some(s.split(',').collect())
    }

    /// A numeric projection used by `fp-ml` for split finding: every value
    /// maps to *some* f64 (symbols map through their interner index, which is
    /// stable within a run; categorical splits handle them properly, this is
    /// only the fallback ordering).
    pub fn numeric_projection(&self) -> f64 {
        match self {
            AttrValue::Missing => f64::NAN,
            AttrValue::Bool(b) => f64::from(u8::from(*b)),
            AttrValue::Int(i) => *i as f64,
            AttrValue::Milli(m) => *m as f64 / 1000.0,
            AttrValue::Sym(s) => f64::from(s.index()),
            AttrValue::Resolution(w, h) => f64::from(*w) * 65536.0 + f64::from(*h),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Missing => f.write_str("<missing>"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Milli(m) => write!(f, "{}", *m as f64 / 1000.0),
            AttrValue::Sym(s) => f.write_str(s.as_str()),
            AttrValue::Resolution(w, h) => write!(f, "{w}x{h}"),
        }
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}
impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}
impl From<u32> for AttrValue {
    fn from(i: u32) -> Self {
        AttrValue::Int(i64::from(i))
    }
}
impl From<Symbol> for AttrValue {
    fn from(s: Symbol) -> Self {
        AttrValue::Sym(s)
    }
}
impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::text(s)
    }
}
impl From<(u16, u16)> for AttrValue {
    fn from((w, h): (u16, u16)) -> Self {
        AttrValue::Resolution(w, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrips_with_milli_precision() {
        let v = AttrValue::float(131.512);
        assert_eq!(v.as_f64(), Some(131.512));
        let v = AttrValue::float(0.5);
        assert_eq!(v.as_f64(), Some(0.5));
    }

    #[test]
    fn list_canonicalization_is_order_sensitive() {
        let a = AttrValue::list(["PDF Viewer", "Chrome PDF Viewer"]);
        let b = AttrValue::list(["Chrome PDF Viewer", "PDF Viewer"]);
        assert_ne!(a, b, "plugin order is a signal");
        assert_eq!(
            a.as_list().unwrap(),
            vec!["PDF Viewer", "Chrome PDF Viewer"]
        );
    }

    #[test]
    fn empty_list_roundtrip() {
        let v = AttrValue::list(Vec::<&str>::new());
        assert_eq!(v.as_list().unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttrValue::Resolution(390, 844).to_string(), "390x844");
        assert_eq!(AttrValue::Bool(true).to_string(), "true");
        assert_eq!(AttrValue::Missing.to_string(), "<missing>");
        assert_eq!(AttrValue::Int(8).to_string(), "8");
    }

    #[test]
    fn views_reject_wrong_variants() {
        assert_eq!(AttrValue::Bool(true).as_resolution(), None);
        assert_eq!(AttrValue::Resolution(1, 2).as_int(), None);
        assert_eq!(AttrValue::Int(3).as_sym(), None);
    }

    #[test]
    fn hash_eq_consistent() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(AttrValue::float(4.0));
        assert!(set.contains(&AttrValue::float(4.0)));
        assert!(!set.contains(&AttrValue::float(4.001)));
    }

    #[test]
    fn serde_roundtrip() {
        let vals = [
            AttrValue::Missing,
            AttrValue::Bool(true),
            AttrValue::Int(-5),
            AttrValue::float(2.5),
            AttrValue::text("iPhone"),
            AttrValue::Resolution(1920, 1080),
        ];
        for v in vals {
            let json = serde_json::to_string(&v).unwrap();
            let back: AttrValue = serde_json::from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }
}
