//! The stored request: what the honey site records per admitted visit.
//!
//! Lives in `fp-types` (rather than `fp-honeysite`) because it is the value
//! every [`detect::Detector`](crate::detect::Detector) observes — the
//! detection contract and the record it runs on share one crate at the
//! bottom of the dependency graph.

use crate::behavior::BehaviorFacet;
use crate::clock::SimTime;
use crate::detect::VerdictSet;
use crate::fingerprint::Fingerprint;
use crate::interner::Symbol;
use crate::label::TrafficSource;
use crate::request::{BehaviorTrace, CookieId, RequestId};
use crate::tls::TlsFacet;
use serde::{Deserialize, Serialize};

/// One stored request: everything later analysis reads, nothing more. The
/// raw IP is replaced by a salted hash plus the derived network facts
/// (paper ethics appendix); client behaviour is kept as summary statistics
/// so the server-side detectors can run on the stored record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoredRequest {
    /// Dense store-assigned identifier.
    pub id: RequestId,
    /// Simulated arrival time.
    pub time: SimTime,
    /// URL token of the honey-site version that received the request.
    pub site_token: Symbol,
    /// Salted hash of the source address (identity, not locality).
    pub ip_hash: u64,
    /// UTC offset (JS sign convention) of the IP's geolocation.
    pub ip_offset_minutes: i32,
    /// MaxMind-style `Country/Region` label of the IP's geolocation.
    pub ip_region: Symbol,
    /// Representative latitude of the IP's region (Figure 8).
    pub ip_lat: f32,
    /// Representative longitude of the IP's region (Figure 8).
    pub ip_lon: f32,
    /// Owning AS number.
    pub asn: u32,
    /// On the public datacenter-ASN blocklist?
    pub asn_flagged: bool,
    /// On the per-address reputation blocklist?
    pub ip_blocklisted: bool,
    /// Was the source address a Tor exit at ingest time? (Derived network
    /// fact, like the blocklist flags — the raw address is gone.)
    pub tor_exit: bool,
    /// First-party cookie (issued at first contact if absent).
    pub cookie: CookieId,
    /// The FingerprintJS attribute vector.
    pub fingerprint: Fingerprint,
    /// JA3/JA4 digests of the TLS ClientHello that carried the request.
    /// Network-layer behaviour, not a browser-layer claim — what the
    /// cross-layer detector compares against the User-Agent.
    pub tls: TlsFacet,
    /// Observed input behaviour (summary statistics only).
    pub behavior: BehaviorTrace,
    /// Session-level behavioural summary — the cadence facet the session
    /// behaviour detector accumulates per cookie.
    pub cadence: BehaviorFacet,
    /// Ground truth from the URL-token design.
    pub source: TrafficSource,
    /// Named real-time verdicts from the ingest detector chain.
    pub verdicts: VerdictSet,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::provenance;
    use crate::{sym, AttrId, ServiceId};

    fn record() -> StoredRequest {
        StoredRequest {
            id: 3,
            time: SimTime::from_day(1, 0),
            site_token: sym("tok"),
            ip_hash: 77,
            ip_offset_minutes: 480,
            ip_region: sym("United States of America/California"),
            ip_lat: 36.7,
            ip_lon: -119.4,
            asn: 7922,
            asn_flagged: false,
            ip_blocklisted: false,
            tor_exit: false,
            cookie: 9,
            fingerprint: Fingerprint::new().with(AttrId::UaDevice, "iPhone"),
            tls: TlsFacet::observed(sym("ja3digest"), sym("ja4desc")),
            behavior: BehaviorTrace::silent(),
            cadence: BehaviorFacet::observed(3_000, 3_300, 0.04, 4, 1, 2_800),
            source: TrafficSource::Bot(ServiceId(1)),
            verdicts: VerdictSet::from_services(false, true),
        }
    }

    #[test]
    fn named_verdict_reads_cover_both_services() {
        // The canonical reads the PR-4-deprecated (now removed) compat
        // accessors pointed at: interned-symbol lookups per service.
        let r = record();
        assert!(!r.verdicts.bot_sym(provenance::datadome_sym()));
        assert!(r.verdicts.bot_sym(provenance::botd_sym()));
        assert_eq!(
            r.verdicts.bot_sym(provenance::datadome_sym()),
            r.verdicts.bot(provenance::DATADOME)
        );
        assert_eq!(
            r.verdicts.bot_sym(provenance::botd_sym()),
            r.verdicts.bot(provenance::BOTD)
        );
    }

    #[test]
    fn serde_roundtrip() {
        let r = record();
        let json = serde_json::to_string(&r).unwrap();
        let back: StoredRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, r.id);
        assert_eq!(back.cookie, r.cookie);
        assert_eq!(back.fingerprint, r.fingerprint);
        assert_eq!(back.verdicts, r.verdicts);
        assert_eq!(back.behavior, r.behavior);
        assert_eq!(back.cadence, r.cadence);
        assert_eq!(back.tls, r.tls);
        assert_eq!(back.tor_exit, r.tor_exit);
    }
}
