//! Deterministic run fingerprints: byte-stable attestation that a whole
//! closed-loop campaign is reproducible.
//!
//! "Tests pass" is a weaker claim than "the §6 reproduction is byte-stable
//! across machines, shard counts, and refactors". This module supplies the
//! stronger one: a [`RunFingerprint`] is a 128-bit content hash over a
//! run's *named components* — what was configured (scale, policy,
//! retention, re-mine cadence), what seeded it, and what observably
//! happened (the per-round behaviour fold) — under the `RUNFP_V1` domain
//! tag. The discipline mirrors [`crate::stablehash`]'s pack hashing:
//! the fingerprint changes **iff** observable behaviour changes, and is
//! identical across processes, platforms and ingest shard counts.
//!
//! Unlike a pack hash, a run is a *sequence*: round 3 after round 2 is a
//! different campaign than round 2 after round 3. So where
//! [`crate::stablehash::ContentHasher`] combines commutatively, the
//! [`ComponentHasher`] here chains — each canonical line re-seeds two
//! independent [`crate::stablehash::stable_hash64`] lanes, so line order
//! is part of the hashed content. Shard-count invariance is *not* the
//! hasher's job: it holds because everything folded in (flag counts, pack
//! hashes, eviction ledgers) is already provably shard-invariant, and
//! because the shard count is deliberately excluded from the config
//! components (it is an execution parameter, not behaviour).
//!
//! Divergence is auditable, not just detectable: a run exposes its
//! [`RunComponents`] breakdown, and [`RunComponents::diverging`] /
//! [`RunComponents::diff_report`] name exactly which component disagrees
//! when two runs do. [`RunComponents::to_ledger`] renders the committed
//! golden-file form (`fingerprint=` line plus one `name=hash` line per
//! component) that CI asserts against; [`RunComponents::parse_ledger`]
//! reads it back and re-verifies the fingerprint against the components.

use crate::stablehash::stable_hash64;
use std::fmt;
use std::str::FromStr;

/// Domain tag folded into every component lane seed: bump it whenever the
/// canonical line encoding changes meaning, so fingerprints from different
/// encodings can never collide by accident.
const DOMAIN_TAG: &str = "RUNFP_V1";

/// Lane seed for `lane` (1 = low, 2 = high), bound to the domain tag and
/// the component name so the same lines hashed under different component
/// names (or a future `RUNFP_V2`) produce unrelated hashes.
fn lane_seed(component: &str, lane: u64) -> u64 {
    stable_hash64(
        component.as_bytes(),
        stable_hash64(DOMAIN_TAG.as_bytes(), lane),
    )
}

/// The 128-bit content hash of one named run component (e.g. the
/// behaviour fold, or the retention config line).
///
/// Equality means "this facet of the two runs is identical"; displays as
/// 32 hex digits, [`ComponentHash::short`] gives the 12-digit prefix
/// tables print.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ComponentHash(u128);

impl ComponentHash {
    /// Wrap a raw 128-bit value (e.g. a hash produced elsewhere, or a
    /// synthetic value in property tests).
    pub fn from_u128(raw: u128) -> ComponentHash {
        ComponentHash(raw)
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// The 12-hex-digit prefix — what report columns print.
    pub fn short(self) -> String {
        format!("{:012x}", self.0 >> 80)
    }
}

impl fmt::Display for ComponentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for ComponentHash {
    type Err = String;

    fn from_str(s: &str) -> Result<ComponentHash, String> {
        parse_hex128(s).map(ComponentHash)
    }
}

/// The 128-bit fingerprint of a whole run: the ordered fold of its
/// component hashes (see [`RunComponents::fingerprint`]).
///
/// Two runs with equal fingerprints behaved identically in every attested
/// respect; when they differ, compare their [`RunComponents`] to name the
/// diverging facet. Displays as 32 hex digits and round-trips through
/// [`FromStr`] (how golden files are read back).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RunFingerprint(u128);

impl RunFingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// The 12-hex-digit prefix — what report columns print.
    pub fn short(self) -> String {
        format!("{:012x}", self.0 >> 80)
    }
}

impl fmt::Display for RunFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for RunFingerprint {
    type Err = String;

    fn from_str(s: &str) -> Result<RunFingerprint, String> {
        parse_hex128(s).map(RunFingerprint)
    }
}

fn parse_hex128(s: &str) -> Result<u128, String> {
    if s.len() != 32 {
        return Err(format!("expected 32 hex digits, got {} ({s:?})", s.len()));
    }
    u128::from_str_radix(s, 16).map_err(|e| format!("bad hex {s:?}: {e}"))
}

/// Order-*sensitive* accumulator of one component's canonical lines.
///
/// Two independent 64-bit lanes are seeded from the `RUNFP_V1` domain tag
/// plus the component name, then each line re-seeds both lanes (the line's
/// hash under the previous state), so the same lines in a different order
/// — a reordered trajectory — produce a different hash. Contrast
/// [`crate::stablehash::ContentHasher`], which is deliberately
/// commutative for *bags* of items.
#[derive(Clone, Copy, Debug)]
pub struct ComponentHasher {
    lo: u64,
    hi: u64,
    lines: u64,
}

impl ComponentHasher {
    /// A fresh accumulator for the named component.
    pub fn new(component: &str) -> ComponentHasher {
        ComponentHasher {
            lo: lane_seed(component, 1),
            hi: lane_seed(component, 2),
            lines: 0,
        }
    }

    /// Chain one canonical line into both lanes (order matters).
    pub fn line(&mut self, line: &str) {
        self.lo = stable_hash64(line.as_bytes(), self.lo);
        self.hi = stable_hash64(line.as_bytes(), self.hi);
        self.lines += 1;
    }

    /// Number of lines chained so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The component hash of everything chained.
    pub fn finish(&self) -> ComponentHash {
        let lo = crate::mix::splitmix64(self.lo.wrapping_add(self.lines));
        let hi = crate::mix::splitmix64(self.hi ^ self.lines.rotate_left(32));
        ComponentHash((u128::from(hi) << 64) | u128::from(lo))
    }
}

/// Hash a short component whose canonical form is a fixed handful of
/// lines (config components are typically one line each).
pub fn component_of(name: &str, lines: &[&str]) -> ComponentHash {
    let mut h = ComponentHasher::new(name);
    for line in lines {
        h.line(line);
    }
    h.finish()
}

/// A run's named component breakdown — the audit surface behind a
/// [`RunFingerprint`].
///
/// Producers push components in a fixed, documented order (the order is
/// part of the fingerprint); consumers compare breakdowns with
/// [`RunComponents::diverging`] to name exactly which facet two runs
/// disagree on, and render/parse the committed golden-file form with
/// [`RunComponents::to_ledger`] / [`RunComponents::parse_ledger`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunComponents {
    components: Vec<(String, ComponentHash)>,
}

impl RunComponents {
    /// An empty breakdown.
    pub fn new() -> RunComponents {
        RunComponents::default()
    }

    /// Append one named component. Names must be unique — pushing a
    /// duplicate is a producer bug and panics.
    pub fn push(&mut self, name: &str, hash: ComponentHash) {
        assert!(self.get(name).is_none(), "duplicate run component {name:?}");
        self.components.push((name.to_string(), hash));
    }

    /// The hash of one named component, if present.
    pub fn get(&self, name: &str) -> Option<ComponentHash> {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| *h)
    }

    /// Iterate `(name, hash)` in push order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ComponentHash)> {
        self.components.iter().map(|(n, h)| (n.as_str(), *h))
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// No components yet?
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The run fingerprint: the ordered fold of `name=hash` lines under
    /// the `RUNFP_V1` domain tag. Changes iff any component hash changes,
    /// a component is added/removed, or the component order changes.
    pub fn fingerprint(&self) -> RunFingerprint {
        let mut h = ComponentHasher::new("run");
        for (name, hash) in &self.components {
            h.line(&format!("{name}={hash}"));
        }
        RunFingerprint(h.finish().0)
    }

    /// The names of every component on which `self` and `other` disagree
    /// — differing hashes, or present on one side only. Empty iff the two
    /// breakdowns (and therefore the two fingerprints) are identical.
    pub fn diverging(&self, other: &RunComponents) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for (name, hash) in self.iter() {
            if other.get(name) != Some(hash) {
                names.push(name.to_string());
            }
        }
        for (name, _) in other.iter() {
            if self.get(name).is_none() {
                names.push(name.to_string());
            }
        }
        names
    }

    /// A printable component-by-component comparison — what a golden
    /// mismatch shows so the divergence is localised, not just detected.
    /// `left`/`right` label the two sides (e.g. `"this run"` /
    /// `"golden"`).
    pub fn diff_report(&self, other: &RunComponents, left: &str, right: &str) -> String {
        let diverging = self.diverging(other);
        if diverging.is_empty() {
            return format!("all {} components identical", self.len());
        }
        let mut out = String::new();
        let fmt_hash = |h: Option<ComponentHash>| match h {
            Some(h) => h.to_string(),
            None => "(absent)".to_string(),
        };
        for name in &diverging {
            out.push_str(&format!(
                "  {name}: {left} {} vs {right} {}\n",
                fmt_hash(self.get(name)),
                fmt_hash(other.get(name)),
            ));
        }
        out.push_str(&format!(
            "  ({}/{} components diverge)",
            diverging.len(),
            self.len().max(other.len())
        ));
        out
    }

    /// Render the committed golden-file form: a `fingerprint=` line, then
    /// one `name=hash` line per component in push order. Lines starting
    /// with `#` and blank lines are comments when parsed back.
    pub fn to_ledger(&self) -> String {
        let mut out = format!("fingerprint={}\n", self.fingerprint());
        for (name, hash) in self.iter() {
            out.push_str(&format!("{name}={hash}\n"));
        }
        out
    }

    /// Parse a ledger back ([`RunComponents::to_ledger`]'s inverse) and
    /// verify its declared fingerprint against the re-folded components —
    /// a hand-edited or truncated golden file fails here rather than
    /// silently attesting the wrong thing.
    pub fn parse_ledger(text: &str) -> Result<RunComponents, String> {
        let mut declared: Option<RunFingerprint> = None;
        let mut components = RunComponents::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected name=hash, got {line:?}", i + 1))?;
            if name == "fingerprint" {
                if declared.is_some() {
                    return Err(format!("line {}: duplicate fingerprint line", i + 1));
                }
                declared = Some(value.parse()?);
            } else {
                components.push(name, value.parse()?);
            }
        }
        let declared = declared.ok_or("missing fingerprint= line")?;
        let refolded = components.fingerprint();
        if refolded != declared {
            return Err(format!(
                "ledger is self-inconsistent: declared fingerprint {declared} \
                 but the component lines fold to {refolded}"
            ));
        }
        Ok(components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn component(name: &str, lines: &[&str]) -> ComponentHash {
        component_of(name, lines)
    }

    #[test]
    fn chaining_is_order_sensitive() {
        let ab = component("c", &["alpha", "beta"]);
        let ba = component("c", &["beta", "alpha"]);
        assert_ne!(ab, ba, "a run is a sequence, not a bag");
        assert_eq!(ab, component("c", &["alpha", "beta"]), "and deterministic");
    }

    #[test]
    fn component_name_is_part_of_the_domain() {
        let a = component("behavior", &["line"]);
        let b = component("config.scale", &["line"]);
        assert_ne!(a, b, "same lines under different components differ");
    }

    #[test]
    fn line_boundaries_matter() {
        // "ab" + "c" must not equal "a" + "bc" — the line is the unit.
        assert_ne!(component("c", &["ab", "c"]), component("c", &["a", "bc"]));
        assert_ne!(component("c", &[]), component("c", &[""]));
        assert_ne!(component("c", &[""]), component("c", &["", ""]));
    }

    fn breakdown(pairs: &[(&str, &[&str])]) -> RunComponents {
        let mut c = RunComponents::new();
        for (name, lines) in pairs {
            c.push(name, component(name, lines));
        }
        c
    }

    #[test]
    fn fingerprint_changes_iff_components_change() {
        let base = breakdown(&[("config", &["scale=0.01"]), ("behavior", &["r0", "r1"])]);
        let same = breakdown(&[("config", &["scale=0.01"]), ("behavior", &["r0", "r1"])]);
        assert_eq!(base.fingerprint(), same.fingerprint());
        assert_eq!(base.diverging(&same), Vec::<String>::new());

        // One perturbed component flips the fingerprint and is named.
        let perturbed = breakdown(&[("config", &["scale=0.02"]), ("behavior", &["r0", "r1"])]);
        assert_ne!(base.fingerprint(), perturbed.fingerprint());
        assert_eq!(base.diverging(&perturbed), vec!["config".to_string()]);

        // A missing component diverges too (both directions).
        let fewer = breakdown(&[("config", &["scale=0.01"])]);
        assert_ne!(base.fingerprint(), fewer.fingerprint());
        assert_eq!(base.diverging(&fewer), vec!["behavior".to_string()]);
        assert_eq!(fewer.diverging(&base), vec!["behavior".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate run component")]
    fn duplicate_component_names_panic() {
        breakdown(&[("config", &["a"]), ("config", &["b"])]);
    }

    #[test]
    fn ledger_round_trips_and_self_verifies() {
        let base = breakdown(&[("config", &["scale=0.01"]), ("behavior", &["r0"])]);
        let ledger = base.to_ledger();
        assert!(ledger.starts_with("fingerprint="));
        let parsed = RunComponents::parse_ledger(&ledger).expect("round trip");
        assert_eq!(parsed, base);
        assert_eq!(parsed.fingerprint(), base.fingerprint());

        // Comments and blank lines are tolerated.
        let commented = format!("# golden for the smoke arena\n\n{ledger}");
        assert_eq!(RunComponents::parse_ledger(&commented).unwrap(), base);
    }

    #[test]
    fn tampered_ledgers_are_rejected() {
        let base = breakdown(&[("config", &["scale=0.01"]), ("behavior", &["r0"])]);
        let ledger = base.to_ledger();

        // A hand-edited component no longer folds to the declared
        // fingerprint.
        let other = component("behavior", &["r1"]);
        let tampered = ledger.replace(
            &base.get("behavior").unwrap().to_string(),
            &other.to_string(),
        );
        assert!(RunComponents::parse_ledger(&tampered)
            .unwrap_err()
            .contains("self-inconsistent"));

        assert!(RunComponents::parse_ledger("config=deadbeef\n").is_err());
        assert!(RunComponents::parse_ledger("not a ledger line\n").is_err());
        assert!(RunComponents::parse_ledger("")
            .unwrap_err()
            .contains("missing fingerprint"));
    }

    #[test]
    fn display_forms_round_trip() {
        let c = breakdown(&[("config", &["x"])]);
        let fp = c.fingerprint();
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert!(text.starts_with(&fp.short()));
        assert_eq!(text.parse::<RunFingerprint>().unwrap(), fp);
        assert!("zz".parse::<RunFingerprint>().is_err());

        let h = c.get("config").unwrap();
        assert_eq!(h.to_string().parse::<ComponentHash>().unwrap(), h);
        assert_eq!(h.short().len(), 12);
    }

    #[test]
    fn diff_report_names_the_divergence() {
        let a = breakdown(&[("config", &["x"]), ("behavior", &["r0"])]);
        let b = breakdown(&[("config", &["x"]), ("behavior", &["r1"])]);
        let report = a.diff_report(&b, "this run", "golden");
        assert!(report.contains("behavior"), "{report}");
        assert!(!report.contains("config:"), "{report}");
        assert!(a.diff_report(&a.clone(), "l", "r").contains("identical"));
    }
}
