//! Simulated time.
//!
//! The paper's campaign ran three months, September–November 2023, and
//! Figure 9 plots per-day series. Simulated time is seconds since
//! 2023-09-01T00:00:00Z; nothing in the pipeline reads the wall clock, so a
//! full campaign replays identically from a seed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Unix timestamp of the study epoch, 2023-09-01T00:00:00Z.
pub const STUDY_EPOCH_UNIX: u64 = 1_693_526_400;

/// Length of the study window in days (Sep 1 – Nov 30, 2023).
pub const STUDY_DAYS: u32 = 91;

const SECS_PER_DAY: u64 = 86_400;

/// Days in each month of the study window (Sep, Oct, Nov 2023).
const MONTH_LENGTHS: [(u32, &str); 3] = [(30, "Sep"), (31, "Oct"), (30, "Nov")];

/// A point in simulated time: seconds since [`STUDY_EPOCH_UNIX`].
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Start of the study.
    pub const EPOCH: SimTime = SimTime(0);

    /// Build from a day index and a second-of-day offset.
    pub fn from_day(day: u32, second_of_day: u64) -> SimTime {
        SimTime(u64::from(day) * SECS_PER_DAY + second_of_day % SECS_PER_DAY)
    }

    /// Day index since the study epoch (0 = Sep 1, 2023).
    pub fn day(self) -> u32 {
        (self.0 / SECS_PER_DAY) as u32
    }

    /// Second within the day.
    pub fn second_of_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// Unix timestamp.
    pub fn unix(self) -> u64 {
        STUDY_EPOCH_UNIX + self.0
    }

    /// Nanoseconds elapsed since `earlier` (saturating at zero, like
    /// [`Sub`]). Simulated seconds are the clock's resolution; this is the
    /// bridge to nanosecond-denominated instruments (`fp-obs` histograms),
    /// so tests can feed them deterministic durations instead of wall time.
    pub fn nanos_since(self, earlier: SimTime) -> u64 {
        (self - earlier).saturating_mul(1_000_000_000)
    }

    /// Human-readable calendar date within the study window, e.g. `Sep 15`.
    /// Days past the window keep counting into a synthetic `Dec+`.
    pub fn calendar(self) -> String {
        let mut day = self.day();
        for (len, name) in MONTH_LENGTHS {
            if day < len {
                return format!("{name} {:02}", day + 1);
            }
            day -= len;
        }
        format!("Dec+{:02}", day + 1)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: u64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, other: SimTime) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.calendar(),
            self.second_of_day() / 3600,
            (self.second_of_day() % 3600) / 60,
            self.second_of_day() % 60
        )
    }
}

/// A monotonically advancing simulated clock. Generators own one and advance
/// it as they emit requests; it is plain state, not a global.
#[derive(Clone, Debug)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock starting at the study epoch.
    pub fn new() -> SimClock {
        SimClock {
            now: SimTime::EPOCH,
        }
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: SimTime) -> SimClock {
        SimClock { now: t }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by `secs` seconds and return the new time.
    pub fn advance(&mut self, secs: u64) -> SimTime {
        self.now = self.now + secs;
        self.now
    }

    /// Jump to `t` if it is in the future (clocks never go backwards).
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_arithmetic() {
        assert_eq!(SimTime::EPOCH.day(), 0);
        assert_eq!(SimTime::from_day(14, 3600).day(), 14);
        assert_eq!(SimTime::from_day(14, 3600).second_of_day(), 3600);
    }

    #[test]
    fn calendar_mapping() {
        assert_eq!(SimTime::from_day(0, 0).calendar(), "Sep 01");
        assert_eq!(SimTime::from_day(29, 0).calendar(), "Sep 30");
        assert_eq!(SimTime::from_day(30, 0).calendar(), "Oct 01");
        assert_eq!(SimTime::from_day(60, 0).calendar(), "Oct 31");
        assert_eq!(SimTime::from_day(61, 0).calendar(), "Nov 01");
        assert_eq!(SimTime::from_day(90, 0).calendar(), "Nov 30");
    }

    #[test]
    fn unix_anchor() {
        assert_eq!(SimTime::EPOCH.unix(), STUDY_EPOCH_UNIX);
        assert_eq!(SimTime::from_day(1, 0).unix(), STUDY_EPOCH_UNIX + 86_400);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance(100);
        let t1 = c.now();
        c.advance_to(SimTime(50));
        assert_eq!(c.now(), t1, "advance_to must not rewind");
        c.advance_to(SimTime(500));
        assert_eq!(c.now(), SimTime(500));
    }

    #[test]
    fn second_of_day_wraps() {
        let t = SimTime::from_day(2, 90_000);
        assert_eq!(t.second_of_day(), 90_000 % 86_400);
        assert_eq!(t.day(), 2);
    }

    #[test]
    fn nanos_since_saturates() {
        let a = SimTime(10);
        let b = SimTime(13);
        assert_eq!(b.nanos_since(a), 3_000_000_000);
        assert_eq!(a.nanos_since(b), 0);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_day(3, 3_725);
        assert_eq!(t.to_string(), "Sep 04 01:02:05");
    }
}
