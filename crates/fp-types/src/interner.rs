//! Global string interner.
//!
//! Attribute values in a recorded campaign repeat massively (there are a few
//! hundred distinct User-Agents across half a million requests), so values
//! are stored as [`Symbol`]s: indexes into a process-global table of leaked
//! `&'static str`. Leaking is deliberate — the interner lives for the whole
//! measurement run and the total distinct-string volume is a few megabytes.
//!
//! Interning is thread-safe (`parking_lot::RwLock`) so traffic generators can
//! run on `crossbeam` scoped threads.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;

/// A handle to an interned string. `Copy`, 4 bytes, equality is an integer
/// compare. Resolve back with [`Symbol::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Table {
    strings: Vec<&'static str>,
    index: HashMap<&'static str, u32>,
}

static TABLE: RwLock<Option<Table>> = RwLock::new(None);

/// The global interner. All [`Symbol`]s are created through here (usually via
/// the [`sym`] convenience function).
pub struct Interner;

impl Interner {
    /// Intern `s`, returning its stable [`Symbol`]. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        // Fast path: read lock only.
        {
            let guard = TABLE.read();
            if let Some(table) = guard.as_ref() {
                if let Some(&id) = table.index.get(s) {
                    return Symbol(id);
                }
            }
        }
        let mut guard = TABLE.write();
        let table = guard.get_or_insert_with(|| Table {
            strings: Vec::with_capacity(1024),
            index: HashMap::with_capacity(1024),
        });
        if let Some(&id) = table.index.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(table.strings.len()).expect("interner overflow");
        table.strings.push(leaked);
        table.index.insert(leaked, id);
        Symbol(id)
    }

    /// Number of distinct strings interned so far.
    pub fn len() -> usize {
        TABLE.read().as_ref().map_or(0, |t| t.strings.len())
    }
}

impl Symbol {
    /// Resolve the symbol back to its string.
    pub fn as_str(self) -> &'static str {
        let guard = TABLE.read();
        guard
            .as_ref()
            .and_then(|t| t.strings.get(self.0 as usize).copied())
            .expect("symbol from foreign interner")
    }

    /// The raw index (useful as a dense feature id in `fp-ml`).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Intern a string (shorthand for [`Interner::intern`]).
pub fn sym(s: &str) -> Symbol {
    Interner::intern(s)
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        sym(s)
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(sym(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = sym("hello-interner");
        let b = sym("hello-interner");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello-interner");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = sym("interner-a");
        let b = sym("interner-b");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "interner-a");
        assert_eq!(b.as_str(), "interner-b");
    }

    #[test]
    fn empty_string_is_internable() {
        let e = sym("");
        assert_eq!(e.as_str(), "");
        assert_eq!(e, sym(""));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..200)
                        .map(|i| sym(&format!("conc-{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = sym("serde-roundtrip");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"serde-roundtrip\"");
        let back: Symbol = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
