//! The [`Fingerprint`]: one recorded attribute vector.

use crate::attr::AttrId;
use crate::value::AttrValue;
use serde::de::{MapAccess, Visitor};
use serde::ser::SerializeMap;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A full browser fingerprint: a flat array of [`AttrValue`]s indexed by
/// [`AttrId`]. Equality/hash cover the whole vector, which is exactly the
/// paper's "unique fingerprints" notion (Figure 9 counts distinct
/// FingerprintJS fingerprints per day).
#[derive(Clone, PartialEq, Eq)]
pub struct Fingerprint {
    values: [AttrValue; AttrId::COUNT],
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint {
            values: [AttrValue::Missing; AttrId::COUNT],
        }
    }
}

impl Fingerprint {
    /// An empty fingerprint (all attributes [`AttrValue::Missing`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Read an attribute.
    #[inline]
    pub fn get(&self, id: AttrId) -> &AttrValue {
        &self.values[id.index()]
    }

    /// Set an attribute.
    #[inline]
    pub fn set(&mut self, id: AttrId, value: impl Into<AttrValue>) {
        self.values[id.index()] = value.into();
    }

    /// Builder-style [`Fingerprint::set`].
    #[inline]
    pub fn with(mut self, id: AttrId, value: impl Into<AttrValue>) -> Self {
        self.set(id, value);
        self
    }

    /// Remove an attribute (back to [`AttrValue::Missing`]).
    pub fn clear(&mut self, id: AttrId) {
        self.values[id.index()] = AttrValue::Missing;
    }

    /// Iterate `(attribute, value)` pairs, including missing ones.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrValue)> {
        AttrId::iter().map(move |id| (id, self.get(id)))
    }

    /// Iterate only the attributes that are present.
    pub fn present(&self) -> impl Iterator<Item = (AttrId, &AttrValue)> {
        self.iter().filter(|(_, v)| !v.is_missing())
    }

    /// Number of present attributes.
    pub fn len(&self) -> usize {
        self.present().count()
    }

    /// `true` when no attribute is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stable 64-bit digest of the whole fingerprint — the "FingerprintJS
    /// visitor id" equivalent used for unique-fingerprint counting.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Hash for Fingerprint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.values {
            v.hash(state);
        }
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (id, v) in self.present() {
            map.entry(&id.name(), &v.to_string());
        }
        map.finish()
    }
}

/// Deterministic FNV-1a hasher: `Fingerprint::digest` must be stable across
/// runs and platforms, so it cannot rely on `DefaultHasher`'s random keys.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

impl Serialize for Fingerprint {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (id, v) in self.present() {
            map.serialize_entry(id.name(), v)?;
        }
        map.end()
    }
}

impl<'de> Deserialize<'de> for Fingerprint {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct FpVisitor;
        impl<'de> Visitor<'de> for FpVisitor {
            type Value = Fingerprint;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map of attribute name to value")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut access: A) -> Result<Fingerprint, A::Error> {
                let mut fp = Fingerprint::new();
                while let Some((name, value)) = access.next_entry::<String, AttrValue>()? {
                    let id = AttrId::from_name(&name).ok_or_else(|| {
                        serde::de::Error::custom(format!("unknown attribute {name:?}"))
                    })?;
                    fp.set(id, value);
                }
                Ok(fp)
            }
        }
        deserializer.deserialize_map(FpVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fingerprint {
        Fingerprint::new()
            .with(AttrId::UaDevice, "iPhone")
            .with(AttrId::HardwareConcurrency, 6i64)
            .with(AttrId::ScreenResolution, (390u16, 844u16))
            .with(AttrId::Webdriver, false)
            .with(AttrId::MonospaceWidth, AttrValue::float(132.625))
    }

    #[test]
    fn get_set_roundtrip() {
        let fp = sample();
        assert_eq!(fp.get(AttrId::UaDevice).as_str(), Some("iPhone"));
        assert_eq!(fp.get(AttrId::HardwareConcurrency).as_int(), Some(6));
        assert_eq!(
            fp.get(AttrId::ScreenResolution).as_resolution(),
            Some((390, 844))
        );
        assert!(fp.get(AttrId::Plugins).is_missing());
        assert_eq!(fp.len(), 5);
    }

    #[test]
    fn clear_removes() {
        let mut fp = sample();
        fp.clear(AttrId::UaDevice);
        assert!(fp.get(AttrId::UaDevice).is_missing());
        assert_eq!(fp.len(), 4);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.digest(), b.digest());
        let c = sample().with(AttrId::HardwareConcurrency, 8i64);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn empty_fingerprint() {
        let fp = Fingerprint::new();
        assert!(fp.is_empty());
        assert_eq!(fp.present().count(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let fp = sample();
        let json = serde_json::to_string(&fp).unwrap();
        let back: Fingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fp);
    }

    #[test]
    fn serde_rejects_unknown_attribute() {
        let err = serde_json::from_str::<Fingerprint>("{\"bogus_attr\": 1}");
        assert!(err.is_err());
    }
}
