//! The TLS facet: what the connection layer observed about a request.
//!
//! Browser-layer attributes ([`crate::Fingerprint`]) are *claims* the
//! client script reports; the TLS ClientHello is *behaviour* the network
//! stack cannot help exhibiting. Carrying its JA3/JA4 digests on every
//! request record makes the handshake a first-class detection facet: the
//! cross-layer detector compares the stack that actually greeted the
//! server against the stack the User-Agent claims.
//!
//! This crate only defines the carrier; synthesising a ClientHello and
//! digesting it lives in `fp-tls` (which depends on this crate, not the
//! other way around).

use crate::interner::Symbol;
use serde::{Deserialize, Serialize};

/// The TLS-layer summary recorded for one request: JA3/JA4 digests of the
/// ClientHello that carried it, or nothing when the handshake was not
/// observed (e.g. a fronting proxy terminated TLS upstream).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct TlsFacet {
    /// JA3 digest (MD5 hex of the GREASE-stripped hello layout), when the
    /// handshake was observed.
    pub ja3: Option<Symbol>,
    /// JA4-style descriptor of the same hello.
    pub ja4: Option<Symbol>,
}

impl TlsFacet {
    /// A facet for a connection whose handshake was not observed.
    pub fn unobserved() -> TlsFacet {
        TlsFacet::default()
    }

    /// A facet carrying both digests of an observed ClientHello.
    pub fn observed(ja3: Symbol, ja4: Symbol) -> TlsFacet {
        TlsFacet {
            ja3: Some(ja3),
            ja4: Some(ja4),
        }
    }

    /// Was the handshake observed?
    pub fn is_observed(&self) -> bool {
        self.ja3.is_some()
    }

    /// The JA3 digest as a string, when observed.
    pub fn ja3_str(&self) -> Option<&'static str> {
        self.ja3.map(|s| s.as_str())
    }

    /// The JA4 descriptor as a string, when observed.
    pub fn ja4_str(&self) -> Option<&'static str> {
        self.ja4.map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym;

    #[test]
    fn unobserved_is_default_and_empty() {
        let facet = TlsFacet::unobserved();
        assert_eq!(facet, TlsFacet::default());
        assert!(!facet.is_observed());
        assert_eq!(facet.ja3_str(), None);
        assert_eq!(facet.ja4_str(), None);
    }

    #[test]
    fn observed_roundtrips_digests() {
        let facet = TlsFacet::observed(sym("aabbcc"), sym("t13d_x"));
        assert!(facet.is_observed());
        assert_eq!(facet.ja3_str(), Some("aabbcc"));
        assert_eq!(facet.ja4_str(), Some("t13d_x"));
    }

    #[test]
    fn serde_roundtrip() {
        for facet in [
            TlsFacet::unobserved(),
            TlsFacet::observed(sym("d1"), sym("d2")),
        ] {
            let json = serde_json::to_string(&facet).unwrap();
            let back: TlsFacet = serde_json::from_str(&json).unwrap();
            assert_eq!(back, facet);
        }
    }
}
