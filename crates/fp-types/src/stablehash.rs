//! Stable, process-independent content hashing for compiled artifacts.
//!
//! The defender versions its compiled rule packs by *content*: the hash
//! must be identical for the same logical rule set no matter which process
//! mined it, in what order the rules were discovered, or how many shards
//! the mining traffic was ingested through — and it must change whenever
//! flagging behaviour changes. That rules out everything keyed on
//! process-local state ([`crate::Symbol`] indices depend on interning
//! order) and everything order-sensitive (mining shard merges may visit
//! rules in any order). The recipe here follows the RUNFP-style
//! "changes iff observable behaviour changes" discipline:
//!
//! 1. each item is rendered to its canonical *display* form (the
//!    filter-list line, which is what the artifact's behaviour is defined
//!    by) and hashed with a seeded FNV-1a finished by a splitmix
//!    avalanche;
//! 2. per-item hashes are combined **commutatively** (wrapping sum and
//!    xor, plus the item count), so insertion order cannot matter;
//! 3. the accumulator state is mixed into a final 128-bit [`PackHash`].
//!
//! Adding or removing any single item perturbs both the sum and the xor
//! lanes, so behavioural changes produce a new hash with overwhelming
//! probability, while reordering produces exactly the same one.

use crate::mix::splitmix64;
use std::fmt;

/// Domain tag folded into every per-item hash: bump it if the canonical
/// item encoding ever changes meaning, so old and new artifacts can never
/// collide by accident.
const DOMAIN_TAG: &str = "FPPACK_V1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 128-bit content hash of a compiled artifact (e.g. a rule pack).
///
/// Equality means "behaviourally identical rule set"; ordering is
/// arbitrary but total (useful for ledger keys). Displays as 32 hex
/// digits; [`PackHash::short`] gives the 12-digit prefix the tables
/// print.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PackHash(u128);

impl PackHash {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// The 12-hex-digit prefix — what report columns print.
    pub fn short(self) -> String {
        format!("{:012x}", self.0 >> 80)
    }
}

impl fmt::Display for PackHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Seeded FNV-1a over `bytes`, finished with a splitmix avalanche so
/// short inputs still diffuse across all 64 bits. Stable across
/// processes and platforms (no pointer or allocation state involved).
pub fn stable_hash64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

fn tagged_seed(lane: u64) -> u64 {
    let mut h = FNV_OFFSET ^ lane;
    for &b in DOMAIN_TAG.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-independent accumulator of canonical item lines.
///
/// Feed every item of the artifact (in any order) through
/// [`ContentHasher::add_line`], then take the [`PackHash`] with
/// [`ContentHasher::finish`]. The combination is commutative, so two
/// producers that discover the same items in different orders agree.
#[derive(Clone, Copy, Debug, Default)]
pub struct ContentHasher {
    sum: u128,
    xor: u128,
    count: u64,
}

impl ContentHasher {
    /// A fresh accumulator.
    pub fn new() -> ContentHasher {
        ContentHasher::default()
    }

    /// Fold one item's canonical line into the accumulator.
    pub fn add_line(&mut self, line: &str) {
        let lo = stable_hash64(line.as_bytes(), tagged_seed(1));
        let hi = stable_hash64(line.as_bytes(), tagged_seed(2));
        let item = (u128::from(hi) << 64) | u128::from(lo);
        self.sum = self.sum.wrapping_add(item);
        self.xor ^= item;
        self.count += 1;
    }

    /// Number of items folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The final content hash of everything added.
    pub fn finish(&self) -> PackHash {
        let lo =
            splitmix64((self.sum as u64).wrapping_add(splitmix64((self.xor as u64) ^ self.count)));
        let hi = splitmix64(
            ((self.sum >> 64) as u64)
                .wrapping_add(splitmix64(((self.xor >> 64) as u64) ^ !self.count)),
        );
        PackHash((u128::from(hi) << 64) | u128::from(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(lines: &[&str]) -> PackHash {
        let mut h = ContentHasher::new();
        for l in lines {
            h.add_line(l);
        }
        h.finish()
    }

    #[test]
    fn order_independent() {
        let a = hash_of(&["alpha", "beta", "gamma"]);
        let b = hash_of(&["gamma", "alpha", "beta"]);
        assert_eq!(a, b);
    }

    #[test]
    fn single_item_changes_hash() {
        let base = hash_of(&["alpha", "beta"]);
        assert_ne!(base, hash_of(&["alpha"]));
        assert_ne!(base, hash_of(&["alpha", "beta", "gamma"]));
        assert_ne!(base, hash_of(&["alpha", "Beta"]));
    }

    #[test]
    fn empty_is_stable_and_distinct() {
        assert_eq!(hash_of(&[]), hash_of(&[]));
        assert_ne!(hash_of(&[]), hash_of(&["alpha"]));
        // The empty-string item is not the empty set.
        assert_ne!(hash_of(&[]), hash_of(&[""]));
    }

    #[test]
    fn duplicate_items_do_not_cancel() {
        // xor alone would cancel a repeated line; the sum+count lanes
        // must keep multiplicity visible.
        assert_ne!(hash_of(&["alpha", "alpha"]), hash_of(&[]));
        assert_ne!(hash_of(&["alpha", "alpha"]), hash_of(&["alpha"]));
    }

    #[test]
    fn display_forms() {
        let h = hash_of(&["alpha"]);
        let full = h.to_string();
        assert_eq!(full.len(), 32);
        assert!(full.starts_with(&h.short()));
        assert_eq!(h.short().len(), 12);
    }

    #[test]
    fn stable_hash64_is_seed_sensitive() {
        let a = stable_hash64(b"same-bytes", 1);
        let b = stable_hash64(b"same-bytes", 2);
        assert_ne!(a, b);
        assert_eq!(a, stable_hash64(b"same-bytes", 1));
    }
}
