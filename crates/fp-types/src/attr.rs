//! The attribute schema.
//!
//! One variant per fingerprint attribute the honey site records. The set is
//! the union of: the FingerprintJS attributes the paper names (Section 4.4),
//! the HTTP-layer attributes (User-Agent and what is inferred from it), the
//! grouping attributes of Table 7, and the cross-layer TLS extension
//! (Section 8.2 / `fp-tls`).
//!
//! `AttrId` is `#[repr(u8)]` and dense so a [`crate::Fingerprint`] can be a
//! flat array indexed by attribute.

use serde::{Deserialize, Serialize};

macro_rules! attr_ids {
    ($(($variant:ident, $name:literal, $doc:literal)),+ $(,)?) => {
        /// Identifier of a recorded fingerprint attribute.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
        #[repr(u8)]
        pub enum AttrId {
            $(#[doc = $doc] $variant),+
        }

        impl AttrId {
            /// Every attribute, in declaration order.
            pub const ALL: &'static [AttrId] = &[$(AttrId::$variant),+];

            /// Number of attributes in the schema.
            pub const COUNT: usize = Self::ALL.len();

            /// Stable, human-readable name (used in filter lists, reports
            /// and the dataset snapshot format).
            pub fn name(self) -> &'static str {
                match self {
                    $(AttrId::$variant => $name),+
                }
            }

            /// Inverse of [`AttrId::name`].
            pub fn from_name(name: &str) -> Option<AttrId> {
                match name {
                    $($name => Some(AttrId::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

attr_ids! {
    // ----- HTTP / User-Agent layer -------------------------------------
    (UserAgent,        "user_agent",         "Full `navigator.userAgent` / `User-Agent` header string."),
    (UaDevice,         "ua_device",          "Device model inferred from the User-Agent (e.g. `iPhone`, `Pixel 7`)."),
    (UaBrowser,        "ua_browser",         "Browser family inferred from the User-Agent (e.g. `Mobile Safari`)."),
    (UaOs,             "ua_os",              "Operating system inferred from the User-Agent (e.g. `iOS`, `Windows`)."),
    // ----- navigator.* --------------------------------------------------
    (Platform,         "platform",           "`navigator.platform` (e.g. `Win32`, `iPhone`, `Linux armv8l`)."),
    (Vendor,           "vendor",             "`navigator.vendor` (e.g. `Google Inc.`, `Apple Computer, Inc.`)."),
    (VendorFlavors,    "vendor_flavors",     "Browser flavour markers detected by FingerprintJS (e.g. `chrome`)."),
    (ProductSub,       "product_sub",        "`navigator.productSub` (`20030107` on Chromium/WebKit, `20100101` on Firefox)."),
    (Webdriver,        "webdriver",          "`navigator.webdriver` automation flag."),
    (Plugins,          "plugins",            "`navigator.plugins` entries (PDF viewer plugins on Chromium)."),
    (MimeTypes,        "mime_types",         "`navigator.mimeTypes` entries."),
    (HardwareConcurrency, "hardware_concurrency", "`navigator.hardwareConcurrency` — logical CPU cores."),
    (DeviceMemory,     "device_memory",      "`navigator.deviceMemory` in GiB (0.25–8, Chromium only)."),
    (OsCpu,            "os_cpu",             "`navigator.oscpu` (Firefox only)."),
    (CookieEnabled,    "cookie_enabled",     "`navigator.cookieEnabled`."),
    // ----- screen --------------------------------------------------------
    (ScreenResolution, "screen_resolution",  "`screen.width` x `screen.height` (CSS pixels)."),
    (AvailResolution,  "avail_resolution",   "`screen.availWidth` x `screen.availHeight`."),
    (ColorDepth,       "color_depth",        "`screen.colorDepth` in bits."),
    (ColorGamut,       "color_gamut",        "Widest supported CSS color gamut (`srgb`, `p3`, `rec2020`)."),
    (Hdr,              "hdr",                "CSS `dynamic-range: high` media query."),
    (Contrast,         "contrast",           "CSS `prefers-contrast` (-1 less, 0 none, 1 more, 10 forced)."),
    (ForcedColors,     "forced_colors",      "CSS `forced-colors: active` (Windows high-contrast mode)."),
    (ReducedMotion,    "reduced_motion",     "CSS `prefers-reduced-motion`."),
    (ScreenFrame,      "screen_frame",       "Max border between screen and available area (taskbar/dock size)."),
    (TouchSupport,     "touch_support",      "Touch event support summary (`none`, `touchEvent/touchStart`, ...)."),
    (MaxTouchPoints,   "max_touch_points",   "`navigator.maxTouchPoints`."),
    // ----- locale / location ---------------------------------------------
    (Timezone,         "timezone",           "IANA timezone from `Intl.DateTimeFormat` (e.g. `Europe/Paris`)."),
    (TimezoneOffset,   "timezone_offset",    "`Date.getTimezoneOffset()` in minutes (UTC - local)."),
    (Language,         "language",           "`navigator.language`."),
    (Languages,        "languages",          "`navigator.languages` list."),
    (NavGeoRegion,     "nav_geo_region",     "Region reported by `navigator.geolocation` (coarse, simulated consent)."),
    // ----- rendering / fonts ---------------------------------------------
    (Fonts,            "fonts",              "Installed fonts detected via width probing."),
    (MonospaceWidth,   "monospace_width",    "Measured width of the FingerprintJS monospace probe string (px)."),
    (Canvas,           "canvas",             "Canvas rendering digest."),
    (Audio,            "audio",              "OfflineAudioContext fingerprint value."),
    (WebGlVendor,      "webgl_vendor",       "`WEBGL_debug_renderer_info` unmasked vendor."),
    (WebGlRenderer,    "webgl_renderer",     "`WEBGL_debug_renderer_info` unmasked renderer."),
    // ----- storage --------------------------------------------------------
    (SessionStorage,   "session_storage",    "`window.sessionStorage` availability."),
    (LocalStorage,     "local_storage",      "`window.localStorage` availability."),
    (IndexedDb,        "indexed_db",         "`window.indexedDB` availability."),
    // ----- HTTP header layer ---------------------------------------------
    (AcceptLanguage,   "accept_language",    "`Accept-Language` request header."),
    (SecChUa,          "sec_ch_ua",          "`Sec-CH-UA` client-hint header (Chromium engines only)."),
    (SecChUaPlatform,  "sec_ch_ua_platform", "`Sec-CH-UA-Platform` client-hint header."),
    (SecChUaMobile,    "sec_ch_ua_mobile",   "`Sec-CH-UA-Mobile` client-hint header (`?0`/`?1`)."),
    // ----- cross-layer TLS extension (Section 8.2) ------------------------
    (Ja3,              "ja3",                "JA3 digest of the TLS ClientHello that carried the request."),
    (Ja4,              "ja4",                "JA4-style ClientHello descriptor."),
}

impl AttrId {
    /// Iterate all attributes.
    pub fn iter() -> impl Iterator<Item = AttrId> {
        Self::ALL.iter().copied()
    }

    /// Dense index for array storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`AttrId::index`]; panics if out of range.
    #[inline]
    pub fn from_index(i: usize) -> AttrId {
        Self::ALL[i]
    }

    /// Attributes that cannot change for a physical device across requests
    /// (the paper's temporal-inconsistency anchors, Section 7.2: "immutable
    /// device attributes (e.g., number of CPU cores, device memory)").
    pub fn immutable_for_device(self) -> bool {
        matches!(
            self,
            AttrId::HardwareConcurrency
                | AttrId::DeviceMemory
                | AttrId::Platform
                | AttrId::MaxTouchPoints
                | AttrId::ColorDepth
                | AttrId::ScreenResolution
                | AttrId::WebGlVendor
                | AttrId::WebGlRenderer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut seen = HashSet::new();
        for id in AttrId::iter() {
            assert!(seen.insert(id.name()), "duplicate name {}", id.name());
            assert_eq!(AttrId::from_name(id.name()), Some(id));
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert_eq!(AttrId::from_name("definitely_not_an_attribute"), None);
    }

    #[test]
    fn index_roundtrip() {
        for (i, id) in AttrId::iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(AttrId::from_index(i), id);
        }
    }

    #[test]
    fn count_matches_all() {
        assert_eq!(AttrId::COUNT, AttrId::ALL.len());
        // Read through a binding so the guard stays a runtime check
        // (clippy: assertions_on_constants).
        let count = AttrId::COUNT;
        assert!(count >= 40, "schema should stay broad");
    }

    #[test]
    fn immutable_set_contains_paper_examples() {
        assert!(AttrId::HardwareConcurrency.immutable_for_device());
        assert!(AttrId::DeviceMemory.immutable_for_device());
        assert!(AttrId::Platform.immutable_for_device());
        assert!(
            !AttrId::Timezone.immutable_for_device(),
            "travel changes timezones"
        );
        assert!(
            !AttrId::UserAgent.immutable_for_device(),
            "browser updates change the UA"
        );
    }
}
