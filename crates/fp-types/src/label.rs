//! Ground-truth provenance labels.
//!
//! The honey-site architecture exists to make these labels reliable: each
//! URL token is shared with exactly one traffic source, so every admitted
//! request carries its true origin (Section 4.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a purchased bot service, `S1`..=`S20` in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct ServiceId(pub u8);

impl ServiceId {
    /// Number of bot services in the campaign (Table 1).
    pub const COUNT: u8 = 20;

    /// All service ids, `S1`..`S20`.
    pub fn all() -> impl Iterator<Item = ServiceId> {
        (1..=Self::COUNT).map(ServiceId)
    }

    /// Paper-style name (`S7`).
    pub fn name(self) -> String {
        format!("S{}", self.0)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Privacy-enhancing technologies evaluated in Section 7.5.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PrivacyTech {
    /// Brave browser: farbles audio/canvas/plugins/deviceMemory/
    /// hardwareConcurrency/screenResolution, keeps cookies.
    Brave,
    /// Tor Browser: uniform fingerprint, UTC timezone, exit-node IPs.
    Tor,
    /// Safari with Intelligent Tracking Prevention (blocks trackers only).
    Safari,
    /// uBlock Origin on Chrome (blocks requests only).
    UblockOrigin,
    /// AdBlock Plus on Chrome (blocks requests only).
    AdblockPlus,
}

impl PrivacyTech {
    /// All evaluated technologies.
    pub const ALL: [PrivacyTech; 5] = [
        PrivacyTech::Brave,
        PrivacyTech::Tor,
        PrivacyTech::Safari,
        PrivacyTech::UblockOrigin,
        PrivacyTech::AdblockPlus,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PrivacyTech::Brave => "Brave",
            PrivacyTech::Tor => "Tor",
            PrivacyTech::Safari => "Safari",
            PrivacyTech::UblockOrigin => "uBlock Origin",
            PrivacyTech::AdblockPlus => "AdBlock Plus",
        }
    }

    /// Whether the tool alters fingerprint attributes (vs. only blocking
    /// tracker requests). Only the altering ones can trigger rules.
    pub fn alters_fingerprints(self) -> bool {
        matches!(self, PrivacyTech::Brave | PrivacyTech::Tor)
    }
}

/// Who actually generated a request — the honey site's ground truth.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TrafficSource {
    /// One of the 20 purchased bot services.
    Bot(ServiceId),
    /// Real-user traffic from the university URL (Section 7.4).
    RealUser,
    /// The privacy-technology experiment (Section 7.5).
    Privacy(PrivacyTech),
    /// An AI browsing agent: a real browser driven by an automation stack
    /// (genuine Chromium TLS, automation-shaped behaviour).
    AiAgent,
    /// An evasive bot whose JS fingerprint is patched to perfection but
    /// whose TLS stack lags behind the lie (non-browser ClientHello under
    /// a browser User-Agent).
    TlsLaggard,
}

impl TrafficSource {
    /// Ground truth: is this request automation? True for the purchased
    /// services and for the agent cohorts; false for real users and the
    /// privacy-tool experiment.
    pub fn is_bot(self) -> bool {
        matches!(
            self,
            TrafficSource::Bot(_) | TrafficSource::AiAgent | TrafficSource::TlsLaggard
        )
    }

    /// The service id, when a bot.
    pub fn service(self) -> Option<ServiceId> {
        match self {
            TrafficSource::Bot(s) => Some(s),
            _ => None,
        }
    }

    /// The evaluation cohort this source belongs to.
    pub fn cohort(self) -> Cohort {
        match self {
            TrafficSource::Bot(_) => Cohort::BotService,
            TrafficSource::RealUser => Cohort::RealUser,
            TrafficSource::Privacy(_) => Cohort::Privacy,
            TrafficSource::AiAgent => Cohort::AiAgent,
            TrafficSource::TlsLaggard => Cohort::TlsLaggard,
        }
    }
}

impl fmt::Display for TrafficSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficSource::Bot(s) => write!(f, "bot:{s}"),
            TrafficSource::RealUser => f.write_str("real-user"),
            TrafficSource::Privacy(p) => write!(f, "privacy:{}", p.name()),
            TrafficSource::AiAgent => f.write_str("ai-agent"),
            TrafficSource::TlsLaggard => f.write_str("tls-laggard"),
        }
    }
}

/// Evaluation cohorts: traffic classes whose per-detector hit rates are
/// reported separately (real users vs. the paper's purchased services vs.
/// the two agent cohorts of the cross-layer extension).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Cohort {
    /// Ground-truth human traffic (Section 7.4's university URL).
    RealUser,
    /// The 20 purchased bot services (Table 1).
    BotService,
    /// AI browsing agents: real-browser TLS, automation-shaped behaviour.
    AiAgent,
    /// Evasive bots with patched JS fingerprints but a lagging TLS stack.
    TlsLaggard,
    /// The §7.5 privacy-technology experiment (human, altered attributes).
    Privacy,
}

impl Cohort {
    /// Every cohort, in report order.
    pub const ALL: [Cohort; 5] = [
        Cohort::RealUser,
        Cohort::BotService,
        Cohort::AiAgent,
        Cohort::TlsLaggard,
        Cohort::Privacy,
    ];

    /// This cohort's position in [`Cohort::ALL`] — the index every
    /// per-cohort report array uses.
    pub fn index(self) -> usize {
        Cohort::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every cohort is in ALL")
    }

    /// Human-readable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Cohort::RealUser => "real-user",
            Cohort::BotService => "bot-service",
            Cohort::AiAgent => "ai-agent",
            Cohort::TlsLaggard => "tls-laggard",
            Cohort::Privacy => "privacy-tool",
        }
    }

    /// Is a flag on this cohort a true positive (automation) rather than a
    /// false positive (human)?
    pub fn is_automation(self) -> bool {
        matches!(
            self,
            Cohort::BotService | Cohort::AiAgent | Cohort::TlsLaggard
        )
    }
}

impl fmt::Display for Cohort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_services() {
        let all: Vec<_> = ServiceId::all().collect();
        assert_eq!(all.len(), 20);
        assert_eq!(all[0].name(), "S1");
        assert_eq!(all[19].name(), "S20");
    }

    #[test]
    fn bot_label() {
        assert!(TrafficSource::Bot(ServiceId(3)).is_bot());
        assert!(!TrafficSource::RealUser.is_bot());
        assert!(!TrafficSource::Privacy(PrivacyTech::Brave).is_bot());
        assert!(TrafficSource::AiAgent.is_bot(), "agents are automation");
        assert!(TrafficSource::TlsLaggard.is_bot());
        assert_eq!(
            TrafficSource::Bot(ServiceId(3)).service(),
            Some(ServiceId(3))
        );
        assert_eq!(TrafficSource::RealUser.service(), None);
        assert_eq!(TrafficSource::AiAgent.service(), None);
    }

    #[test]
    fn cohort_classification() {
        assert_eq!(TrafficSource::RealUser.cohort(), Cohort::RealUser);
        assert_eq!(
            TrafficSource::Bot(ServiceId(1)).cohort(),
            Cohort::BotService
        );
        assert_eq!(TrafficSource::AiAgent.cohort(), Cohort::AiAgent);
        assert_eq!(TrafficSource::TlsLaggard.cohort(), Cohort::TlsLaggard);
        assert_eq!(
            TrafficSource::Privacy(PrivacyTech::Tor).cohort(),
            Cohort::Privacy
        );
        for (i, cohort) in Cohort::ALL.iter().enumerate() {
            assert_eq!(
                cohort.is_automation(),
                matches!(
                    cohort,
                    Cohort::BotService | Cohort::AiAgent | Cohort::TlsLaggard
                ),
                "{cohort}"
            );
            assert_eq!(cohort.index(), i);
        }
    }

    #[test]
    fn privacy_alteration_flags() {
        assert!(PrivacyTech::Brave.alters_fingerprints());
        assert!(PrivacyTech::Tor.alters_fingerprints());
        assert!(!PrivacyTech::Safari.alters_fingerprints());
        assert!(!PrivacyTech::UblockOrigin.alters_fingerprints());
        assert!(!PrivacyTech::AdblockPlus.alters_fingerprints());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TrafficSource::Bot(ServiceId(14)).to_string(), "bot:S14");
        assert_eq!(TrafficSource::RealUser.to_string(), "real-user");
        assert_eq!(
            TrafficSource::Privacy(PrivacyTech::Tor).to_string(),
            "privacy:Tor"
        );
    }
}
