//! Ground-truth provenance labels.
//!
//! The honey-site architecture exists to make these labels reliable: each
//! URL token is shared with exactly one traffic source, so every admitted
//! request carries its true origin (Section 4.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a purchased bot service, `S1`..=`S20` in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct ServiceId(pub u8);

impl ServiceId {
    /// Number of bot services in the campaign (Table 1).
    pub const COUNT: u8 = 20;

    /// All service ids, `S1`..`S20`.
    pub fn all() -> impl Iterator<Item = ServiceId> {
        (1..=Self::COUNT).map(ServiceId)
    }

    /// Paper-style name (`S7`).
    pub fn name(self) -> String {
        format!("S{}", self.0)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Privacy-enhancing technologies evaluated in Section 7.5.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PrivacyTech {
    /// Brave browser: farbles audio/canvas/plugins/deviceMemory/
    /// hardwareConcurrency/screenResolution, keeps cookies.
    Brave,
    /// Tor Browser: uniform fingerprint, UTC timezone, exit-node IPs.
    Tor,
    /// Safari with Intelligent Tracking Prevention (blocks trackers only).
    Safari,
    /// uBlock Origin on Chrome (blocks requests only).
    UblockOrigin,
    /// AdBlock Plus on Chrome (blocks requests only).
    AdblockPlus,
}

impl PrivacyTech {
    /// All evaluated technologies.
    pub const ALL: [PrivacyTech; 5] = [
        PrivacyTech::Brave,
        PrivacyTech::Tor,
        PrivacyTech::Safari,
        PrivacyTech::UblockOrigin,
        PrivacyTech::AdblockPlus,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PrivacyTech::Brave => "Brave",
            PrivacyTech::Tor => "Tor",
            PrivacyTech::Safari => "Safari",
            PrivacyTech::UblockOrigin => "uBlock Origin",
            PrivacyTech::AdblockPlus => "AdBlock Plus",
        }
    }

    /// Whether the tool alters fingerprint attributes (vs. only blocking
    /// tracker requests). Only the altering ones can trigger rules.
    pub fn alters_fingerprints(self) -> bool {
        matches!(self, PrivacyTech::Brave | PrivacyTech::Tor)
    }
}

/// Who actually generated a request — the honey site's ground truth.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TrafficSource {
    /// One of the 20 purchased bot services.
    Bot(ServiceId),
    /// Real-user traffic from the university URL (Section 7.4).
    RealUser,
    /// The privacy-technology experiment (Section 7.5).
    Privacy(PrivacyTech),
}

impl TrafficSource {
    /// Ground truth: is this request from a bot?
    pub fn is_bot(self) -> bool {
        matches!(self, TrafficSource::Bot(_))
    }

    /// The service id, when a bot.
    pub fn service(self) -> Option<ServiceId> {
        match self {
            TrafficSource::Bot(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TrafficSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficSource::Bot(s) => write!(f, "bot:{s}"),
            TrafficSource::RealUser => f.write_str("real-user"),
            TrafficSource::Privacy(p) => write!(f, "privacy:{}", p.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_services() {
        let all: Vec<_> = ServiceId::all().collect();
        assert_eq!(all.len(), 20);
        assert_eq!(all[0].name(), "S1");
        assert_eq!(all[19].name(), "S20");
    }

    #[test]
    fn bot_label() {
        assert!(TrafficSource::Bot(ServiceId(3)).is_bot());
        assert!(!TrafficSource::RealUser.is_bot());
        assert!(!TrafficSource::Privacy(PrivacyTech::Brave).is_bot());
        assert_eq!(
            TrafficSource::Bot(ServiceId(3)).service(),
            Some(ServiceId(3))
        );
        assert_eq!(TrafficSource::RealUser.service(), None);
    }

    #[test]
    fn privacy_alteration_flags() {
        assert!(PrivacyTech::Brave.alters_fingerprints());
        assert!(PrivacyTech::Tor.alters_fingerprints());
        assert!(!PrivacyTech::Safari.alters_fingerprints());
        assert!(!PrivacyTech::UblockOrigin.alters_fingerprints());
        assert!(!PrivacyTech::AdblockPlus.alters_fingerprints());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TrafficSource::Bot(ServiceId(14)).to_string(), "bot:S14");
        assert_eq!(TrafficSource::RealUser.to_string(), "real-user");
        assert_eq!(
            TrafficSource::Privacy(PrivacyTech::Tor).to_string(),
            "privacy:Tor"
        );
    }
}
