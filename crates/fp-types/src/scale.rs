//! Campaign scaling.
//!
//! The full campaign is 507,080 bot requests (Table 1). Bench binaries run
//! full scale; unit/integration tests run a deterministic fraction so the
//! whole suite stays fast. Scaling rounds *up* so no service ever drops to
//! zero requests (S20 has only 382 at full scale).

use serde::{Deserialize, Serialize};

/// A fraction of the paper's request volumes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scale(f64);

impl Scale {
    /// The paper's volumes, unchanged.
    pub const FULL: Scale = Scale(1.0);

    /// A fraction in `(0, 1]`.
    pub fn ratio(r: f64) -> Scale {
        assert!(r > 0.0 && r <= 1.0, "scale must be in (0, 1], got {r}");
        Scale(r)
    }

    /// Default test scale: 5% (~25k bot requests).
    pub fn test_default() -> Scale {
        Scale(0.05)
    }

    /// Apply to a request count (rounds up, never below 1).
    pub fn apply(self, count: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        (((count as f64) * self.0).ceil() as u64).max(1)
    }

    /// The raw fraction.
    pub fn fraction(self) -> f64 {
        self.0
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::FULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_identity() {
        assert_eq!(Scale::FULL.apply(121_500), 121_500);
        assert_eq!(Scale::FULL.apply(382), 382);
    }

    #[test]
    fn fraction_rounds_up_and_floors_at_one() {
        let s = Scale::ratio(0.05);
        assert_eq!(s.apply(382), 20);
        assert_eq!(s.apply(1), 1);
        assert_eq!(s.apply(0), 0);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_rejected() {
        let _ = Scale::ratio(0.0);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn oversized_scale_rejected() {
        let _ = Scale::ratio(1.5);
    }
}
