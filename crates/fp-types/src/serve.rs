//! Configuration for the continuous serving layer.
//!
//! The batch ingest paths (`ingest_all`, `ingest_stream`) process a
//! finished request list inside one call; the serving layer
//! (`fp-honeysite`'s `serve` module) instead keeps shard workers running
//! behind bounded queues so requests are admitted one at a time, the way
//! a deployed honey site sees them. This module holds only the *shape*
//! of that service — queue capacities and the overflow contract — so
//! `fp-arena` and `fp-bench` can describe a serving topology without
//! depending on the implementation crate.

use crate::mix::shard_for;

/// What `submit` does when a bounded queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the submitting caller until the queue drains. Nothing is
    /// dropped; admission-to-verdict latency absorbs the wait. This is
    /// the arena/benchmark default — closed-loop rounds need every
    /// admitted request to reach a verdict.
    Block,
    /// Shed the request: `submit` returns immediately with a shed
    /// outcome and bumps the `serve_requests_shed` counter. This is the
    /// flash-crowd posture — bounded latency, explicit loss.
    Shed,
}

/// Queue topology and backpressure contract for one serving session.
///
/// All fields are plain `Copy` data so configs embed in `ArenaConfig`
/// (which stays `Copy`) and in bench drivers without ceremony.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Detector shard count per route (IP-scoped and cookie-scoped
    /// detectors each get this many workers). Routing uses the same
    /// [`shard_for`] keys as the batch pipeline, so flag identity with
    /// the batch path holds at any shard count.
    pub shards: usize,
    /// Capacity of the ingress queue between the submitting caller and
    /// the enricher thread. This is the queue the overflow policy
    /// applies to: the sole intake gate, sized for the burst the
    /// service will absorb before backpressure.
    pub ingress_capacity: usize,
    /// Capacity of each per-shard work queue and of the collector
    /// queue. Shard queues only ever block the enricher (never another
    /// shard worker), keeping workers independent.
    pub shard_capacity: usize,
    /// What `submit` does when the ingress queue is full.
    pub overflow: OverflowPolicy,
    /// Start with the pipeline paused: queued requests accumulate in
    /// the ingress queue until `resume()` releases the enricher. Lets
    /// tests and the burst bench driver fill the queue deterministically
    /// (submit exactly `ingress_capacity`, watch the rest shed) instead
    /// of racing the drain.
    pub start_paused: bool,
}

impl ServeConfig {
    /// A serving config with the given shard count and the defaults the
    /// arena uses: generous queues (1024-deep ingress, 256-deep shard
    /// queues), blocking overflow, not paused.
    pub fn with_shards(shards: usize) -> ServeConfig {
        ServeConfig {
            shards: shards.max(1),
            ingress_capacity: 1024,
            shard_capacity: 256,
            overflow: OverflowPolicy::Block,
            start_paused: false,
        }
    }

    /// The shard a request's IP-scoped work routes to — same key and
    /// function as the batch pipeline ([`shard_for`] over the hashed
    /// source IP), which is what keeps batch↔serve flags identical.
    pub fn ip_shard(&self, ip_hash: u64) -> usize {
        shard_for(ip_hash, self.shards)
    }

    /// The shard a request's cookie-scoped work routes to.
    pub fn cookie_shard(&self, cookie: u64) -> usize {
        shard_for(cookie, self.shards)
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::with_shards(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_shards_clamps_zero() {
        assert_eq!(ServeConfig::with_shards(0).shards, 1);
    }

    #[test]
    fn shard_routing_matches_shard_for() {
        let cfg = ServeConfig::with_shards(8);
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(cfg.ip_shard(k), shard_for(k, 8));
            assert_eq!(cfg.cookie_shard(k), shard_for(k, 8));
        }
    }
}
