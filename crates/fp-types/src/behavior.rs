//! The behavioural facet: session-level interaction cadence.
//!
//! Browser-layer attributes ([`crate::Fingerprint`]) are *claims*; the TLS
//! ClientHello ([`crate::TlsFacet`]) is network-layer behaviour. This module
//! promotes a third axis to the same first-class standing: *session-level
//! behaviour* — how a client paces its page transitions, how regularly its
//! events arrive, how its navigation fans out. FP-Agent (PAPERS.md) shows
//! AI browsing agents are separable from humans on exactly these signals
//! even when their fingerprint and handshake are flawless: a harness drives
//! Chromium at machine-regular cadence, while real users ("Beyond the
//! Crawl") pause, read, and wander.
//!
//! Like the TLS facet, this crate only defines the carrier plus the shared
//! decision constants; synthesising coherent facets lives in `fp-botnet`
//! and the in-chain detector lives in `fp-behavior` (both depend on this
//! crate, not the other way around). The per-request pointer-credibility
//! scoring that DataDome's behavioural model applies also lives here, so
//! the commercial simulator (`fp-antibot`) and the session detector share
//! one sourced copy of the thresholds instead of two drifting ones.

use crate::request::{BehaviorTrace, PointerStats};
use serde::{Deserialize, Serialize};

/// The session-level behavioural summary recorded for one request: how the
/// client paced the visits that led up to it. `unobserved` (the default)
/// means the edge collected no session telemetry for this client — the
/// degenerate case every pre-facet cohort occupies.
///
/// Quantities are session-scoped, not request-scoped: every request of one
/// browsing session carries the same facet, the way every request of one
/// connection carries the same ClientHello digests.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct BehaviorFacet {
    /// Was session telemetry collected at all? `false` leaves every other
    /// field meaningless (and zero).
    pub observed: bool,
    /// Median inter-event gap (page transition to page transition), ms.
    pub gap_q50_ms: u32,
    /// 90th-percentile inter-event gap, ms — the tail a human's reading
    /// pauses produce and a harness's fixed pacing does not.
    pub gap_q90_ms: u32,
    /// Coefficient of variation of the inter-event gaps. Humans are bursty
    /// (≥ ~0.4); automation harnesses tick (≤ ~0.1). The single strongest
    /// cadence signal, per FP-Agent.
    pub gap_cv: f32,
    /// Pages fetched in the session so far (navigation volume).
    pub pages: u16,
    /// Distinct page-transition grams observed — navigation *shape*.
    /// Agents walk task-shaped paths (few distinct transitions); users
    /// branch and backtrack.
    pub unique_transitions: u16,
    /// Median dwell time on a page before the next transition, ms.
    pub dwell_q50_ms: u32,
}

impl BehaviorFacet {
    /// A facet for a session the edge collected no telemetry about.
    pub fn unobserved() -> BehaviorFacet {
        BehaviorFacet::default()
    }

    /// A facet carrying an observed session summary.
    pub fn observed(
        gap_q50_ms: u32,
        gap_q90_ms: u32,
        gap_cv: f32,
        pages: u16,
        unique_transitions: u16,
        dwell_q50_ms: u32,
    ) -> BehaviorFacet {
        BehaviorFacet {
            observed: true,
            gap_q50_ms,
            gap_q90_ms,
            gap_cv,
            pages,
            unique_transitions,
            dwell_q50_ms,
        }
    }

    /// Was session telemetry collected?
    pub fn is_observed(&self) -> bool {
        self.observed
    }
}

/// The decision threshold DataDome applies to [`naturalness`].
pub const NATURAL_THRESHOLD: f32 = 0.6;

/// Default machine-cadence cutoff: a session whose inter-event gap CV sits
/// below this is pacing like a harness. Real-user sessions are generated
/// (and measured, per "Beyond the Crawl") well above 0.35; stock agent
/// harnesses sit below 0.12.
pub const CADENCE_CV_FLOOR: f32 = 0.18;

/// Hard ceiling a re-fitted cadence cutoff may never exceed: the p5 of the
/// human envelope with margin. Re-fitting from a poisoned or thin trusted
/// sample can tighten the cutoff toward humanised agents, but never into
/// territory where genuine users (CV ≥ ~0.38) get flagged.
pub const CADENCE_CV_CEILING: f32 = 0.32;

/// Machine-cadence observations required on one cookie before the session
/// detector flags — the behavioural analogue of the temporal detectors'
/// warm-up, so a single oddly-paced visit never convicts a user.
pub const MIN_CADENCE_OBSERVATIONS: u32 = 3;

/// The tunable thresholds of the session behaviour detector — one shared,
/// hot-swappable artifact so a re-fitting defender publishes new cutoffs
/// to a running chain without a barrier (the rule-pack discipline).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct BehaviorThresholds {
    /// Sessions with inter-event gap CV below this count as machine-paced.
    pub cadence_cv_floor: f32,
    /// Machine-paced observations per cookie before flagging.
    pub min_observations: u32,
}

impl Default for BehaviorThresholds {
    fn default() -> BehaviorThresholds {
        BehaviorThresholds {
            cadence_cv_floor: CADENCE_CV_FLOOR,
            min_observations: MIN_CADENCE_OBSERVATIONS,
        }
    }
}

impl BehaviorThresholds {
    /// Is this session facet pacing like an automation harness?
    /// Unobserved facets never are — no telemetry, no conviction.
    pub fn machine_cadence(&self, facet: &BehaviorFacet) -> bool {
        facet.is_observed() && facet.gap_cv < self.cadence_cv_floor
    }
}

/// Naturalness score in `[0, 1]` of a pointer trajectory.
///
/// Three independent signatures of a human hand, each scored 0–1 and
/// averaged:
/// * speed variance — muscles accelerate and decelerate; replayed events
///   arrive at machine-regular intervals;
/// * curvature — real strokes arc and tremble; interpolated lines do not;
/// * temporal texture — humans pause to read; scripts do not idle.
pub fn naturalness(stats: &PointerStats) -> f32 {
    if stats.samples < 5 {
        return 0.0;
    }
    let speed_score = ramp(stats.speed_cv, 0.08, 0.30);
    let curve_score = ramp(stats.curvature, 0.01, 0.05);
    // Either pauses or a humanly long interaction counts as texture.
    let texture_score = ramp(stats.pause_fraction, 0.01, 0.08)
        .max(ramp(stats.duration_ms as f32, 400.0, 1200.0) * 0.8);
    (speed_score + curve_score + texture_score) / 3.0
}

/// 0 below `lo`, 1 above `hi`, linear in between.
fn ramp(x: f32, lo: f32, hi: f32) -> f32 {
    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
}

/// Convenience: does a behaviour trace contain credible pointer input?
pub fn credible_pointer(trace: &BehaviorTrace) -> bool {
    trace.mouse_events >= 3
        && trace
            .pointer
            .map(|s| naturalness(&s) >= NATURAL_THRESHOLD)
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym;

    #[test]
    fn unobserved_is_default_and_empty() {
        let facet = BehaviorFacet::unobserved();
        assert_eq!(facet, BehaviorFacet::default());
        assert!(!facet.is_observed());
        assert_eq!(facet.gap_cv, 0.0);
    }

    #[test]
    fn observed_carries_the_summary() {
        let facet = BehaviorFacet::observed(4_000, 5_000, 0.05, 6, 2, 3_500);
        assert!(facet.is_observed());
        assert_eq!(facet.gap_q50_ms, 4_000);
        assert_eq!(facet.pages, 6);
        assert_eq!(facet.unique_transitions, 2);
    }

    #[test]
    fn serde_roundtrip() {
        for facet in [
            BehaviorFacet::unobserved(),
            BehaviorFacet::observed(900, 4_200, 0.62, 4, 3, 800),
        ] {
            let json = serde_json::to_string(&facet).unwrap();
            let back: BehaviorFacet = serde_json::from_str(&json).unwrap();
            assert_eq!(back, facet);
        }
        // Symbols elsewhere in the record keep interning across the trip.
        let _ = sym("anchor");
    }

    #[test]
    fn default_thresholds_separate_the_envelopes() {
        let th = BehaviorThresholds::default();
        let harness = BehaviorFacet::observed(4_000, 4_400, 0.05, 6, 1, 3_900);
        let human = BehaviorFacet::observed(9_000, 40_000, 0.8, 4, 3, 8_000);
        assert!(th.machine_cadence(&harness));
        assert!(!th.machine_cadence(&human));
        assert!(
            !th.machine_cadence(&BehaviorFacet::unobserved()),
            "no telemetry, no conviction"
        );
    }

    #[test]
    fn refit_ceiling_stays_under_the_human_envelope() {
        // The generated human envelope starts at CV ≈ 0.38; the ceiling a
        // re-fit may reach must leave margin below it.
        const {
            assert!(CADENCE_CV_CEILING < 0.38);
            assert!(CADENCE_CV_FLOOR < CADENCE_CV_CEILING);
        }
    }

    fn human_stats() -> PointerStats {
        PointerStats {
            samples: 40,
            duration_ms: 2200,
            speed_cv: 0.55,
            curvature: 0.12,
            pause_fraction: 0.25,
        }
    }

    fn replay_stats() -> PointerStats {
        PointerStats {
            samples: 30,
            duration_ms: 300,
            speed_cv: 0.01,
            curvature: 0.0,
            pause_fraction: 0.0,
        }
    }

    #[test]
    fn human_shape_scores_high() {
        assert!(naturalness(&human_stats()) > 0.9);
    }

    #[test]
    fn replay_shape_scores_low() {
        assert!(naturalness(&replay_stats()) < 0.1);
    }

    #[test]
    fn too_few_samples_score_zero() {
        let s = PointerStats {
            samples: 3,
            ..human_stats()
        };
        assert_eq!(naturalness(&s), 0.0);
    }

    #[test]
    fn partial_mimicry_lands_in_the_middle() {
        // Curved but machine-timed: one of three signatures.
        let s = PointerStats {
            samples: 30,
            duration_ms: 250,
            speed_cv: 0.02,
            curvature: 0.2,
            pause_fraction: 0.0,
        };
        let score = naturalness(&s);
        assert!(score > 0.2 && score < NATURAL_THRESHOLD, "{score}");
    }

    #[test]
    fn credible_pointer_requires_both_events_and_stats() {
        let trace = BehaviorTrace {
            mouse_events: 20,
            touch_events: 0,
            pointer: Some(human_stats()),
            first_input_delay_ms: 500,
        };
        assert!(credible_pointer(&trace));
        let no_stats = BehaviorTrace {
            pointer: None,
            ..trace
        };
        assert!(!credible_pointer(&no_stats));
        let few_events = BehaviorTrace {
            mouse_events: 1,
            ..trace
        };
        assert!(!credible_pointer(&few_events));
    }

    #[test]
    fn ramp_boundaries() {
        assert_eq!(ramp(0.0, 0.1, 0.2), 0.0);
        assert_eq!(ramp(0.3, 0.1, 0.2), 1.0);
        assert!((ramp(0.15, 0.1, 0.2) - 0.5).abs() < 1e-6);
    }
}
