//! The bounded-memory retention contract.
//!
//! Every layer that holds records used to grow without bound: the store
//! kept every admitted request forever, and a re-mining defender's
//! training window accumulated the seed pool plus each round's records
//! until the end of time. A production engine serving heavy traffic
//! cannot — and, per the §6 arms race, *should not*: rules re-mined over
//! a staleness-polluted window pay ever-growing scan spend for
//! fingerprints the fleet mutated away rounds ago.
//!
//! This module is the contract the storage layer and the defender
//! lifecycle share:
//!
//! * [`Epoch`] — a monotonically increasing segment label. The store
//!   appends into the *active* epoch; sealing closes it (one seal per
//!   arena round, or per N requests in single-shot mode) and starts the
//!   next. Segments are immutable once sealed, so retention is a
//!   wholesale decision per segment — no tombstones, no index rebuilds
//!   on eviction.
//! * [`RetentionPolicy`] — what happens to sealed segments as new epochs
//!   arrive: [`RetentionPolicy::KeepAll`] (the exact pre-refactor
//!   behaviour, and the default), [`RetentionPolicy::SlidingWindow`]
//!   (drop whole segments older than the window — peak resident records
//!   are bounded by the window's worth of traffic), and
//!   [`RetentionPolicy::SampledDecay`] (deterministically subsample a
//!   segment as it ages, keeping a long-tail memory floor).
//! * [`SegmentStats`] — the eviction/spend ledger a seal reports:
//!   records and segments evicted, resident records after the seal, and
//!   the peak residency high-water mark.
//! * [`RecordView`] — the epoch-aware replacement for the store's old
//!   contiguous `&[StoredRequest]` slice: an ordered list of segment
//!   slices that iterates in arrival order. Everything that used to walk
//!   one flat slice (re-mining, evaluation, round bookkeeping) walks a
//!   view instead, so a store whose middle epochs were evicted still
//!   presents one arrival-ordered stream.

use crate::mix::{mix2, unit_f64};
use crate::request::RequestId;
use crate::stored::StoredRequest;

/// Salt for the deterministic per-record survival key used by
/// [`RetentionPolicy::SampledDecay`].
const DECAY_SALT: u64 = 0x00DE_CAF0_5A17;

/// A monotonically increasing segment label: the store's unit of sealing
/// and eviction. Epoch 0 is the first (seed) segment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u32);

impl Epoch {
    /// The label of the next epoch.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// What a store does with sealed segments as new epochs arrive.
///
/// Applied at every [seal]: the just-sealed segment always survives its
/// own seal (age 0), older segments are evicted or decayed according to
/// the policy. All decisions are deterministic functions of epoch ages
/// and record ids, so retention is shard-invariant and replays
/// identically.
///
/// [seal]: RetentionPolicy#sealing
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum RetentionPolicy {
    /// Keep every record of every epoch forever — the exact pre-refactor
    /// behaviour, and the default. Resident records grow linearly with
    /// ingest.
    #[default]
    KeepAll,
    /// Keep only the most recent `epochs` sealed segments; older segments
    /// are dropped wholesale (their per-segment indexes go with them — no
    /// tombstones). Peak resident records are bounded by `epochs` worth
    /// of traffic plus the active segment. `epochs` is clamped to ≥ 1.
    SlidingWindow {
        /// How many sealed epochs stay resident.
        epochs: u32,
    },
    /// Deterministically subsample a segment as it ages: a segment of age
    /// `a` (seals since it was sealed, 0 = just sealed) retains about
    /// `keep_rate^a` of its records — but never fewer than `floor`
    /// records, so old epochs thin out without ever vanishing (a
    /// long-tail memory for slow-moving fingerprints). Survival is keyed
    /// on the record id, so the kept set at age `a+1` is a subset of the
    /// kept set at age `a` and identical across shard counts.
    SampledDecay {
        /// Fraction of a segment's records surviving each additional
        /// epoch of age (clamped to [0, 1]).
        keep_rate: f64,
        /// Minimum records a decayed segment retains (0 lets segments
        /// decay away entirely).
        floor: usize,
    },
}

impl RetentionPolicy {
    /// Display name for reports and ablation tables.
    pub fn name(&self) -> &'static str {
        match self {
            RetentionPolicy::KeepAll => "keep-all",
            RetentionPolicy::SlidingWindow { .. } => "sliding-window",
            RetentionPolicy::SampledDecay { .. } => "sampled-decay",
        }
    }

    /// Is a sealed segment of `age` (seals since it was sealed; the
    /// just-sealed segment has age 0) evicted wholesale under this
    /// policy?
    pub fn evicts_segment(&self, age: u32) -> bool {
        match self {
            RetentionPolicy::KeepAll | RetentionPolicy::SampledDecay { .. } => false,
            RetentionPolicy::SlidingWindow { epochs } => age >= (*epochs).max(1),
        }
    }

    /// The fraction of a segment's records surviving at `age` under this
    /// policy (before the [`RetentionPolicy::SampledDecay`] floor is
    /// applied). 1.0 for non-decaying policies.
    pub fn survival_rate(&self, age: u32) -> f64 {
        match self {
            RetentionPolicy::SampledDecay { keep_rate, .. } => {
                keep_rate.clamp(0.0, 1.0).powi(age as i32)
            }
            _ => 1.0,
        }
    }

    /// The decay floor: the minimum records a decayed segment retains.
    /// `None` for policies that never decay within a segment.
    pub fn decay_floor(&self) -> Option<usize> {
        match self {
            RetentionPolicy::SampledDecay { floor, .. } => Some(*floor),
            _ => None,
        }
    }

    /// The deterministic survival key of one record: records with smaller
    /// keys survive longer under [`RetentionPolicy::SampledDecay`]
    /// (a record survives age `a` iff its key is below
    /// [`RetentionPolicy::survival_rate`]`(a)` or it ranks within the
    /// floor). Exposed so stores and tests agree on the sampling.
    pub fn survival_key(id: RequestId) -> f64 {
        unit_f64(mix2(id, DECAY_SALT))
    }
}

/// The eviction/spend ledger of the epoch-segmented store: what one seal
/// evicted (or, accumulated, what a whole campaign's retention cost and
/// saved). The defender-spend columns of the arena trajectory carry these
/// numbers per round, next to the retraining spend they bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Epochs sealed so far (or by this seal: 1).
    pub epochs_sealed: u64,
    /// Whole segments dropped by retention.
    pub segments_evicted: u64,
    /// Records dropped by retention (whole-segment eviction and
    /// within-segment decay combined).
    pub records_evicted: u64,
    /// Records resident after the (last) seal.
    pub resident_records: u64,
    /// High-water mark of resident records observed at seal time.
    pub peak_resident_records: u64,
}

impl SegmentStats {
    /// Merge another seal's ledger into this cumulative one: counters
    /// sum, `resident_records` takes the newer snapshot, the peak takes
    /// the maximum.
    pub fn absorb(&mut self, seal: SegmentStats) {
        self.epochs_sealed += seal.epochs_sealed;
        self.segments_evicted += seal.segments_evicted;
        self.records_evicted += seal.records_evicted;
        self.resident_records = seal.resident_records;
        self.peak_resident_records = self.peak_resident_records.max(seal.peak_resident_records);
    }
}

/// An arrival-ordered view over the resident records of an
/// epoch-segmented store: an ordered list of segment slices. The
/// epoch-aware replacement for the old contiguous `&[StoredRequest]`
/// slice — iteration crosses segment boundaries transparently, and a
/// store whose older epochs were evicted still presents one ordered
/// stream of what *remains*.
#[derive(Clone, Debug, Default)]
pub struct RecordView<'a> {
    segments: Vec<&'a [StoredRequest]>,
}

impl<'a> RecordView<'a> {
    /// A view over the given segment slices, in arrival order.
    pub fn new(segments: Vec<&'a [StoredRequest]>) -> RecordView<'a> {
        RecordView { segments }
    }

    /// An empty view.
    pub fn empty() -> RecordView<'a> {
        RecordView::default()
    }

    /// A single-segment view over one contiguous slice (the pre-refactor
    /// shape; what a never-sealed store presents).
    pub fn from_slice(records: &'a [StoredRequest]) -> RecordView<'a> {
        RecordView {
            segments: vec![records],
        }
    }

    /// Total records visible through the view.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.is_empty())
    }

    /// Number of (possibly empty) segments backing the view.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The backing segment slices, in arrival order.
    pub fn segments(&self) -> &[&'a [StoredRequest]] {
        &self.segments
    }

    /// All records in arrival order, crossing segment boundaries.
    pub fn iter(&self) -> impl Iterator<Item = &'a StoredRequest> + '_ {
        self.segments.iter().flat_map(|s| s.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::VerdictSet;
    use crate::{sym, AttrId, Fingerprint, ServiceId, SimTime, TrafficSource};

    fn record(id: RequestId) -> StoredRequest {
        StoredRequest {
            id,
            time: SimTime::EPOCH,
            site_token: sym("t"),
            ip_hash: id,
            ip_offset_minutes: 0,
            ip_region: sym("United States of America/California"),
            ip_lat: 0.0,
            ip_lon: 0.0,
            asn: 1,
            asn_flagged: false,
            ip_blocklisted: false,
            tor_exit: false,
            cookie: id,
            fingerprint: Fingerprint::new().with(AttrId::UaDevice, "iPhone"),
            tls: crate::TlsFacet::unobserved(),
            behavior: crate::BehaviorTrace::silent(),
            cadence: crate::BehaviorFacet::unobserved(),
            source: TrafficSource::Bot(ServiceId(1)),
            verdicts: VerdictSet::new(),
        }
    }

    #[test]
    fn epochs_advance_and_display() {
        let e = Epoch::default();
        assert_eq!(e.0, 0);
        assert_eq!(e.next(), Epoch(1));
        assert_eq!(Epoch(3).to_string(), "epoch 3");
    }

    #[test]
    fn keep_all_is_the_default_and_never_evicts() {
        let policy = RetentionPolicy::default();
        assert_eq!(policy, RetentionPolicy::KeepAll);
        assert_eq!(policy.name(), "keep-all");
        for age in 0..100 {
            assert!(!policy.evicts_segment(age));
            assert_eq!(policy.survival_rate(age), 1.0);
        }
        assert_eq!(policy.decay_floor(), None);
    }

    #[test]
    fn sliding_window_evicts_by_age() {
        let policy = RetentionPolicy::SlidingWindow { epochs: 2 };
        assert!(!policy.evicts_segment(0), "the just-sealed segment stays");
        assert!(!policy.evicts_segment(1));
        assert!(policy.evicts_segment(2));
        assert!(policy.evicts_segment(50));
        assert_eq!(policy.survival_rate(50), 1.0, "no within-segment decay");
        // A zero-width window is clamped to one epoch.
        let degenerate = RetentionPolicy::SlidingWindow { epochs: 0 };
        assert!(!degenerate.evicts_segment(0));
        assert!(degenerate.evicts_segment(1));
    }

    #[test]
    fn sampled_decay_halves_per_age_and_floors() {
        let policy = RetentionPolicy::SampledDecay {
            keep_rate: 0.5,
            floor: 10,
        };
        assert!(
            !policy.evicts_segment(99),
            "decay never drops whole segments"
        );
        assert_eq!(policy.survival_rate(0), 1.0);
        assert!((policy.survival_rate(1) - 0.5).abs() < 1e-12);
        assert!((policy.survival_rate(3) - 0.125).abs() < 1e-12);
        assert_eq!(policy.decay_floor(), Some(10));
        // Survival keys are deterministic, unit-interval, and id-keyed.
        let k = RetentionPolicy::survival_key(7);
        assert_eq!(k, RetentionPolicy::survival_key(7));
        assert!((0.0..1.0).contains(&k));
        assert_ne!(k, RetentionPolicy::survival_key(8));
    }

    #[test]
    fn segment_stats_absorb_sums_and_peaks() {
        let mut total = SegmentStats::default();
        total.absorb(SegmentStats {
            epochs_sealed: 1,
            segments_evicted: 0,
            records_evicted: 0,
            resident_records: 100,
            peak_resident_records: 100,
        });
        total.absorb(SegmentStats {
            epochs_sealed: 1,
            segments_evicted: 1,
            records_evicted: 40,
            resident_records: 60,
            peak_resident_records: 100,
        });
        assert_eq!(total.epochs_sealed, 2);
        assert_eq!(total.segments_evicted, 1);
        assert_eq!(total.records_evicted, 40);
        assert_eq!(total.resident_records, 60, "resident is a snapshot");
        assert_eq!(
            total.peak_resident_records, 100,
            "peak is a high-water mark"
        );
    }

    #[test]
    fn record_view_iterates_segments_in_order() {
        let a: Vec<StoredRequest> = (0..3).map(record).collect();
        let b: Vec<StoredRequest> = (3..5).map(record).collect();
        let view = RecordView::new(vec![&a[..], &b[..]]);
        assert_eq!(view.len(), 5);
        assert!(!view.is_empty());
        assert_eq!(view.segment_count(), 2);
        let ids: Vec<u64> = view.iter().map(|r| r.id).collect();
        assert_eq!(ids, [0, 1, 2, 3, 4]);

        assert!(RecordView::empty().is_empty());
        assert_eq!(RecordView::empty().len(), 0);
        let single = RecordView::from_slice(&a);
        assert_eq!(single.len(), 3);
        assert_eq!(single.segment_count(), 1);
    }
}
