//! Shared core types for the FP-Inconsistent reproduction.
//!
//! This crate is the vocabulary every other crate speaks:
//!
//! * [`Symbol`] / [`Interner`] — cheap, copyable interned strings. A recorded
//!   campaign holds half a million requests, each with ~40 attribute values;
//!   interning keeps a request a flat vector of 8-byte values and makes
//!   equality checks (the heart of the inconsistency miner) integer compares.
//! * [`AttrId`] / [`AttrValue`] / [`Fingerprint`] — the attribute schema
//!   mirroring what FingerprintJS plus the HTTP layer exposes (Section 4.4 of
//!   the paper).
//! * [`Request`] — one admitted honey-site request: fingerprint, source IP,
//!   behaviour trace, cookie device identifier and ground-truth provenance.
//! * [`behavior`] — the session-level behavioural facet ([`BehaviorFacet`]:
//!   inter-event timing quantiles, interaction cadence, navigation shape)
//!   plus the one sourced copy of the behaviour-decision thresholds
//!   ([`BehaviorThresholds`], pointer naturalness) that the commercial
//!   simulator and the `fp-behavior` session detector both read.
//! * [`StoredRequest`] / [`VerdictSet`] — the privacy-scrubbed record the
//!   store keeps, carrying each detector's named real-time verdict.
//! * [`detect`] — the shared streaming [`Detector`] contract every bot
//!   detector implements (anti-bot simulators and FP-Inconsistent alike),
//!   with [`StateScope`] declaring the state anchor that makes sharded
//!   execution equivalent to sequential execution.
//! * [`MitigationAction`] / [`RoundOutcome`] — the closed-loop mitigation
//!   contract: what a site does with a flagged request, and what a bot
//!   service can observe about a round of its own traffic (`fp-arena`
//!   closes the loop between the two).
//! * [`defense`] — the defender-side lifecycle contract: a
//!   [`DecisionPolicy`] maps each request's recorded verdicts to a
//!   [`MitigationAction`] (vote thresholds, per-detector weights/actions,
//!   escalating TTLs, CAPTCHA-then-block hybrids), and a [`StackMember`]
//!   produces a fresh detector per round and may retrain itself from the
//!   retained training window.
//! * [`serve`] — the serving-layer contract ([`ServeConfig`],
//!   [`OverflowPolicy`]): bounded queue capacities, key-stable shard
//!   routing, and the backpressure posture (block vs shed) for the
//!   continuously running ingest service in `fp-honeysite`.
//! * [`retention`] — the bounded-memory contract: [`Epoch`]-segmented
//!   storage, pluggable [`RetentionPolicy`]s (keep-all, sliding window,
//!   sampled decay), the [`SegmentStats`] eviction ledger, and the
//!   epoch-aware [`RecordView`] every record-walking pass consumes
//!   instead of one ever-growing contiguous slice.
//! * [`runfp`] — deterministic run fingerprints (`RUNFP_V1`): a
//!   [`RunFingerprint`] over a whole closed-loop campaign's named
//!   components (config, seed, per-round behaviour) with an auditable
//!   [`RunComponents`] breakdown that names which facet diverged, and the
//!   golden-ledger text form CI asserts against.
//! * [`stablehash`] — process-independent, order-invariant content hashing
//!   ([`PackHash`]): how a compiled rule pack is versioned so the same
//!   rules hash identically however they were mined, and any behavioural
//!   change produces a new hash.
//! * [`hotswap`] — [`HotSwap`]: barrier-free publication of immutable
//!   artifacts; in-flight readers keep their `Arc` snapshot while new
//!   admissions see the swapped-in replacement.
//! * [`SimTime`] / [`SimClock`] — simulated time, counted from the start of
//!   the paper's three-month study window (2023-09-01).
//! * [`mix`] — deterministic splittable hashing used wherever a generator or
//!   detector needs per-request randomness that must be stable across runs.

// This crate is the workspace's public contract: every type here is read
// by every other crate, so an undocumented item is a broken promise.
#![deny(missing_docs)]

pub mod attr;
pub mod behavior;
pub mod clock;
pub mod defense;
pub mod detect;
pub mod fingerprint;
pub mod hotswap;
pub mod interner;
pub mod label;
pub mod mitigation;
pub mod mix;
pub mod request;
pub mod retention;
pub mod runfp;
pub mod scale;
pub mod serve;
pub mod stablehash;
pub mod stored;
pub mod tls;
pub mod value;

pub use attr::AttrId;
pub use behavior::{BehaviorFacet, BehaviorThresholds};
pub use clock::{SimClock, SimTime, STUDY_DAYS, STUDY_EPOCH_UNIX};
pub use defense::{
    CaptchaEscalation, DecisionContext, DecisionPolicy, EscalatingTtl, Frozen, PerDetectorActions,
    RetrainSpend, RoundContext, StackMember, VoteThreshold, WeightedVotes,
};
pub use detect::{Detector, StateScope, Verdict, VerdictSet};
pub use fingerprint::Fingerprint;
pub use hotswap::HotSwap;
pub use interner::{sym, Interner, Symbol};
pub use label::{Cohort, PrivacyTech, ServiceId, TrafficSource};
pub use mitigation::{ActionLedger, MitigationAction, RoundOutcome};
pub use mix::{mix2, mix3, shard_for, splitmix64, unit_f64, Splittable};
pub use request::{BehaviorTrace, CookieId, PointerStats, Request, RequestId};
pub use retention::{Epoch, RecordView, RetentionPolicy, SegmentStats};
pub use runfp::{ComponentHash, ComponentHasher, RunComponents, RunFingerprint};
pub use scale::Scale;
pub use serve::{OverflowPolicy, ServeConfig};
pub use stablehash::{ContentHasher, PackHash};
pub use stored::StoredRequest;
pub use tls::TlsFacet;
pub use value::AttrValue;
