//! The recorded request: what the honey site stores per admitted visit.

use crate::behavior::BehaviorFacet;
use crate::clock::SimTime;
use crate::fingerprint::Fingerprint;
use crate::interner::Symbol;
use crate::label::TrafficSource;
use crate::tls::TlsFacet;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Monotonically assigned request identifier.
pub type RequestId = u64;

/// The large random first-party cookie value the honey site sets on first
/// contact (Section 6.3). Requests sharing a `CookieId` came from the same
/// browser profile — the anchor for temporal-inconsistency analysis.
pub type CookieId = u64;

/// Summary statistics of a pointer trajectory, computed from the actual
/// event stream (the generators in `fp-botnet::pointer` synthesise point
/// sequences; these are their moments). Detection-side code never sees a
/// "naturalness" label — it must *derive* one from these statistics, the
/// way DataDome's behavioural model consumes its MouseEvent listeners
/// (Table 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PointerStats {
    /// Number of movement samples in the trajectory.
    pub samples: u16,
    /// Wall-clock span of the trajectory in milliseconds.
    pub duration_ms: u32,
    /// Coefficient of variation of per-segment speeds. Human hands
    /// accelerate and decelerate (≈0.3–1.2); replayed lines are constant.
    pub speed_cv: f32,
    /// Mean absolute turn angle between consecutive segments, radians.
    /// Human trajectories curve and tremor; synthetic lines do not.
    pub curvature: f32,
    /// Fraction of the duration spent in pauses longer than 100 ms —
    /// humans stop to read.
    pub pause_fraction: f32,
}

/// Client-side behaviour observed while the page was open. DataDome reads
/// mouse events (Table 5); bots rarely produce credible ones. FingerprintJS
/// does *not* capture this, which is why the evasion classifiers trained on
/// fingerprint attributes alone cannot perfectly predict DataDome verdicts
/// (the paper's DataDome classifier plateaus near 82%).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BehaviorTrace {
    /// Number of `mousemove`/`mousedown`/`mouseup` events observed.
    pub mouse_events: u16,
    /// Number of touch events observed.
    pub touch_events: u16,
    /// Trajectory statistics when pointer movement was observed.
    pub pointer: Option<PointerStats>,
    /// Milliseconds between page load and the first input event (0 = none).
    pub first_input_delay_ms: u32,
}

impl BehaviorTrace {
    /// A trace with no input at all — the typical bot page visit.
    pub fn silent() -> BehaviorTrace {
        BehaviorTrace::default()
    }

    /// Whether any human-input evidence exists.
    pub fn has_input(&self) -> bool {
        self.mouse_events > 0 || self.touch_events > 0
    }
}

/// One admitted request, as recorded by the honey-site pipeline.
///
/// The raw source IP is kept here for the *generation* side; the store hashes
/// it before persistence (paper ethics appendix) while retaining the derived
/// geo/ASN facts it needs for analysis.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Dense id, assigned by the store at admission.
    pub id: RequestId,
    /// Simulated arrival time.
    pub time: SimTime,
    /// The URL token of the honey-site version that received the request.
    pub site_token: Symbol,
    /// Source IPv4 address.
    pub ip: Ipv4Addr,
    /// First-party cookie, if the browser presented one.
    pub cookie: Option<CookieId>,
    /// The FingerprintJS-style attribute vector.
    pub fingerprint: Fingerprint,
    /// JA3/JA4 digests of the TLS ClientHello that carried the request —
    /// the network-layer facet the cross-layer detector compares against
    /// the User-Agent's claim.
    pub tls: TlsFacet,
    /// Observed input behaviour.
    pub behavior: BehaviorTrace,
    /// Session-level behavioural summary — interaction cadence and
    /// navigation shape, the facet the session behaviour detector reads
    /// (the way the cross-layer detector reads `tls`).
    pub cadence: BehaviorFacet,
    /// Ground-truth provenance (known because of the URL-token design).
    pub source: TrafficSource,
}

impl Request {
    /// Convenience accessor for a fingerprint attribute.
    pub fn attr(&self, id: crate::AttrId) -> &crate::AttrValue {
        self.fingerprint.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sym, AttrId, ServiceId};

    fn sample() -> Request {
        Request {
            id: 7,
            time: SimTime::from_day(3, 120),
            site_token: sym("Byxxodkxn3"),
            ip: Ipv4Addr::new(52, 31, 4, 9),
            cookie: Some(0xDEAD_BEEF),
            fingerprint: Fingerprint::new().with(AttrId::UaDevice, "iPhone"),
            tls: TlsFacet::observed(crate::sym("ja3digest"), crate::sym("ja4desc")),
            behavior: BehaviorTrace::silent(),
            cadence: BehaviorFacet::observed(4_000, 5_200, 0.07, 5, 2, 3_600),
            source: TrafficSource::Bot(ServiceId(1)),
        }
    }

    #[test]
    fn attr_accessor() {
        let r = sample();
        assert_eq!(r.attr(AttrId::UaDevice).as_str(), Some("iPhone"));
        assert!(r.attr(AttrId::Plugins).is_missing());
    }

    #[test]
    fn silent_trace_has_no_input() {
        assert!(!BehaviorTrace::silent().has_input());
        let t = BehaviorTrace {
            mouse_events: 3,
            ..BehaviorTrace::default()
        };
        assert!(t.has_input());
        let t = BehaviorTrace {
            touch_events: 1,
            ..BehaviorTrace::default()
        };
        assert!(t.has_input());
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, r.id);
        assert_eq!(back.ip, r.ip);
        assert_eq!(back.cookie, r.cookie);
        assert_eq!(back.fingerprint, r.fingerprint);
        assert_eq!(back.tls, r.tls);
        assert_eq!(back.cadence, r.cadence);
        assert_eq!(back.source, r.source);
    }
}
