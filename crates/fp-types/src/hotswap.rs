//! Barrier-free publication of immutable artifacts.
//!
//! [`HotSwap`] is the slot through which a retraining defender publishes
//! a freshly compiled artifact (a rule pack) to a running ingest pipeline
//! **without any barrier**: readers take an [`Arc`] snapshot once (at
//! fork/admission time) and keep evaluating against it for as long as
//! they like; a writer swaps the slot's `Arc` atomically with respect to
//! readers and never waits for in-flight evaluations to finish. In-flight
//! shard workers therefore finish their stream on the pack they started
//! with, while every chain built after the swap sees the new one — the
//! exact mid-round semantics the closed-loop arena needs.
//!
//! The implementation is a `parking_lot::RwLock<Arc<T>>`: `load` holds
//! the read lock only long enough to clone the `Arc` (a refcount bump),
//! `swap` holds the write lock only for the pointer exchange. Neither
//! ever blocks on an evaluation, because evaluations run against the
//! cloned `Arc`, never against the slot.

use parking_lot::RwLock;
use std::sync::Arc;

/// An atomically swappable `Arc<T>` slot (see the module docs for the
/// publication semantics).
pub struct HotSwap<T> {
    slot: RwLock<Arc<T>>,
}

impl<T> HotSwap<T> {
    /// A slot initially holding `value`.
    pub fn new(value: T) -> HotSwap<T> {
        HotSwap::from_arc(Arc::new(value))
    }

    /// A slot initially holding an existing `Arc` (no re-allocation).
    pub fn from_arc(value: Arc<T>) -> HotSwap<T> {
        HotSwap {
            slot: RwLock::new(value),
        }
    }

    /// Snapshot the current artifact. The returned `Arc` stays valid (and
    /// unchanged) across any number of subsequent [`HotSwap::swap`]s —
    /// that is the no-barrier property.
    pub fn load(&self) -> Arc<T> {
        self.slot.read().clone()
    }

    /// Publish `next`, returning the previously published artifact (so
    /// the writer can diff old vs new for its ledger). Readers holding
    /// snapshots are unaffected.
    pub fn swap(&self, next: Arc<T>) -> Arc<T> {
        std::mem::replace(&mut *self.slot.write(), next)
    }

    /// Convenience: publish an owned value.
    pub fn store(&self, value: T) -> Arc<T> {
        self.swap(Arc::new(value))
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for HotSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("HotSwap").field(&*self.slot.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_snapshot_survives_swap() {
        let slot = HotSwap::new(1u32);
        let before = slot.load();
        let old = slot.store(2);
        assert_eq!(*old, 1);
        assert_eq!(*before, 1, "in-flight snapshot keeps the old artifact");
        assert_eq!(*slot.load(), 2, "new admissions see the new artifact");
    }

    #[test]
    fn swap_returns_previous() {
        let slot = HotSwap::new("a".to_string());
        let prev = slot.swap(Arc::new("b".to_string()));
        assert_eq!(*prev, "a");
        assert_eq!(*slot.load(), "b");
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        let slot = Arc::new(HotSwap::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = slot.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let v = *slot.load();
                        assert!(v >= last, "published values only move forward");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=500u64 {
            slot.store(v);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*slot.load(), 500);
    }
}
