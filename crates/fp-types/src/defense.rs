//! The defender-side lifecycle contract.
//!
//! The arms race the arena plays has two sides, but until this module the
//! contract only described the adversary's: bots observe a
//! [`crate::RoundOutcome`] and adapt. The defender was a fixed
//! `Vec<Box<dyn Detector>>` wired by hand and a single global vote
//! threshold, frozen at round 0. This module is the defender's half:
//!
//! * [`DecisionPolicy`] — maps one request's recorded [`VerdictSet`] (plus
//!   the little admission-side context a real gateway has: address
//!   identity, time, prior offenses) to a [`MitigationAction`]. The old
//!   global vote threshold is one implementation ([`VoteThreshold`]);
//!   per-detector weights ([`WeightedVotes`]), per-detector actions
//!   ([`PerDetectorActions`]), escalating TTLs keyed on repeat offenses
//!   ([`EscalatingTtl`]) and the CAPTCHA-then-block hybrid
//!   ([`CaptchaEscalation`]) are others.
//! * [`StackMember`] — one lifecycle-aware slot in a defense stack: it
//!   *produces* a fresh [`Detector`] for each measurement round and may
//!   retrain itself from the retained training window when the round ends
//!   ([`StackMember::end_of_round`]). Members that never retrain wrap any
//!   plain detector in [`Frozen`].
//! * [`RoundContext`] / [`RetrainSpend`] — what a member sees at the end
//!   of a round (the epoch-aware [`RecordView`] over whatever the stack's
//!   retention policy kept), and what its retraining cost (the
//!   defender-side counterpart of the adversary's mutation spend), plus
//!   the retention ledger (records evicted/resident at the seal).
//!
//! The concrete `DefenseStack` that owns a member chain plus a policy is
//! assembled one layer up (in `fp-honeysite`, where the default commercial
//! chain lives); this module is deliberately only the contract, so every
//! crate can implement members and policies without a dependency cycle.

use crate::clock::SimTime;
use crate::detect::{Detector, VerdictSet};
use crate::interner::Symbol;
use crate::mitigation::MitigationAction;
use crate::retention::RecordView;

/// Everything a [`DecisionPolicy`] may consult when deciding one request.
///
/// Deliberately small: the verdicts the chain recorded, the request's
/// address identity and arrival time, and how often that address has
/// already been blocked — the context a real mitigation gateway has at the
/// moment it must answer. Ground truth is absent by design.
pub struct DecisionContext<'a> {
    /// The named verdicts the detector chain recorded for the request.
    pub verdicts: &'a VerdictSet,
    /// Salted hash of the request's source address (the store's identity).
    pub ip_hash: u64,
    /// The request's simulated arrival time.
    pub now: SimTime,
    /// How many times this address has been blocked before this decision
    /// (within the blocklist's escalation memory) — what TTL escalation
    /// keys on.
    pub prior_offenses: u32,
}

/// Maps one request's recorded verdicts to the site's response.
///
/// Implementations must be pure functions of the context (`&self`, no
/// interior mutation): any state a decision depends on — offense history,
/// retrained models — is carried by the context or by the stack members,
/// which keeps decisions deterministic and shard-order independent.
pub trait DecisionPolicy: Send {
    /// Display name for reports and ablation tables.
    fn name(&self) -> &str;

    /// Decide one request.
    fn decide(&self, ctx: &DecisionContext<'_>) -> MitigationAction;

    /// Should served CAPTCHAs be recorded as offenses on the blocklist's
    /// escalation ladder, and for how long must that memory live?
    /// `Some(memory_ttl_secs)` makes the mitigation loop record each
    /// served challenge as a *non-binding* strike (offense count moves,
    /// nothing is denied, history survives purges for the TTL — so the
    /// ladder climbs across round boundaries). Default `None`: most
    /// policies key escalation on blocks alone. [`CaptchaEscalation`]
    /// opts in — its "first offense Captcha, repeat offenses Block"
    /// ladder needs the first challenge remembered. Wrapping policies
    /// should forward their inner policy's answer.
    fn captcha_strike_ttl(&self) -> Option<u64> {
        None
    }
}

/// The pre-redesign global policy: act when at least `min_votes` detectors
/// flagged the request, whatever those detectors were.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoteThreshold {
    /// Display name for reports.
    pub name: &'static str,
    /// Number of flagging detectors required before the action applies.
    pub min_votes: usize,
    /// The action applied to triggered requests.
    pub action: MitigationAction,
}

impl VoteThreshold {
    /// A threshold policy with an explicit name.
    pub fn new(name: &'static str, min_votes: usize, action: MitigationAction) -> VoteThreshold {
        VoteThreshold {
            name,
            min_votes: min_votes.max(1),
            action,
        }
    }

    /// Any single flag triggers `action`.
    pub fn any(name: &'static str, action: MitigationAction) -> VoteThreshold {
        VoteThreshold::new(name, 1, action)
    }

    /// The paper's own measurement posture: record every flag, serve every
    /// page. The default stack ships with this.
    pub fn shadow() -> VoteThreshold {
        VoteThreshold::any("shadow", MitigationAction::ShadowFlag)
    }
}

impl DecisionPolicy for VoteThreshold {
    fn name(&self) -> &str {
        self.name
    }

    fn decide(&self, ctx: &DecisionContext<'_>) -> MitigationAction {
        let votes = ctx.verdicts.iter().filter(|(_, v)| v.is_bot()).count();
        if votes >= self.min_votes {
            self.action
        } else {
            MitigationAction::Allow
        }
    }
}

/// Per-detector *weighted* voting: each flagging detector contributes its
/// weight to a score; crossing the threshold triggers the action.
///
/// This is the "portfolio of heterogeneous signals" policy: a
/// high-precision detector (the cross-layer TLS check) can be weighted to
/// trigger alone while two noisy browser-layer flags are needed to reach
/// the same score.
pub struct WeightedVotes {
    name: &'static str,
    weights: Vec<(Symbol, f64)>,
    default_weight: f64,
    threshold: f64,
    action: MitigationAction,
}

impl WeightedVotes {
    /// A weighted policy that triggers `action` at `threshold` score.
    /// Detectors without an explicit weight contribute `default_weight`.
    pub fn new(
        name: &'static str,
        threshold: f64,
        default_weight: f64,
        action: MitigationAction,
    ) -> WeightedVotes {
        WeightedVotes {
            name,
            weights: Vec::new(),
            default_weight,
            threshold,
            action,
        }
    }

    /// Set one detector's weight (by provenance name).
    pub fn with_weight(mut self, detector: &str, weight: f64) -> WeightedVotes {
        let sym = crate::sym(detector);
        if let Some(slot) = self.weights.iter_mut().find(|(d, _)| *d == sym) {
            slot.1 = weight;
        } else {
            self.weights.push((sym, weight));
        }
        self
    }

    /// The flagged-detector score for one verdict set.
    pub fn score(&self, verdicts: &VerdictSet) -> f64 {
        verdicts
            .iter()
            .filter(|(_, v)| v.is_bot())
            .map(|(d, _)| {
                self.weights
                    .iter()
                    .find(|(w, _)| *w == d)
                    .map(|(_, weight)| *weight)
                    .unwrap_or(self.default_weight)
            })
            .sum()
    }
}

impl DecisionPolicy for WeightedVotes {
    fn name(&self) -> &str {
        self.name
    }

    fn decide(&self, ctx: &DecisionContext<'_>) -> MitigationAction {
        if self.score(ctx.verdicts) >= self.threshold {
            self.action
        } else {
            MitigationAction::Allow
        }
    }
}

/// Per-detector actions: each detector triggers its own response, and the
/// highest-severity action among the flagging detectors wins (Block >
/// Captcha > ShadowFlag > Allow; equal-severity blocks keep the longer
/// TTL).
pub struct PerDetectorActions {
    name: &'static str,
    actions: Vec<(Symbol, MitigationAction)>,
    /// Action for flagging detectors without an explicit entry.
    fallback: MitigationAction,
}

impl PerDetectorActions {
    /// A per-detector policy; unlisted flagging detectors trigger
    /// `fallback`.
    pub fn new(name: &'static str, fallback: MitigationAction) -> PerDetectorActions {
        PerDetectorActions {
            name,
            actions: Vec::new(),
            fallback,
        }
    }

    /// Set the action one detector (by provenance name) triggers.
    pub fn with_action(mut self, detector: &str, action: MitigationAction) -> PerDetectorActions {
        let sym = crate::sym(detector);
        if let Some(slot) = self.actions.iter_mut().find(|(d, _)| *d == sym) {
            slot.1 = action;
        } else {
            self.actions.push((sym, action));
        }
        self
    }
}

impl DecisionPolicy for PerDetectorActions {
    fn name(&self) -> &str {
        self.name
    }

    fn decide(&self, ctx: &DecisionContext<'_>) -> MitigationAction {
        let mut decided = MitigationAction::Allow;
        for (detector, verdict) in ctx.verdicts.iter() {
            if !verdict.is_bot() {
                continue;
            }
            let action = self
                .actions
                .iter()
                .find(|(d, _)| *d == detector)
                .map(|(_, a)| *a)
                .unwrap_or(self.fallback);
            let wins = match (action.severity(), decided.severity()) {
                (a, b) if a > b => true,
                (a, b) if a < b => false,
                // Equal severity: longer block TTL wins; otherwise keep.
                _ => match (action, decided) {
                    (MitigationAction::Block(new), MitigationAction::Block(old)) => new > old,
                    _ => false,
                },
            };
            if wins {
                decided = action;
            }
        }
        decided
    }
}

/// TTL escalation keyed on repeat offenses: wraps any trigger policy and
/// rewrites its `Block` TTLs to `base · multiplierⁿ` for an address with
/// `n` prior offenses (saturating, capped at `max_ttl_secs`).
///
/// Escalation memory is the blocklist's: an address whose entry expires
/// *and* is swept by a purge starts back at the base TTL (see
/// `fp_netsim::TtlBlocklist`).
pub struct EscalatingTtl {
    name: String,
    inner: Box<dyn DecisionPolicy>,
    base_ttl_secs: u64,
    multiplier: u64,
    max_ttl_secs: u64,
}

impl EscalatingTtl {
    /// Wrap `inner`, escalating every Block it issues from `base_ttl_secs`
    /// by `multiplier` per prior offense, up to `max_ttl_secs`.
    pub fn new(
        inner: Box<dyn DecisionPolicy>,
        base_ttl_secs: u64,
        multiplier: u64,
        max_ttl_secs: u64,
    ) -> EscalatingTtl {
        EscalatingTtl {
            name: format!("escalating-{}", inner.name()),
            inner,
            base_ttl_secs,
            multiplier: multiplier.max(1),
            max_ttl_secs: max_ttl_secs.max(base_ttl_secs),
        }
    }

    /// The TTL issued for an address with `prior_offenses` prior blocks.
    pub fn ttl_for(&self, prior_offenses: u32) -> u64 {
        let mut ttl = self.base_ttl_secs;
        for _ in 0..prior_offenses {
            ttl = ttl.saturating_mul(self.multiplier);
            if ttl >= self.max_ttl_secs {
                return self.max_ttl_secs;
            }
        }
        ttl.min(self.max_ttl_secs)
    }
}

impl DecisionPolicy for EscalatingTtl {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&self, ctx: &DecisionContext<'_>) -> MitigationAction {
        match self.inner.decide(ctx) {
            MitigationAction::Block(_) => MitigationAction::Block(self.ttl_for(ctx.prior_offenses)),
            other => other,
        }
    }

    fn captcha_strike_ttl(&self) -> Option<u64> {
        self.inner.captcha_strike_ttl()
    }
}

/// CAPTCHA-then-block hybrid: wraps any trigger policy; an address's
/// *first* offense is answered with a CAPTCHA challenge (visible, but
/// nothing is denied and the same address can try again), and every
/// repeat offense is answered with a TTL block. The ROADMAP's
/// "CAPTCHA + block hybrid" policy.
///
/// The first challenge must be remembered for "repeat" to mean anything,
/// so this policy opts into [`DecisionPolicy::captcha_strike_ttl`]: the
/// mitigation loop records each served CAPTCHA as a *non-binding* strike
/// on the TTL blocklist (offense count moves, nothing is denied) whose
/// memory lives as long as this policy's block TTL — so a challenged
/// address that comes back next round is blocked, not re-challenged.
/// Escalation memory therefore lives exactly where block escalation's
/// does — in the blocklist entry — and a purge sweeps lapsed strike
/// memory on the same clock it sweeps lapsed bans.
pub struct CaptchaEscalation {
    name: String,
    inner: Box<dyn DecisionPolicy>,
    block_ttl_secs: u64,
}

impl CaptchaEscalation {
    /// Wrap `inner`: whenever it decides any visible action, answer the
    /// address's first offense with a CAPTCHA and repeats with
    /// `Block(block_ttl_secs)`. Invisible decisions (Allow, ShadowFlag)
    /// pass through untouched.
    pub fn new(inner: Box<dyn DecisionPolicy>, block_ttl_secs: u64) -> CaptchaEscalation {
        CaptchaEscalation {
            name: format!("captcha-then-block-{}", inner.name()),
            inner,
            block_ttl_secs,
        }
    }

    /// The TTL of the blocks issued to repeat offenders.
    pub fn block_ttl_secs(&self) -> u64 {
        self.block_ttl_secs
    }
}

impl DecisionPolicy for CaptchaEscalation {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&self, ctx: &DecisionContext<'_>) -> MitigationAction {
        match self.inner.decide(ctx) {
            MitigationAction::Captcha | MitigationAction::Block(_) => {
                if ctx.prior_offenses == 0 {
                    MitigationAction::Captcha
                } else {
                    MitigationAction::Block(self.block_ttl_secs)
                }
            }
            invisible => invisible,
        }
    }

    fn captcha_strike_ttl(&self) -> Option<u64> {
        Some(self.block_ttl_secs)
    }
}

/// What a lifecycle-aware stack member sees when one measurement round
/// ends: the round index, the retained training window (arrival order,
/// verdicts attached) and the round's closing timestamp.
pub struct RoundContext<'a> {
    /// The index of the round that just completed.
    pub round: u32,
    /// The verdict-carrying training window, in arrival order — the
    /// epoch-aware view over whatever records the stack's retention
    /// policy kept (under `KeepAll`, every completed round including
    /// this one; under a sliding window, only the recent epochs).
    /// Members retrain over this view directly instead of accumulating
    /// an owned unbounded buffer.
    pub records: RecordView<'a>,
    /// The simulated timestamp at which the round closed.
    pub now: SimTime,
}

/// What the defender paid at the end of one round — the defender-side
/// counterpart of the adversary's `MutationStats`. Aggregated over the
/// stack's members and reported per round in the trajectory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetrainSpend {
    /// Members that actually retrained this round.
    pub retrained_members: u64,
    /// Training records read during retraining (the dominant cost of a
    /// re-mine: one full pass over the member's window per attribute pair).
    pub records_scanned: u64,
    /// Model terms live after the round (rule count for rule-based
    /// members; 0 for members without an explicit model).
    pub rules_active: u64,
    /// Training records the stack's retention policy evicted at this
    /// round's epoch seal. Written by the stack's retention bookkeeping,
    /// not by members (members report 0).
    pub records_evicted: u64,
    /// Training records resident in the stack's window after this
    /// round's seal — what the next re-mine will scan. Written by the
    /// stack's retention bookkeeping, not by members (members report 0).
    pub records_resident: u64,
    /// Content hash of the compiled rule pack deployed after this round
    /// (the *active* artifact the next round's chain evaluates). Written
    /// by the rule-carrying member; `None` when no such member sits in
    /// the stack. Unchanged hash across rounds ⇔ unchanged flagging
    /// behaviour.
    pub pack_hash: Option<crate::stablehash::PackHash>,
    /// Rules present in this round's re-mined pack but not in the
    /// previously deployed one (0 on rounds without a re-mine).
    pub rules_added: u64,
    /// Rules present in the previously deployed pack but dropped by this
    /// round's re-mine (0 on rounds without a re-mine).
    pub rules_removed: u64,
}

impl RetrainSpend {
    /// Merge another member's (or round-slice's) spend into this one.
    /// `rules_active` sums — it is a stack-wide model size. The retention
    /// fields sum too, which is safe because exactly one writer (the
    /// stack) sets them.
    pub fn absorb(&mut self, other: RetrainSpend) {
        self.retrained_members += other.retrained_members;
        self.records_scanned += other.records_scanned;
        self.rules_active += other.rules_active;
        self.records_evicted += other.records_evicted;
        self.records_resident += other.records_resident;
        // Exactly one member (the rule-carrying one) reports a pack
        // hash, so "last Some wins" is a propagation, not a merge.
        if other.pack_hash.is_some() {
            self.pack_hash = other.pack_hash;
        }
        self.rules_added += other.rules_added;
        self.rules_removed += other.rules_removed;
    }
}

/// One lifecycle-aware slot in a defense stack.
///
/// A member owns whatever model state its detector needs and hands out a
/// *fresh-state* [`Detector`] per measurement round (the same fork
/// discipline the shard pipeline uses). When a round ends, the stack
/// calls [`StackMember::end_of_round`] with the retained training window
/// ([`RoundContext::records`]); stateful members retrain over that view
/// and their next `detector()` reflects it. Members do **not** accumulate
/// their own record buffers — the stack's epoch-segmented store is the
/// single owner of training history, and a member that needs it says so
/// via [`StackMember::wants_history`].
pub trait StackMember: Send {
    /// The member's provenance name (matches the detectors it produces).
    fn member_name(&self) -> &'static str;

    /// A fresh detector instance reflecting the member's current training
    /// state — what the next round's ingest chain runs.
    fn detector(&self) -> Box<dyn Detector>;

    /// Does this member retrain from past rounds' records? When any
    /// member answers `true`, the owning stack retains round records in
    /// its epoch-segmented training store (under its retention policy)
    /// and hands the window to every member's `end_of_round`. When no
    /// member does, the stack retains nothing — a frozen chain costs no
    /// memory. Default `false`.
    fn wants_history(&self) -> bool {
        false
    }

    /// Digest one completed round. Members that retrain do it here and
    /// report what it cost; the default is a no-op (a frozen member).
    fn end_of_round(&mut self, epoch: &RoundContext<'_>) -> RetrainSpend {
        let _ = epoch;
        RetrainSpend::default()
    }
}

/// Any plain [`Detector`] as a [`StackMember`] that never retrains — the
/// adapter that lets the pre-redesign chain members (DataDome, BotD, the
/// cross-layer TLS check, the temporal anchors) ride in a lifecycle-aware
/// stack unchanged.
pub struct Frozen {
    proto: Box<dyn Detector>,
}

impl Frozen {
    /// Wrap a detector prototype; every round runs a fresh fork of it.
    pub fn new(proto: Box<dyn Detector>) -> Frozen {
        Frozen { proto }
    }
}

impl StackMember for Frozen {
    fn member_name(&self) -> &'static str {
        self.proto.name()
    }

    fn detector(&self) -> Box<dyn Detector> {
        self.proto.fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{provenance, StateScope, Verdict};
    use crate::stored::StoredRequest;
    use crate::sym;

    fn verdicts(bots: &[&str], humans: &[&str]) -> VerdictSet {
        let mut set = VerdictSet::new();
        for name in bots {
            set.record(sym(name), Verdict::Bot);
        }
        for name in humans {
            set.record(sym(name), Verdict::Human);
        }
        set
    }

    fn ctx<'a>(verdicts: &'a VerdictSet, prior_offenses: u32) -> DecisionContext<'a> {
        DecisionContext {
            verdicts,
            ip_hash: 42,
            now: SimTime::EPOCH,
            prior_offenses,
        }
    }

    #[test]
    fn vote_threshold_counts_flags() {
        let policy = VoteThreshold::new("blocky", 2, MitigationAction::Block(100));
        let one = verdicts(&["a"], &["b", "c"]);
        let two = verdicts(&["a", "b"], &["c"]);
        assert_eq!(policy.decide(&ctx(&one, 0)), MitigationAction::Allow);
        assert_eq!(policy.decide(&ctx(&two, 0)), MitigationAction::Block(100));
        assert_eq!(policy.name(), "blocky");
        assert_eq!(
            VoteThreshold::new("x", 0, MitigationAction::Captcha).min_votes,
            1
        );
    }

    #[test]
    fn shadow_policy_is_invisible() {
        let policy = VoteThreshold::shadow();
        let flagged = verdicts(&["a"], &[]);
        let action = policy.decide(&ctx(&flagged, 0));
        assert_eq!(action, MitigationAction::ShadowFlag);
        assert!(!action.visible_to_client());
    }

    #[test]
    fn weighted_votes_score_per_detector() {
        let policy = WeightedVotes::new("weighted", 1.0, 0.4, MitigationAction::Captcha)
            .with_weight(provenance::FP_TLS_CROSSLAYER, 1.0)
            .with_weight(provenance::BOTD, 0.5);
        // The high-precision detector triggers alone.
        let tls = verdicts(&[provenance::FP_TLS_CROSSLAYER], &[provenance::BOTD]);
        assert_eq!(policy.decide(&ctx(&tls, 0)), MitigationAction::Captcha);
        // One default-weight flag does not reach the threshold...
        let one = verdicts(&[provenance::DATADOME], &[]);
        assert!((policy.score(&one) - 0.4).abs() < 1e-12);
        assert_eq!(policy.decide(&ctx(&one, 0)), MitigationAction::Allow);
        // ...but botd + a default-weight flag does (0.5 + 0.4 < 1.0 — no),
        // while two default flags plus botd do.
        let three = verdicts(&[provenance::DATADOME, "x", provenance::BOTD], &[]);
        assert!(policy.score(&three) >= 1.0);
        assert_eq!(policy.decide(&ctx(&three, 0)), MitigationAction::Captcha);
    }

    #[test]
    fn weighted_votes_overwrites_duplicate_weights() {
        let policy = WeightedVotes::new("w", 1.0, 0.0, MitigationAction::Captcha)
            .with_weight("a", 0.2)
            .with_weight("a", 1.0);
        assert!((policy.score(&verdicts(&["a"], &[])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_detector_actions_highest_severity_wins() {
        let policy = PerDetectorActions::new("split", MitigationAction::ShadowFlag)
            .with_action(provenance::FP_TLS_CROSSLAYER, MitigationAction::Block(500))
            .with_action(provenance::BOTD, MitigationAction::Captcha);
        let both = verdicts(&[provenance::BOTD, provenance::FP_TLS_CROSSLAYER], &[]);
        assert_eq!(policy.decide(&ctx(&both, 0)), MitigationAction::Block(500));
        let botd_only = verdicts(&[provenance::BOTD], &[provenance::FP_TLS_CROSSLAYER]);
        assert_eq!(
            policy.decide(&ctx(&botd_only, 0)),
            MitigationAction::Captcha
        );
        let unlisted = verdicts(&["mystery"], &[]);
        assert_eq!(
            policy.decide(&ctx(&unlisted, 0)),
            MitigationAction::ShadowFlag
        );
        let clean = verdicts(&[], &[provenance::BOTD]);
        assert_eq!(policy.decide(&ctx(&clean, 0)), MitigationAction::Allow);
    }

    #[test]
    fn per_detector_actions_longer_block_wins_ties() {
        let policy = PerDetectorActions::new("split", MitigationAction::Allow)
            .with_action("a", MitigationAction::Block(100))
            .with_action("b", MitigationAction::Block(900));
        let both = verdicts(&["a", "b"], &[]);
        assert_eq!(policy.decide(&ctx(&both, 0)), MitigationAction::Block(900));
        let swapped = verdicts(&["b", "a"], &[]);
        assert_eq!(
            policy.decide(&ctx(&swapped, 0)),
            MitigationAction::Block(900)
        );
    }

    #[test]
    fn escalating_ttl_grows_with_offenses_and_caps() {
        let policy = EscalatingTtl::new(
            Box::new(VoteThreshold::any("block", MitigationAction::Block(0))),
            1_000,
            4,
            50_000,
        );
        assert_eq!(policy.ttl_for(0), 1_000);
        assert_eq!(policy.ttl_for(1), 4_000);
        assert_eq!(policy.ttl_for(2), 16_000);
        assert_eq!(policy.ttl_for(3), 50_000, "capped");
        assert_eq!(policy.ttl_for(200), 50_000, "saturating, no overflow");
        let flagged = verdicts(&["a"], &[]);
        assert_eq!(
            policy.decide(&ctx(&flagged, 2)),
            MitigationAction::Block(16_000)
        );
        assert_eq!(
            policy.decide(&ctx(&verdicts(&[], &["a"]), 5)),
            MitigationAction::Allow
        );
        assert_eq!(policy.name(), "escalating-block");
    }

    #[test]
    fn escalating_ttl_leaves_non_blocks_alone() {
        let policy = EscalatingTtl::new(
            Box::new(VoteThreshold::any("captcha", MitigationAction::Captcha)),
            1_000,
            2,
            10_000,
        );
        let flagged = verdicts(&["a"], &[]);
        assert_eq!(policy.decide(&ctx(&flagged, 3)), MitigationAction::Captcha);
    }

    #[test]
    fn captcha_escalation_challenges_first_then_blocks() {
        let policy = CaptchaEscalation::new(
            Box::new(VoteThreshold::any("block", MitigationAction::Block(500))),
            9_000,
        );
        assert_eq!(policy.name(), "captcha-then-block-block");
        assert_eq!(policy.block_ttl_secs(), 9_000);
        assert_eq!(
            policy.captcha_strike_ttl(),
            Some(9_000),
            "first challenges must be remembered for the block TTL"
        );
        let flagged = verdicts(&["a"], &[]);
        // First offense: a challenge, never a denial.
        assert_eq!(policy.decide(&ctx(&flagged, 0)), MitigationAction::Captcha);
        // Every repeat offense: a block with the policy's own TTL (not
        // the inner trigger's).
        assert_eq!(
            policy.decide(&ctx(&flagged, 1)),
            MitigationAction::Block(9_000)
        );
        assert_eq!(
            policy.decide(&ctx(&flagged, 7)),
            MitigationAction::Block(9_000)
        );
        // Clean requests pass through regardless of history.
        let clean = verdicts(&[], &["a"]);
        assert_eq!(policy.decide(&ctx(&clean, 3)), MitigationAction::Allow);
    }

    #[test]
    fn captcha_escalation_composes_with_ttl_escalation() {
        // The hybrid's repeat-offender blocks can ride the TTL ladder:
        // escalating(captcha-then-block) blocks at base·mult^offenses.
        let hybrid = CaptchaEscalation::new(
            Box::new(VoteThreshold::any("t", MitigationAction::Captcha)),
            1_000,
        );
        let policy = EscalatingTtl::new(Box::new(hybrid), 1_000, 3, 100_000);
        assert_eq!(
            policy.captcha_strike_ttl(),
            Some(1_000),
            "wrappers must forward the strike opt-in"
        );
        let flagged = verdicts(&["a"], &[]);
        assert_eq!(policy.decide(&ctx(&flagged, 0)), MitigationAction::Captcha);
        assert_eq!(
            policy.decide(&ctx(&flagged, 2)),
            MitigationAction::Block(9_000)
        );
    }

    #[test]
    fn plain_policies_do_not_strike_on_captcha() {
        assert_eq!(VoteThreshold::shadow().captcha_strike_ttl(), None);
        assert_eq!(
            VoteThreshold::any("c", MitigationAction::Captcha).captcha_strike_ttl(),
            None
        );
        let esc = EscalatingTtl::new(
            Box::new(VoteThreshold::any("b", MitigationAction::Block(1))),
            1,
            2,
            10,
        );
        assert_eq!(
            esc.captcha_strike_ttl(),
            None,
            "forwarding preserves the default"
        );
    }

    #[test]
    fn retrain_spend_absorbs() {
        let mut spend = RetrainSpend {
            retrained_members: 1,
            records_scanned: 10,
            rules_active: 5,
            ..RetrainSpend::default()
        };
        let pack_hash = {
            let mut h = crate::stablehash::ContentHasher::new();
            h.add_line("ua_device=iPhone AND max_touch_points=0");
            Some(h.finish())
        };
        spend.absorb(RetrainSpend {
            retrained_members: 0,
            records_scanned: 3,
            rules_active: 2,
            records_evicted: 4,
            records_resident: 20,
            pack_hash,
            rules_added: 2,
            rules_removed: 1,
        });
        assert_eq!(spend.retrained_members, 1);
        assert_eq!(spend.records_scanned, 13);
        assert_eq!(spend.rules_active, 7);
        assert_eq!(spend.records_evicted, 4);
        assert_eq!(spend.records_resident, 20);
        assert_eq!(spend.pack_hash, pack_hash, "hash propagates through absorb");
        assert_eq!(spend.rules_added, 2);
        assert_eq!(spend.rules_removed, 1);
        // A hash-less member (e.g. a frozen commercial detector) must not
        // erase the rule member's hash.
        spend.absorb(RetrainSpend::default());
        assert_eq!(spend.pack_hash, pack_hash);
    }

    struct CountingDetector(u32);
    impl Detector for CountingDetector {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn scope(&self) -> StateScope {
            StateScope::Stateless
        }
        fn observe(&mut self, _r: &StoredRequest) -> Verdict {
            self.0 += 1;
            Verdict::Human
        }
        fn reset(&mut self) {
            self.0 = 0;
        }
        fn fork(&self) -> Box<dyn Detector> {
            Box::new(CountingDetector(0))
        }
    }

    #[test]
    fn frozen_member_forks_fresh_detectors_and_never_retrains() {
        let mut member = Frozen::new(Box::new(CountingDetector(7)));
        assert_eq!(member.member_name(), "counting");
        assert!(!member.wants_history(), "frozen members retain nothing");
        let spend = member.end_of_round(&RoundContext {
            round: 0,
            records: crate::retention::RecordView::empty(),
            now: SimTime::EPOCH,
        });
        assert_eq!(spend, RetrainSpend::default());
        // Forked instances start from empty state, not the prototype's.
        let fresh = member.detector();
        assert_eq!(fresh.name(), "counting");
    }
}
