//! TLS ClientHello substrate — the cross-layer fingerprint extension.
//!
//! Section 8.2 of the paper argues FP-Inconsistent improves as more
//! attributes join the consistency web. The canonical *network-layer*
//! attribute is the TLS ClientHello shape: every browser engine greets
//! servers with a characteristic cipher/extension layout, summarised by the
//! JA3/JA4 digests that production anti-bot stacks consume. A bot that
//! spoofs a Safari User-Agent from a Go HTTP stack tells a cross-layer lie
//! (`ua_browser` × `ja3`) of exactly the kind the miner detects.
//!
//! Contents:
//! * [`clienthello`] — the ClientHello message, its wire serialisation and a
//!   strict parser (real record/handshake framing, GREASE-aware);
//! * [`md5`] — RFC 1321 MD5, implemented from the reference (JA3 is defined
//!   as an MD5 digest; pulling a crate for 120 lines would be gratuitous);
//! * [`ja3`] — JA3 string/digest and a JA4-style descriptor;
//! * [`profiles`] — per-client ClientHello profiles (Chrome, Firefox,
//!   Safari, Go, python-requests/OpenSSL) and the UA-family ↔ expected-JA3
//!   consistency map;
//! * [`crosslayer`] — the streaming [`TlsCrossLayer`] detector that flags
//!   UA↔JA3 mismatches inside the honey site's ingest chain.

pub mod clienthello;
pub mod crosslayer;
pub mod ja3;
pub mod md5;
pub mod profiles;

pub use clienthello::{ClientHello, Extension, ParseError};
pub use crosslayer::TlsCrossLayer;
pub use ja3::{ja3_digest, ja3_string, ja4_descriptor};
pub use profiles::{expected_ja3_for_ua_browser, TlsClientKind};
