//! The cross-layer consistency detector: UA claim vs. TLS behaviour.
//!
//! Section 8 of the paper shows bots that spoof every JS attribute while
//! their network stack betrays them — the signal "When Handshakes Tell the
//! Truth" exploits. This detector runs *inside* the honey site's ingest
//! chain: for each request it looks up the JA3 digest a truthful client
//! with the claimed `UA Browser` family would present
//! ([`crate::profiles::expected_ja3_for_ua_browser`]) and flags any
//! mismatch with the hello actually observed on the wire
//! ([`fp_types::TlsFacet`]).
//!
//! Deliberately conservative, so it adds no false positives on truthful
//! traffic:
//!
//! * handshake not observed → pass (no evidence);
//! * UA family with no known TLS expectation (exotic browsers) → pass;
//! * expected and observed digests equal → pass.
//!
//! Note the blind spot this leaves, by design: headless Chromium under a
//! Chrome UA presents Chrome's own hello and sails through — exactly why
//! the paper's browser-layer detectors and this network-layer check are
//! complements, not substitutes.

use crate::profiles::expected_ja3_for_ua_browser;
use fp_types::detect::{provenance, Detector, StateScope, Verdict};
use fp_types::{AttrId, StoredRequest};

/// Stateless UA↔JA3 mismatch detector (see the module docs). `Default` and
/// [`TlsCrossLayer::new`] are equivalent; the detector has no
/// configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct TlsCrossLayer;

impl TlsCrossLayer {
    /// A fresh detector (it carries no state).
    pub fn new() -> TlsCrossLayer {
        TlsCrossLayer
    }

    /// The pure predicate both the detector and ad-hoc analysis share:
    /// does this record's observed JA3 contradict its User-Agent claim?
    pub fn mismatch(record: &StoredRequest) -> bool {
        let Some(observed) = record
            .tls
            .ja3_str()
            .or_else(|| record.fingerprint.get(AttrId::Ja3).as_str())
        else {
            return false;
        };
        let Some(browser) = record.fingerprint.get(AttrId::UaBrowser).as_str() else {
            return false;
        };
        match expected_ja3_for_ua_browser(browser) {
            Some(expected) => expected != observed,
            None => false,
        }
    }
}

impl Detector for TlsCrossLayer {
    fn name(&self) -> &'static str {
        provenance::FP_TLS_CROSSLAYER
    }

    fn scope(&self) -> StateScope {
        StateScope::Stateless
    }

    fn observe(&mut self, request: &StoredRequest) -> Verdict {
        Verdict::from_flag(TlsCrossLayer::mismatch(request))
    }

    fn reset(&mut self) {}

    fn fork(&self) -> Box<dyn Detector> {
        Box::new(TlsCrossLayer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TlsClientKind;
    use fp_types::{sym, BehaviorTrace, Fingerprint, SimTime, TlsFacet, TrafficSource, VerdictSet};

    fn record(ua_browser: Option<&str>, tls: TlsFacet) -> StoredRequest {
        let mut fingerprint = Fingerprint::new();
        if let Some(b) = ua_browser {
            fingerprint.set(AttrId::UaBrowser, b);
        }
        StoredRequest {
            id: 0,
            time: SimTime::EPOCH,
            site_token: sym("t"),
            ip_hash: 1,
            ip_offset_minutes: 0,
            ip_region: sym("X/Y"),
            ip_lat: 0.0,
            ip_lon: 0.0,
            asn: 1,
            asn_flagged: false,
            ip_blocklisted: false,
            tor_exit: false,
            cookie: 1,
            fingerprint,
            tls,
            behavior: BehaviorTrace::silent(),
            cadence: fp_types::BehaviorFacet::unobserved(),
            source: TrafficSource::RealUser,
            verdicts: VerdictSet::new(),
        }
    }

    #[test]
    fn truthful_stacks_pass() {
        let mut d = TlsCrossLayer::new();
        for (browser, kind) in [
            ("Chrome", TlsClientKind::Chromium),
            ("Firefox", TlsClientKind::Firefox),
            ("Mobile Safari", TlsClientKind::Safari),
            ("Chrome Mobile iOS", TlsClientKind::Safari),
        ] {
            let r = record(Some(browser), kind.facet());
            assert_eq!(d.observe(&r), Verdict::Human, "{browser}");
        }
    }

    #[test]
    fn non_browser_stack_under_browser_ua_is_flagged() {
        let mut d = TlsCrossLayer::new();
        for kind in [TlsClientKind::GoHttp, TlsClientKind::PythonRequests] {
            let r = record(Some("Mobile Safari"), kind.facet());
            assert_eq!(d.observe(&r), Verdict::Bot, "{kind:?}");
        }
    }

    #[test]
    fn wrong_browser_stack_is_flagged() {
        // Chrome UA greeting like Firefox: still a cross-layer lie.
        let mut d = TlsCrossLayer::new();
        let r = record(Some("Chrome"), TlsClientKind::Firefox.facet());
        assert_eq!(d.observe(&r), Verdict::Bot);
    }

    #[test]
    fn missing_evidence_passes() {
        let mut d = TlsCrossLayer::new();
        // No handshake observed.
        let r = record(Some("Chrome"), TlsFacet::unobserved());
        assert_eq!(d.observe(&r), Verdict::Human);
        // No UA claim to contradict.
        let r = record(None, TlsClientKind::GoHttp.facet());
        assert_eq!(d.observe(&r), Verdict::Human);
        // Exotic browser with no known expectation.
        let r = record(Some("Other"), TlsClientKind::GoHttp.facet());
        assert_eq!(d.observe(&r), Verdict::Human);
    }

    #[test]
    fn fingerprint_attr_is_the_fallback_carrier() {
        // Records built before the facet existed carry JA3 only as a
        // fingerprint attribute; the detector still reads it.
        let mut r = record(Some("Chrome"), TlsFacet::unobserved());
        r.fingerprint.set(AttrId::Ja3, TlsClientKind::GoHttp.ja3());
        assert!(TlsCrossLayer::mismatch(&r));
    }

    #[test]
    fn contract_metadata() {
        let d = TlsCrossLayer::new();
        assert_eq!(d.name(), provenance::FP_TLS_CROSSLAYER);
        assert_eq!(d.scope(), StateScope::Stateless);
        let mut fork = d.fork();
        let r = record(Some("Chrome"), TlsClientKind::PythonRequests.facet());
        assert_eq!(fork.observe(&r), Verdict::Bot);
    }
}
