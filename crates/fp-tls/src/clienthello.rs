//! The TLS ClientHello message: construction, wire serialisation, parsing.
//!
//! Implements the real TLS 1.2/1.3 framing (record layer → handshake layer →
//! ClientHello body) so the parser works on genuine captures, while staying
//! deliberately narrow: only ClientHello, only what JA3/JA4 need. In
//! smoltcp's spirit the omissions are explicit: no other handshake types, no
//! record fragmentation/coalescing, extension bodies are kept opaque except
//! for the three JA3 inputs (SNI, supported groups, EC point formats).

use bytes::{Buf, BufMut, BytesMut};

/// TLS GREASE values (RFC 8701): `0x?a?a`. They appear in ciphers,
/// extensions and groups of Chromium/Safari hellos and must be ignored by
/// fingerprinting.
pub fn is_grease(v: u16) -> bool {
    (v & 0x0f0f) == 0x0a0a && (v >> 12) == ((v >> 4) & 0x0f)
}

/// All sixteen GREASE values.
pub const GREASE_VALUES: [u16; 16] = [
    0x0a0a, 0x1a1a, 0x2a2a, 0x3a3a, 0x4a4a, 0x5a5a, 0x6a6a, 0x7a7a, 0x8a8a, 0x9a9a, 0xaaaa, 0xbaba,
    0xcaca, 0xdada, 0xeaea, 0xfafa,
];

/// Well-known extension type codes used by the profiles.
pub mod ext_type {
    pub const SERVER_NAME: u16 = 0;
    pub const STATUS_REQUEST: u16 = 5;
    pub const SUPPORTED_GROUPS: u16 = 10;
    pub const EC_POINT_FORMATS: u16 = 11;
    pub const SIGNATURE_ALGORITHMS: u16 = 13;
    pub const ALPN: u16 = 16;
    pub const SIGNED_CERT_TIMESTAMP: u16 = 18;
    pub const PADDING: u16 = 21;
    pub const EXTENDED_MASTER_SECRET: u16 = 23;
    pub const COMPRESS_CERTIFICATE: u16 = 27;
    pub const RECORD_SIZE_LIMIT: u16 = 28;
    pub const SESSION_TICKET: u16 = 35;
    pub const DELEGATED_CREDENTIAL: u16 = 34;
    pub const PRE_SHARED_KEY_MODES: u16 = 45;
    pub const SUPPORTED_VERSIONS: u16 = 43;
    pub const KEY_SHARE: u16 = 51;
    pub const RENEGOTIATION_INFO: u16 = 65281;
    pub const APPLICATION_SETTINGS: u16 = 17513;
}

/// One extension: type code plus opaque body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Extension {
    pub typ: u16,
    pub body: Vec<u8>,
}

impl Extension {
    /// An empty-bodied extension.
    pub fn empty(typ: u16) -> Extension {
        Extension {
            typ,
            body: Vec::new(),
        }
    }

    /// `server_name` extension for a DNS hostname.
    pub fn sni(host: &str) -> Extension {
        let name = host.as_bytes();
        let mut body = BytesMut::with_capacity(name.len() + 5);
        body.put_u16(name.len() as u16 + 3); // server_name_list length
        body.put_u8(0); // name_type: host_name
        body.put_u16(name.len() as u16);
        body.put_slice(name);
        Extension {
            typ: ext_type::SERVER_NAME,
            body: body.to_vec(),
        }
    }

    /// `supported_groups` extension.
    pub fn supported_groups(groups: &[u16]) -> Extension {
        let mut body = BytesMut::with_capacity(groups.len() * 2 + 2);
        body.put_u16(groups.len() as u16 * 2);
        for g in groups {
            body.put_u16(*g);
        }
        Extension {
            typ: ext_type::SUPPORTED_GROUPS,
            body: body.to_vec(),
        }
    }

    /// `ec_point_formats` extension.
    pub fn ec_point_formats(formats: &[u8]) -> Extension {
        let mut body = Vec::with_capacity(formats.len() + 1);
        body.push(formats.len() as u8);
        body.extend_from_slice(formats);
        Extension {
            typ: ext_type::EC_POINT_FORMATS,
            body,
        }
    }
}

/// A parsed (or constructed) ClientHello.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientHello {
    /// `legacy_version` field (0x0303 for every modern stack).
    pub version: u16,
    /// 32 bytes of client randomness.
    pub random: [u8; 32],
    /// Legacy session id (Chrome sends 32 random bytes).
    pub session_id: Vec<u8>,
    /// Offered cipher suites, in order, GREASE included.
    pub cipher_suites: Vec<u16>,
    /// Compression methods (always `[0]` in practice).
    pub compression: Vec<u8>,
    /// Extensions in order, GREASE included.
    pub extensions: Vec<Extension>,
}

/// Parse failures — each names the layer that was malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer bytes than the active length field promised.
    Truncated(&'static str),
    /// Record layer content type was not handshake (22).
    NotHandshake(u8),
    /// Handshake type was not ClientHello (1).
    NotClientHello(u8),
    /// A nested length field contradicted its container.
    BadLength(&'static str),
    /// Trailing bytes after the ClientHello body.
    TrailingBytes(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated(what) => write!(f, "truncated {what}"),
            ParseError::NotHandshake(t) => write!(f, "record content type {t} is not handshake"),
            ParseError::NotClientHello(t) => write!(f, "handshake type {t} is not ClientHello"),
            ParseError::BadLength(what) => write!(f, "inconsistent length in {what}"),
            ParseError::TrailingBytes(n) => write!(f, "{n} trailing bytes after ClientHello"),
        }
    }
}

impl std::error::Error for ParseError {}

impl ClientHello {
    /// Serialise to the full wire form: TLS record header + handshake
    /// header + body.
    pub fn to_wire(&self) -> Vec<u8> {
        let body = self.body_bytes();
        let mut out = BytesMut::with_capacity(body.len() + 9);
        // Record layer.
        out.put_u8(22); // handshake
        out.put_u16(0x0301); // record version, historically TLS 1.0
        out.put_u16(body.len() as u16 + 4);
        // Handshake layer.
        out.put_u8(1); // client_hello
        let len = body.len() as u32;
        out.put_u8((len >> 16) as u8);
        out.put_u16((len & 0xffff) as u16);
        out.put_slice(&body);
        out.to_vec()
    }

    fn body_bytes(&self) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(512);
        b.put_u16(self.version);
        b.put_slice(&self.random);
        b.put_u8(self.session_id.len() as u8);
        b.put_slice(&self.session_id);
        b.put_u16(self.cipher_suites.len() as u16 * 2);
        for c in &self.cipher_suites {
            b.put_u16(*c);
        }
        b.put_u8(self.compression.len() as u8);
        b.put_slice(&self.compression);
        let ext_len: usize = self.extensions.iter().map(|e| 4 + e.body.len()).sum();
        b.put_u16(ext_len as u16);
        for e in &self.extensions {
            b.put_u16(e.typ);
            b.put_u16(e.body.len() as u16);
            b.put_slice(&e.body);
        }
        b.to_vec()
    }

    /// Parse from the full wire form produced by [`ClientHello::to_wire`]
    /// (or by a real client, provided the hello fits one record).
    pub fn parse(wire: &[u8]) -> Result<ClientHello, ParseError> {
        let mut buf = wire;
        if buf.remaining() < 5 {
            return Err(ParseError::Truncated("record header"));
        }
        let content_type = buf.get_u8();
        if content_type != 22 {
            return Err(ParseError::NotHandshake(content_type));
        }
        let _record_version = buf.get_u16();
        let record_len = buf.get_u16() as usize;
        if buf.remaining() < record_len {
            return Err(ParseError::Truncated("record body"));
        }
        if buf.remaining() > record_len {
            return Err(ParseError::TrailingBytes(buf.remaining() - record_len));
        }
        if record_len < 4 {
            return Err(ParseError::Truncated("handshake header"));
        }
        let hs_type = buf.get_u8();
        if hs_type != 1 {
            return Err(ParseError::NotClientHello(hs_type));
        }
        let hs_len = ((buf.get_u8() as usize) << 16) | buf.get_u16() as usize;
        if hs_len != record_len - 4 {
            return Err(ParseError::BadLength("handshake length vs record length"));
        }
        Self::parse_body(buf)
    }

    fn parse_body(mut buf: &[u8]) -> Result<ClientHello, ParseError> {
        if buf.remaining() < 34 {
            return Err(ParseError::Truncated("version/random"));
        }
        let version = buf.get_u16();
        let mut random = [0u8; 32];
        buf.copy_to_slice(&mut random);

        if buf.remaining() < 1 {
            return Err(ParseError::Truncated("session id length"));
        }
        let sid_len = buf.get_u8() as usize;
        if buf.remaining() < sid_len {
            return Err(ParseError::Truncated("session id"));
        }
        let session_id = buf[..sid_len].to_vec();
        buf.advance(sid_len);

        if buf.remaining() < 2 {
            return Err(ParseError::Truncated("cipher suites length"));
        }
        let cs_len = buf.get_u16() as usize;
        if !cs_len.is_multiple_of(2) {
            return Err(ParseError::BadLength("cipher suites (odd)"));
        }
        if buf.remaining() < cs_len {
            return Err(ParseError::Truncated("cipher suites"));
        }
        let mut cipher_suites = Vec::with_capacity(cs_len / 2);
        for _ in 0..cs_len / 2 {
            cipher_suites.push(buf.get_u16());
        }

        if buf.remaining() < 1 {
            return Err(ParseError::Truncated("compression length"));
        }
        let comp_len = buf.get_u8() as usize;
        if buf.remaining() < comp_len {
            return Err(ParseError::Truncated("compression methods"));
        }
        let compression = buf[..comp_len].to_vec();
        buf.advance(comp_len);

        let mut extensions = Vec::new();
        if buf.has_remaining() {
            if buf.remaining() < 2 {
                return Err(ParseError::Truncated("extensions length"));
            }
            let ext_total = buf.get_u16() as usize;
            if buf.remaining() != ext_total {
                return Err(ParseError::BadLength("extensions block"));
            }
            while buf.has_remaining() {
                if buf.remaining() < 4 {
                    return Err(ParseError::Truncated("extension header"));
                }
                let typ = buf.get_u16();
                let len = buf.get_u16() as usize;
                if buf.remaining() < len {
                    return Err(ParseError::Truncated("extension body"));
                }
                extensions.push(Extension {
                    typ,
                    body: buf[..len].to_vec(),
                });
                buf.advance(len);
            }
        }

        Ok(ClientHello {
            version,
            random,
            session_id,
            cipher_suites,
            compression,
            extensions,
        })
    }

    /// Supported groups (curves), if the extension is present — a JA3 input.
    pub fn supported_groups(&self) -> Vec<u16> {
        let Some(ext) = self
            .extensions
            .iter()
            .find(|e| e.typ == ext_type::SUPPORTED_GROUPS)
        else {
            return Vec::new();
        };
        let mut buf = ext.body.as_slice();
        if buf.remaining() < 2 {
            return Vec::new();
        }
        let len = buf.get_u16() as usize;
        let mut out = Vec::with_capacity(len / 2);
        while buf.remaining() >= 2 && out.len() < len / 2 {
            out.push(buf.get_u16());
        }
        out
    }

    /// EC point formats, if present — a JA3 input.
    pub fn ec_point_formats(&self) -> Vec<u8> {
        let Some(ext) = self
            .extensions
            .iter()
            .find(|e| e.typ == ext_type::EC_POINT_FORMATS)
        else {
            return Vec::new();
        };
        if ext.body.is_empty() {
            return Vec::new();
        }
        let len = ext.body[0] as usize;
        ext.body[1..].iter().take(len).copied().collect()
    }

    /// The SNI hostname, if present.
    pub fn server_name(&self) -> Option<String> {
        let ext = self
            .extensions
            .iter()
            .find(|e| e.typ == ext_type::SERVER_NAME)?;
        let mut buf = ext.body.as_slice();
        if buf.remaining() < 5 {
            return None;
        }
        let _list_len = buf.get_u16();
        let name_type = buf.get_u8();
        if name_type != 0 {
            return None;
        }
        let name_len = buf.get_u16() as usize;
        if buf.remaining() < name_len {
            return None;
        }
        String::from_utf8(buf[..name_len].to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hello() -> ClientHello {
        ClientHello {
            version: 0x0303,
            random: [7u8; 32],
            session_id: vec![9u8; 32],
            cipher_suites: vec![0x1a1a, 0x1301, 0x1302, 0xc02b],
            compression: vec![0],
            extensions: vec![
                Extension::sni("honey.example.com"),
                Extension::supported_groups(&[0x2a2a, 29, 23, 24]),
                Extension::ec_point_formats(&[0]),
                Extension::empty(ext_type::EXTENDED_MASTER_SECRET),
            ],
        }
    }

    #[test]
    fn wire_roundtrip() {
        let hello = sample_hello();
        let wire = hello.to_wire();
        let parsed = ClientHello::parse(&wire).unwrap();
        assert_eq!(parsed, hello);
    }

    #[test]
    fn accessors() {
        let hello = sample_hello();
        assert_eq!(hello.server_name().as_deref(), Some("honey.example.com"));
        assert_eq!(hello.supported_groups(), vec![0x2a2a, 29, 23, 24]);
        assert_eq!(hello.ec_point_formats(), vec![0]);
    }

    #[test]
    fn grease_detection() {
        for v in GREASE_VALUES {
            assert!(is_grease(v), "{v:#06x}");
        }
        assert!(!is_grease(0x1301));
        assert!(!is_grease(0x0a1a));
        assert!(!is_grease(29));
    }

    #[test]
    fn rejects_non_handshake_record() {
        let mut wire = sample_hello().to_wire();
        wire[0] = 23; // application data
        assert_eq!(ClientHello::parse(&wire), Err(ParseError::NotHandshake(23)));
    }

    #[test]
    fn rejects_non_clienthello_handshake() {
        let mut wire = sample_hello().to_wire();
        wire[5] = 2; // server_hello
        assert_eq!(
            ClientHello::parse(&wire),
            Err(ParseError::NotClientHello(2))
        );
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let wire = sample_hello().to_wire();
        for cut in 0..wire.len() {
            let r = ClientHello::parse(&wire[..cut]);
            assert!(r.is_err(), "parse of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut wire = sample_hello().to_wire();
        wire.push(0);
        assert!(matches!(
            ClientHello::parse(&wire),
            Err(ParseError::TrailingBytes(_))
        ));
    }

    #[test]
    fn rejects_inconsistent_handshake_length() {
        let mut wire = sample_hello().to_wire();
        wire[8] = wire[8].wrapping_add(1); // handshake length low byte
        assert!(matches!(
            ClientHello::parse(&wire),
            Err(ParseError::BadLength(_)) | Err(ParseError::Truncated(_))
        ));
    }

    #[test]
    fn empty_extension_block_is_valid() {
        let hello = ClientHello {
            version: 0x0303,
            random: [0; 32],
            session_id: Vec::new(),
            cipher_suites: vec![0x002f],
            compression: vec![0],
            extensions: Vec::new(),
        };
        let parsed = ClientHello::parse(&hello.to_wire()).unwrap();
        assert_eq!(parsed, hello);
        assert!(parsed.supported_groups().is_empty());
        assert!(parsed.server_name().is_none());
    }
}
