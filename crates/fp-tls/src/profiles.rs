//! Per-client ClientHello profiles.
//!
//! Each TLS stack greets servers with a characteristic hello. Browsers
//! randomise GREASE placement and key-share payloads per connection, but the
//! JA3 projection (GREASE-stripped types/order) is stable per stack — that
//! stability is what makes JA3 a fingerprint and what makes a UA↔JA3
//! mismatch a cross-layer inconsistency.

use crate::clienthello::{ext_type, ClientHello, Extension, GREASE_VALUES};
use crate::ja3::ja3_digest;
use fp_types::Splittable;
use std::sync::OnceLock;

/// The TLS client stacks the campaign models.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TlsClientKind {
    /// Chromium (Chrome, Edge, Samsung Internet, headless Chrome alike —
    /// headless Chrome's hello is identical to headful, which is exactly
    /// why JA3 alone cannot catch it and consistency with the UA matters).
    Chromium,
    /// Firefox (NSS).
    Firefox,
    /// Safari / any WebKit client on Apple platforms (incl. CriOS).
    Safari,
    /// Go `crypto/tls` default — common bot-framework stack.
    GoHttp,
    /// Python `requests` via OpenSSL — the other common bot stack.
    PythonRequests,
}

impl TlsClientKind {
    /// All stacks.
    pub const ALL: [TlsClientKind; 5] = [
        TlsClientKind::Chromium,
        TlsClientKind::Firefox,
        TlsClientKind::Safari,
        TlsClientKind::GoHttp,
        TlsClientKind::PythonRequests,
    ];

    /// Build a fresh ClientHello for this stack. Randomness covers what
    /// genuinely varies per connection (random, session id, GREASE choice);
    /// the JA3 digest is invariant across draws.
    pub fn client_hello(self, sni: &str, rng: &mut Splittable) -> ClientHello {
        let mut random = [0u8; 32];
        for b in &mut random {
            *b = rng.next_u64() as u8;
        }
        let mut session_id = vec![0u8; 32];
        for b in &mut session_id {
            *b = rng.next_u64() as u8;
        }
        let grease = |rng: &mut Splittable| GREASE_VALUES[rng.next_below(16) as usize];

        let (cipher_suites, extensions) = match self {
            TlsClientKind::Chromium => {
                let g1 = grease(rng);
                let g2 = grease(rng);
                let mut ciphers = vec![g1];
                ciphers.extend([
                    0x1301, 0x1302, 0x1303, 0xc02b, 0xc02f, 0xc02c, 0xc030, 0xcca9, 0xcca8, 0xc013,
                    0xc014, 0x009c, 0x009d, 0x002f, 0x0035,
                ]);
                let exts = vec![
                    Extension::empty(g2),
                    Extension::sni(sni),
                    Extension::empty(ext_type::EXTENDED_MASTER_SECRET),
                    Extension::empty(ext_type::RENEGOTIATION_INFO),
                    Extension::supported_groups(&[grease(rng), 29, 23, 24]),
                    Extension::ec_point_formats(&[0]),
                    Extension::empty(ext_type::SESSION_TICKET),
                    Extension::empty(ext_type::ALPN),
                    Extension::empty(ext_type::STATUS_REQUEST),
                    Extension::empty(ext_type::SIGNATURE_ALGORITHMS),
                    Extension::empty(ext_type::SIGNED_CERT_TIMESTAMP),
                    Extension::empty(ext_type::KEY_SHARE),
                    Extension::empty(ext_type::PRE_SHARED_KEY_MODES),
                    Extension::empty(ext_type::SUPPORTED_VERSIONS),
                    Extension::empty(ext_type::COMPRESS_CERTIFICATE),
                    Extension::empty(ext_type::APPLICATION_SETTINGS),
                    Extension::empty(ext_type::PADDING),
                ];
                (ciphers, exts)
            }
            TlsClientKind::Firefox => {
                let ciphers = vec![
                    0x1301, 0x1303, 0x1302, 0xc02b, 0xc02f, 0xcca9, 0xcca8, 0xc02c, 0xc030, 0xc00a,
                    0xc009, 0xc013, 0xc014, 0x0033, 0x0039, 0x002f, 0x0035,
                ];
                let exts = vec![
                    Extension::sni(sni),
                    Extension::empty(ext_type::EXTENDED_MASTER_SECRET),
                    Extension::empty(ext_type::RENEGOTIATION_INFO),
                    Extension::supported_groups(&[29, 23, 24, 25, 256, 257]),
                    Extension::ec_point_formats(&[0]),
                    Extension::empty(ext_type::SESSION_TICKET),
                    Extension::empty(ext_type::ALPN),
                    Extension::empty(ext_type::STATUS_REQUEST),
                    Extension::empty(ext_type::DELEGATED_CREDENTIAL),
                    Extension::empty(ext_type::KEY_SHARE),
                    Extension::empty(ext_type::SUPPORTED_VERSIONS),
                    Extension::empty(ext_type::SIGNATURE_ALGORITHMS),
                    Extension::empty(ext_type::PRE_SHARED_KEY_MODES),
                    Extension::empty(ext_type::RECORD_SIZE_LIMIT),
                    Extension::empty(ext_type::PADDING),
                ];
                (ciphers, exts)
            }
            TlsClientKind::Safari => {
                let g1 = grease(rng);
                let g2 = grease(rng);
                let mut ciphers = vec![g1];
                ciphers.extend([
                    0x1301, 0x1302, 0x1303, 0xc02c, 0xc02b, 0xcca9, 0xc030, 0xc02f, 0xcca8, 0xc00a,
                    0xc009, 0xc014, 0xc013, 0x009d, 0x009c, 0x0035, 0x002f, 0xc008, 0xc012, 0x000a,
                ]);
                let exts = vec![
                    Extension::empty(g2),
                    Extension::sni(sni),
                    Extension::empty(ext_type::EXTENDED_MASTER_SECRET),
                    Extension::empty(ext_type::RENEGOTIATION_INFO),
                    Extension::supported_groups(&[grease(rng), 29, 23, 24, 25]),
                    Extension::ec_point_formats(&[0]),
                    Extension::empty(ext_type::ALPN),
                    Extension::empty(ext_type::STATUS_REQUEST),
                    Extension::empty(ext_type::SIGNATURE_ALGORITHMS),
                    Extension::empty(ext_type::SIGNED_CERT_TIMESTAMP),
                    Extension::empty(ext_type::KEY_SHARE),
                    Extension::empty(ext_type::PRE_SHARED_KEY_MODES),
                    Extension::empty(ext_type::SUPPORTED_VERSIONS),
                    Extension::empty(ext_type::COMPRESS_CERTIFICATE),
                    Extension::empty(ext_type::PADDING),
                ];
                (ciphers, exts)
            }
            TlsClientKind::GoHttp => {
                let ciphers = vec![
                    0xc02f, 0xc030, 0xc02b, 0xc02c, 0xcca8, 0xcca9, 0xc013, 0xc009, 0xc014, 0xc00a,
                    0x009c, 0x009d, 0x002f, 0x0035, 0xc012, 0x000a, 0x1301, 0x1302, 0x1303,
                ];
                let exts = vec![
                    Extension::sni(sni),
                    Extension::empty(ext_type::STATUS_REQUEST),
                    Extension::supported_groups(&[29, 23, 24, 25]),
                    Extension::ec_point_formats(&[0]),
                    Extension::empty(ext_type::SIGNATURE_ALGORITHMS),
                    Extension::empty(ext_type::RENEGOTIATION_INFO),
                    Extension::empty(ext_type::SIGNED_CERT_TIMESTAMP),
                    Extension::empty(ext_type::SUPPORTED_VERSIONS),
                    Extension::empty(ext_type::KEY_SHARE),
                ];
                (ciphers, exts)
            }
            TlsClientKind::PythonRequests => {
                let ciphers = vec![
                    0x1302, 0x1303, 0x1301, 0xc02c, 0xc030, 0x009f, 0xcca9, 0xcca8, 0xccaa, 0xc02b,
                    0xc02f, 0x009e, 0xc024, 0xc028, 0x006b, 0xc023, 0xc027, 0x0067, 0xc00a, 0xc014,
                    0x0039, 0xc009, 0xc013, 0x0033, 0x009d, 0x009c, 0x003d, 0x003c, 0x0035, 0x002f,
                    0x00ff,
                ];
                let exts = vec![
                    Extension::sni(sni),
                    Extension::ec_point_formats(&[0, 1, 2]),
                    Extension::supported_groups(&[29, 23, 30, 25, 24]),
                    Extension::empty(ext_type::SESSION_TICKET),
                    Extension::empty(ext_type::EXTENDED_MASTER_SECRET),
                    Extension::empty(ext_type::SIGNATURE_ALGORITHMS),
                    Extension::empty(ext_type::SUPPORTED_VERSIONS),
                    Extension::empty(ext_type::PRE_SHARED_KEY_MODES),
                    Extension::empty(ext_type::KEY_SHARE),
                ];
                (ciphers, exts)
            }
        };

        ClientHello {
            version: 0x0303,
            random,
            session_id,
            cipher_suites,
            compression: vec![0],
            extensions,
        }
    }

    /// The stack's stable JA3 digest (computed once; GREASE-independent).
    pub fn ja3(self) -> &'static str {
        static DIGESTS: OnceLock<[String; 5]> = OnceLock::new();
        let all = DIGESTS.get_or_init(|| {
            let mut rng = Splittable::new(0x7152);
            TlsClientKind::ALL.map(|k| ja3_digest(&k.client_hello("probe.example", &mut rng)))
        });
        let idx = TlsClientKind::ALL.iter().position(|k| *k == self).unwrap();
        &all[idx]
    }

    /// The stack's stable JA4-style descriptor.
    pub fn ja4(self) -> &'static str {
        static DESCS: OnceLock<[String; 5]> = OnceLock::new();
        let all = DESCS.get_or_init(|| {
            let mut rng = Splittable::new(0x7453);
            TlsClientKind::ALL
                .map(|k| crate::ja3::ja4_descriptor(&k.client_hello("probe.example", &mut rng)))
        });
        let idx = TlsClientKind::ALL.iter().position(|k| *k == self).unwrap();
        &all[idx]
    }

    /// The TLS facet a request carried by this stack presents — the
    /// JA3/JA4 digests of its synthesized ClientHello, interned once.
    pub fn facet(self) -> fp_types::TlsFacet {
        fp_types::TlsFacet::observed(fp_types::sym(self.ja3()), fp_types::sym(self.ja4()))
    }

    /// Which stack a given UA-parser browser family genuinely uses.
    pub fn for_ua_browser(ua_browser: &str) -> Option<TlsClientKind> {
        match ua_browser {
            "Chrome" | "Chrome Mobile" | "Edge" | "Samsung Internet" | "MiuiBrowser" => {
                Some(TlsClientKind::Chromium)
            }
            "Firefox" => Some(TlsClientKind::Firefox),
            "Safari" | "Mobile Safari" | "Chrome Mobile iOS" | "Firefox iOS" => {
                Some(TlsClientKind::Safari)
            }
            _ => None,
        }
    }
}

/// The JA3 digest a truthful client with this UA-parser browser family
/// would present — the cross-layer consistency anchor.
pub fn expected_ja3_for_ua_browser(ua_browser: &str) -> Option<&'static str> {
    TlsClientKind::for_ua_browser(ua_browser).map(|k| k.ja3())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clienthello::ClientHello;

    #[test]
    fn ja3_is_stable_across_draws() {
        let mut rng = Splittable::new(9);
        for kind in TlsClientKind::ALL {
            let a = ja3_digest(&kind.client_hello("a.example", &mut rng));
            let b = ja3_digest(&kind.client_hello("b.example", &mut rng));
            assert_eq!(a, b, "{kind:?} JA3 must not vary with GREASE/SNI");
            assert_eq!(a, kind.ja3());
        }
    }

    #[test]
    fn stacks_have_distinct_ja3() {
        let mut seen = std::collections::HashSet::new();
        for kind in TlsClientKind::ALL {
            assert!(seen.insert(kind.ja3().to_owned()), "{kind:?} collides");
        }
    }

    #[test]
    fn hellos_roundtrip_the_wire() {
        let mut rng = Splittable::new(10);
        for kind in TlsClientKind::ALL {
            let hello = kind.client_hello("wire.example", &mut rng);
            let parsed = ClientHello::parse(&hello.to_wire()).unwrap();
            assert_eq!(parsed, hello, "{kind:?}");
            assert_eq!(parsed.server_name().as_deref(), Some("wire.example"));
        }
    }

    #[test]
    fn ua_browser_mapping() {
        assert_eq!(
            TlsClientKind::for_ua_browser("Chrome"),
            Some(TlsClientKind::Chromium)
        );
        assert_eq!(
            TlsClientKind::for_ua_browser("Mobile Safari"),
            Some(TlsClientKind::Safari)
        );
        assert_eq!(
            TlsClientKind::for_ua_browser("Chrome Mobile iOS"),
            Some(TlsClientKind::Safari),
            "CriOS is WebKit, so its TLS is Apple's"
        );
        assert_eq!(TlsClientKind::for_ua_browser("Other"), None);
    }

    #[test]
    fn go_stack_mismatches_every_browser_ua() {
        let go = TlsClientKind::GoHttp.ja3();
        for ua in ["Chrome", "Firefox", "Mobile Safari", "Safari", "Edge"] {
            assert_ne!(expected_ja3_for_ua_browser(ua), Some(go), "{ua}");
        }
    }
}
