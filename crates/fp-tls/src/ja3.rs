//! JA3 and JA4-style ClientHello digests.
//!
//! JA3 (Salesforce, 2017) is the de-facto network-layer browser fingerprint:
//! `SSLVersion,Ciphers,Extensions,EllipticCurves,EllipticCurvePointFormats`
//! joined with `-` inside fields and `,` between, GREASE stripped, then MD5.
//!
//! The JA4 descriptor here follows the published field layout
//! (`t<ver><sni><cc><ec><alpn>_<cipher-hash>_<ext-hash>`) but substitutes a
//! truncated MD5 where JA4 specifies truncated SHA-256 — this repo has no
//! SHA-256 and the digest only needs to discriminate, not interoperate.
//! The substitution is documented in DESIGN.md.

use crate::clienthello::{ext_type, is_grease, ClientHello};
use crate::md5::md5_hex;

/// The JA3 fingerprint string (pre-hash form).
pub fn ja3_string(hello: &ClientHello) -> String {
    let ciphers: Vec<String> = hello
        .cipher_suites
        .iter()
        .filter(|c| !is_grease(**c))
        .map(|c| c.to_string())
        .collect();
    let exts: Vec<String> = hello
        .extensions
        .iter()
        .filter(|e| !is_grease(e.typ))
        .map(|e| e.typ.to_string())
        .collect();
    let curves: Vec<String> = hello
        .supported_groups()
        .iter()
        .filter(|g| !is_grease(**g))
        .map(|g| g.to_string())
        .collect();
    let formats: Vec<String> = hello
        .ec_point_formats()
        .iter()
        .map(|f| f.to_string())
        .collect();
    format!(
        "{},{},{},{},{}",
        hello.version,
        ciphers.join("-"),
        exts.join("-"),
        curves.join("-"),
        formats.join("-")
    )
}

/// The JA3 digest: lowercase MD5 hex of [`ja3_string`].
pub fn ja3_digest(hello: &ClientHello) -> String {
    md5_hex(ja3_string(hello).as_bytes())
}

/// A JA4-style descriptor (see module docs for the digest substitution).
pub fn ja4_descriptor(hello: &ClientHello) -> String {
    let tls13 = hello
        .extensions
        .iter()
        .any(|e| e.typ == ext_type::SUPPORTED_VERSIONS);
    let ver = if tls13 { "13" } else { "12" };
    let sni = if hello.server_name().is_some() {
        "d"
    } else {
        "i"
    };
    let ciphers: Vec<u16> = hello
        .cipher_suites
        .iter()
        .copied()
        .filter(|c| !is_grease(*c))
        .collect();
    let exts: Vec<u16> = hello
        .extensions
        .iter()
        .map(|e| e.typ)
        .filter(|t| !is_grease(*t))
        .collect();
    let alpn = if exts.contains(&ext_type::ALPN) {
        "h2"
    } else {
        "00"
    };

    // JA4 sorts ciphers and extensions before hashing (order-insensitive
    // half), unlike JA3.
    let mut sorted_ciphers = ciphers.clone();
    sorted_ciphers.sort_unstable();
    let mut sorted_exts = exts.clone();
    sorted_exts.sort_unstable();
    let cipher_str = join_hex(&sorted_ciphers);
    let ext_str = join_hex(&sorted_exts);

    format!(
        "t{ver}{sni}{:02}{:02}{alpn}_{}_{}",
        ciphers.len().min(99),
        exts.len().min(99),
        &md5_hex(cipher_str.as_bytes())[..12],
        &md5_hex(ext_str.as_bytes())[..12],
    )
}

fn join_hex(vals: &[u16]) -> String {
    vals.iter()
        .map(|v| format!("{v:04x}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clienthello::{Extension, GREASE_VALUES};

    fn hello(with_grease: bool) -> ClientHello {
        let mut ciphers = vec![0x1301u16, 0x1302, 0xc02b];
        let mut extensions = vec![
            Extension::sni("example.com"),
            Extension::supported_groups(&[29, 23]),
            Extension::ec_point_formats(&[0]),
            Extension::empty(ext_type::SUPPORTED_VERSIONS),
            Extension::empty(ext_type::ALPN),
        ];
        if with_grease {
            ciphers.insert(0, GREASE_VALUES[3]);
            extensions.insert(0, Extension::empty(GREASE_VALUES[8]));
        }
        ClientHello {
            version: 0x0303,
            random: [1; 32],
            session_id: vec![2; 32],
            cipher_suites: ciphers,
            compression: vec![0],
            extensions,
        }
    }

    #[test]
    fn ja3_string_layout() {
        let s = ja3_string(&hello(false));
        assert_eq!(s, "771,4865-4866-49195,0-10-11-43-16,29-23,0");
    }

    #[test]
    fn grease_does_not_change_ja3() {
        assert_eq!(ja3_digest(&hello(false)), ja3_digest(&hello(true)));
    }

    #[test]
    fn ja3_digest_is_md5_of_string() {
        let h = hello(false);
        assert_eq!(
            ja3_digest(&h),
            crate::md5::md5_hex(ja3_string(&h).as_bytes())
        );
        assert_eq!(ja3_digest(&h).len(), 32);
    }

    #[test]
    fn ja4_shape() {
        let d = ja4_descriptor(&hello(false));
        assert!(d.starts_with("t13d0305h2_"), "{d}");
        let parts: Vec<&str> = d.split('_').collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1].len(), 12);
        assert_eq!(parts[2].len(), 12);
    }

    #[test]
    fn ja4_order_insensitive_ja3_order_sensitive() {
        let a = hello(false);
        let mut b = a.clone();
        b.cipher_suites.swap(0, 2);
        assert_ne!(ja3_digest(&a), ja3_digest(&b), "JA3 keeps offer order");
        let ja4_a = ja4_descriptor(&a).split('_').nth(1).unwrap().to_owned();
        let ja4_b = ja4_descriptor(&b).split('_').nth(1).unwrap().to_owned();
        assert_eq!(ja4_a, ja4_b, "JA4 cipher half sorts");
    }

    #[test]
    fn ja4_version_and_sni_flags() {
        let mut h = hello(false);
        h.extensions
            .retain(|e| e.typ != ext_type::SUPPORTED_VERSIONS);
        h.extensions.retain(|e| e.typ != ext_type::SERVER_NAME);
        let d = ja4_descriptor(&h);
        assert!(d.starts_with("t12i"), "{d}");
    }
}
