//! The FingerprintJS-style collector.
//!
//! [`Collector::collect`] renders a (device, browser, locale) triple into a
//! complete [`Fingerprint`] in which **every attribute is consistent with
//! every other** — this is what a real browser on real hardware produces.
//! Evasive bots start from such a fingerprint and then alter attributes
//! (`fp-botnet`), which is precisely where inconsistencies creep in.

use crate::browser::BrowserProfile;
use crate::catalog;
use crate::device::{DeviceKind, DeviceProfile};
use crate::ua;
use fp_types::{AttrId, AttrValue, Fingerprint, Splittable};

/// Locale facts injected by the caller (the geo substrate lives in
/// `fp-netsim`; this keeps the crates acyclic).
#[derive(Clone, Debug)]
pub struct LocaleSpec {
    /// IANA timezone name, e.g. `Europe/Paris`.
    pub timezone: &'static str,
    /// `Date.getTimezoneOffset()` in minutes (UTC − local; Paris = −60).
    pub offset_minutes: i32,
    /// `navigator.language`.
    pub language: &'static str,
    /// `navigator.languages`.
    pub languages: &'static [&'static str],
    /// Coarse region string reported via `navigator.geolocation`.
    pub geo_region: &'static str,
}

impl LocaleSpec {
    /// A neutral en-US locale (used in tests and as a fallback).
    pub fn en_us() -> LocaleSpec {
        LocaleSpec {
            timezone: "America/Los_Angeles",
            offset_minutes: 480,
            language: "en-US",
            languages: &["en-US", "en"],
            geo_region: "United States of America/California",
        }
    }
}

/// Renders consistent fingerprints.
pub struct Collector;

impl Collector {
    /// Produce the complete, internally consistent fingerprint a real
    /// browser `browser` on device `device` in locale `locale` yields.
    ///
    /// `rng` only drives *legitimate* within-configuration variety (canvas
    /// noise does not exist for real devices; audio values are stable per
    /// device+browser), so the same inputs give the same fingerprint.
    pub fn collect(
        device: &DeviceProfile,
        browser: &BrowserProfile,
        locale: &LocaleSpec,
    ) -> Fingerprint {
        let mut fp = Fingerprint::new();
        let ua_string = ua::synthesize(device, browser);
        let parsed = ua::parse_user_agent(&ua_string);

        // HTTP / UA layer.
        fp.set(AttrId::UserAgent, ua_string.as_str());
        fp.set(AttrId::UaDevice, parsed.device.as_str());
        fp.set(AttrId::UaBrowser, parsed.browser.as_str());
        fp.set(AttrId::UaOs, parsed.os.as_str());

        // navigator.*
        fp.set(AttrId::Platform, device.platform);
        fp.set(AttrId::Vendor, browser.family.vendor());
        fp.set(
            AttrId::VendorFlavors,
            AttrValue::list(browser.family.vendor_flavors().iter().copied()),
        );
        fp.set(AttrId::ProductSub, browser.family.product_sub());
        fp.set(AttrId::Webdriver, false);
        fp.set(
            AttrId::Plugins,
            AttrValue::list(browser.family.plugins(device.kind).iter().copied()),
        );
        fp.set(
            AttrId::MimeTypes,
            AttrValue::list(browser.family.mime_types(device.kind).iter().copied()),
        );
        fp.set(AttrId::HardwareConcurrency, i64::from(device.cores));
        // deviceMemory is a Chromium-only API; Safari/Firefox leave it out.
        if browser.family.is_chromium() {
            fp.set(AttrId::DeviceMemory, AttrValue::float(device.device_memory));
        }
        if matches!(browser.family, crate::browser::BrowserFamily::Firefox) {
            let oscpu = match device.kind {
                DeviceKind::WindowsDesktop => "Windows NT 10.0; Win64; x64",
                DeviceKind::Mac => "Intel Mac OS X 10.15",
                DeviceKind::LinuxDesktop => "Linux x86_64",
                _ => "Linux armv8l",
            };
            fp.set(AttrId::OsCpu, oscpu);
        }
        fp.set(AttrId::CookieEnabled, true);

        // Screen.
        let (w, h) = device.resolution;
        fp.set(AttrId::ScreenResolution, (w, h));
        let frame = u16::from(device.screen_frame);
        fp.set(AttrId::AvailResolution, (w, h.saturating_sub(frame)));
        fp.set(AttrId::ColorDepth, i64::from(device.color_depth));
        fp.set(AttrId::ColorGamut, device.color_gamut);
        fp.set(AttrId::Hdr, device.color_gamut != "srgb");
        fp.set(AttrId::Contrast, 0i64);
        fp.set(AttrId::ForcedColors, false);
        fp.set(AttrId::ReducedMotion, false);
        fp.set(AttrId::ScreenFrame, i64::from(device.screen_frame));
        fp.set(AttrId::TouchSupport, device.touch_summary());
        fp.set(AttrId::MaxTouchPoints, i64::from(device.max_touch_points));

        // Locale / location.
        fp.set(AttrId::Timezone, locale.timezone);
        fp.set(AttrId::TimezoneOffset, i64::from(locale.offset_minutes));
        fp.set(AttrId::Language, locale.language);
        fp.set(
            AttrId::Languages,
            AttrValue::list(locale.languages.iter().copied()),
        );
        fp.set(AttrId::NavGeoRegion, locale.geo_region);

        // Rendering / fonts.
        let fonts: &[&str] = match device.kind {
            DeviceKind::WindowsDesktop => &catalog::WINDOWS_FONTS,
            DeviceKind::Mac | DeviceKind::IPhone | DeviceKind::IPad => &catalog::APPLE_FONTS,
            DeviceKind::LinuxDesktop => &catalog::LINUX_FONTS,
            _ => &catalog::ANDROID_FONTS,
        };
        fp.set(AttrId::Fonts, AttrValue::list(fonts.iter().copied()));
        fp.set(
            AttrId::MonospaceWidth,
            AttrValue::float(catalog::monospace_width_for_os(device.kind.ua_os())),
        );
        fp.set(
            AttrId::Canvas,
            Self::canvas_digest(device, browser).as_str(),
        );
        fp.set(
            AttrId::Audio,
            AttrValue::float(Self::audio_value(device, browser)),
        );
        fp.set(AttrId::WebGlVendor, device.webgl_vendor);
        fp.set(AttrId::WebGlRenderer, device.webgl_renderer);

        // Storage.
        fp.set(AttrId::SessionStorage, true);
        fp.set(AttrId::LocalStorage, true);
        fp.set(AttrId::IndexedDb, true);

        // HTTP header layer. Accept-Language derives from the language
        // list; client hints exist only on Chromium engines and always
        // agree with the real platform there.
        fp.set(
            AttrId::AcceptLanguage,
            Self::accept_language(locale).as_str(),
        );
        if browser.family.is_chromium() {
            fp.set(
                AttrId::SecChUa,
                format!("\"Chromium\";v=\"{}\"", browser.major).as_str(),
            );
            fp.set(AttrId::SecChUaPlatform, ch_platform(device.kind));
            fp.set(
                AttrId::SecChUaMobile,
                if device.kind.is_mobile() { "?1" } else { "?0" },
            );
        }

        fp
    }

    /// `Accept-Language` as browsers derive it from `navigator.languages`.
    fn accept_language(locale: &LocaleSpec) -> String {
        let mut parts = Vec::with_capacity(locale.languages.len());
        for (i, lang) in locale.languages.iter().enumerate() {
            if i == 0 {
                parts.push((*lang).to_owned());
            } else {
                parts.push(format!("{lang};q=0.{}", 9 - i.min(8)));
            }
        }
        parts.join(",")
    }

    /// Sample a fully consistent fingerprint for a random real device of
    /// `kind` (device + default browser + supplied locale).
    pub fn sample_consistent(
        kind: DeviceKind,
        locale: &LocaleSpec,
        rng: &mut Splittable,
    ) -> Fingerprint {
        let device = DeviceProfile::sample(kind, rng);
        let defaults = crate::browser::BrowserFamily::defaults_for(kind);
        let weights: Vec<f64> = defaults.iter().map(|(_, w)| *w).collect();
        let family = defaults[rng.pick_weighted(&weights)].0;
        let browser = BrowserProfile::contemporary(family, rng);
        Self::collect(&device, &browser, locale)
    }

    /// Canvas digests are stable per (GPU, engine) pair — two identical
    /// devices render identically.
    fn canvas_digest(device: &DeviceProfile, browser: &BrowserProfile) -> String {
        let h = fp_types::mix3(
            0xCA17A5,
            fnv(device.webgl_renderer),
            fnv(browser.family.name()),
        );
        format!("canvas:{h:016x}")
    }

    /// OfflineAudioContext values cluster by engine family.
    fn audio_value(device: &DeviceProfile, browser: &BrowserProfile) -> f64 {
        let base = if browser.family.is_chromium() {
            124.043
        } else {
            35.749
        };
        let jitter = (fp_types::mix2(fnv(device.webgl_renderer), fnv(browser.family.name())) % 1000)
            as f64
            / 1e6;
        base + jitter
    }
}

/// `Sec-CH-UA-Platform` value for a device kind (Chromium's vocabulary).
pub fn ch_platform(kind: DeviceKind) -> &'static str {
    match kind {
        DeviceKind::WindowsDesktop => "Windows",
        DeviceKind::Mac => "macOS",
        DeviceKind::LinuxDesktop => "Linux",
        DeviceKind::AndroidPhone | DeviceKind::AndroidTablet => "Android",
        // No Chromium engine exists on iOS; the value is never emitted
        // there by a truthful client.
        DeviceKind::IPhone | DeviceKind::IPad => "iOS",
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::browser::BrowserFamily;

    fn collect_one(kind: DeviceKind, family: BrowserFamily) -> Fingerprint {
        let mut rng = Splittable::new(11);
        let d = DeviceProfile::sample(kind, &mut rng);
        let b = BrowserProfile::contemporary(family, &mut rng);
        Collector::collect(&d, &b, &LocaleSpec::en_us())
    }

    #[test]
    fn iphone_fingerprint_is_complete_and_consistent() {
        let fp = collect_one(DeviceKind::IPhone, BrowserFamily::MobileSafari);
        assert_eq!(fp.get(AttrId::UaDevice).as_str(), Some("iPhone"));
        assert_eq!(fp.get(AttrId::Platform).as_str(), Some("iPhone"));
        assert_eq!(fp.get(AttrId::MaxTouchPoints).as_int(), Some(5));
        assert_eq!(
            fp.get(AttrId::TouchSupport).as_str(),
            Some("touchEvent/touchStart")
        );
        assert_eq!(
            fp.get(AttrId::Vendor).as_str(),
            Some("Apple Computer, Inc.")
        );
        assert!(
            fp.get(AttrId::DeviceMemory).is_missing(),
            "Safari has no deviceMemory API"
        );
        let res = fp.get(AttrId::ScreenResolution).as_resolution().unwrap();
        assert!(catalog::is_real_iphone_resolution(res));
        assert!(fp.get(AttrId::Plugins).as_list().unwrap().is_empty());
    }

    #[test]
    fn windows_chrome_fingerprint() {
        let fp = collect_one(DeviceKind::WindowsDesktop, BrowserFamily::Chrome);
        assert_eq!(fp.get(AttrId::Platform).as_str(), Some("Win32"));
        assert_eq!(fp.get(AttrId::Vendor).as_str(), Some("Google Inc."));
        assert_eq!(fp.get(AttrId::Plugins).as_list().unwrap().len(), 5);
        assert!(!fp.get(AttrId::DeviceMemory).is_missing());
        assert_eq!(fp.get(AttrId::MaxTouchPoints).as_int(), Some(0));
        assert!(fp.get(AttrId::MonospaceWidth).as_f64().unwrap() < 131.5);
    }

    #[test]
    fn firefox_has_oscpu_but_no_device_memory() {
        let fp = collect_one(DeviceKind::LinuxDesktop, BrowserFamily::Firefox);
        assert!(!fp.get(AttrId::OsCpu).is_missing());
        assert!(fp.get(AttrId::DeviceMemory).is_missing());
        assert_eq!(fp.get(AttrId::ProductSub).as_str(), Some("20100101"));
    }

    #[test]
    fn collection_is_deterministic() {
        let a = collect_one(DeviceKind::Mac, BrowserFamily::Safari);
        let b = collect_one(DeviceKind::Mac, BrowserFamily::Safari);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn sample_consistent_produces_valid_browser_for_kind() {
        let mut rng = Splittable::new(5);
        for kind in DeviceKind::ALL {
            for _ in 0..10 {
                let fp = Collector::sample_consistent(kind, &LocaleSpec::en_us(), &mut rng);
                assert_eq!(fp.get(AttrId::UaOs).as_str(), Some(kind.ua_os()));
                assert_eq!(fp.get(AttrId::Webdriver).as_int(), Some(0));
            }
        }
    }

    #[test]
    fn avail_resolution_subtracts_frame() {
        let fp = collect_one(DeviceKind::WindowsDesktop, BrowserFamily::Chrome);
        let (w, h) = fp.get(AttrId::ScreenResolution).as_resolution().unwrap();
        let (aw, ah) = fp.get(AttrId::AvailResolution).as_resolution().unwrap();
        let frame = fp.get(AttrId::ScreenFrame).as_int().unwrap() as u16;
        assert_eq!(aw, w);
        assert_eq!(ah, h - frame);
    }
}
