//! Browser software profiles.

use crate::catalog;
use crate::device::DeviceKind;
use fp_tls::TlsClientKind;

/// Browser families observed in the campaign (the paper's `UA Browser`
/// attribute values follow common UA-parser naming).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BrowserFamily {
    Chrome,
    ChromeMobile,
    ChromeMobileIos,
    Safari,
    MobileSafari,
    Firefox,
    Edge,
    SamsungInternet,
    MiuiBrowser,
}

impl BrowserFamily {
    /// All families.
    pub const ALL: [BrowserFamily; 9] = [
        BrowserFamily::Chrome,
        BrowserFamily::ChromeMobile,
        BrowserFamily::ChromeMobileIos,
        BrowserFamily::Safari,
        BrowserFamily::MobileSafari,
        BrowserFamily::Firefox,
        BrowserFamily::Edge,
        BrowserFamily::SamsungInternet,
        BrowserFamily::MiuiBrowser,
    ];

    /// UA-parser display name (the `UA Browser` attribute).
    pub fn name(self) -> &'static str {
        match self {
            BrowserFamily::Chrome => "Chrome",
            BrowserFamily::ChromeMobile => "Chrome Mobile",
            BrowserFamily::ChromeMobileIos => "Chrome Mobile iOS",
            BrowserFamily::Safari => "Safari",
            BrowserFamily::MobileSafari => "Mobile Safari",
            BrowserFamily::Firefox => "Firefox",
            BrowserFamily::Edge => "Edge",
            BrowserFamily::SamsungInternet => "Samsung Internet",
            BrowserFamily::MiuiBrowser => "MiuiBrowser",
        }
    }

    /// Is the engine Chromium-based? (Relevant for the BotD headless check:
    /// a Chromium desktop UA with an empty plugin array is the headless
    /// signature.)
    pub fn is_chromium(self) -> bool {
        matches!(
            self,
            BrowserFamily::Chrome
                | BrowserFamily::ChromeMobile
                | BrowserFamily::Edge
                | BrowserFamily::SamsungInternet
                | BrowserFamily::MiuiBrowser
        )
    }

    /// Which OSes can genuinely run this browser (the oracle's
    /// `UA Browser` × `UA OS` constraint, Table 6 "Browser" group).
    pub fn valid_os(self) -> &'static [&'static str] {
        match self {
            BrowserFamily::Chrome => &["Windows", "Mac OS X", "Linux"],
            BrowserFamily::ChromeMobile => &["Android"],
            BrowserFamily::ChromeMobileIos => &["iOS"],
            BrowserFamily::Safari => &["Mac OS X"],
            BrowserFamily::MobileSafari => &["iOS"],
            BrowserFamily::Firefox => &["Windows", "Mac OS X", "Linux", "Android"],
            BrowserFamily::Edge => &["Windows", "Mac OS X"],
            BrowserFamily::SamsungInternet => &["Android"],
            BrowserFamily::MiuiBrowser => &["Android"],
        }
    }

    /// The TLS stack a genuine installation of this browser greets servers
    /// with — the expected network-layer profile the cross-layer detector
    /// checks observed handshakes against. iOS browsers are WebKit shells,
    /// so every one of them presents Apple's hello.
    pub fn tls_client_kind(self) -> TlsClientKind {
        match self {
            BrowserFamily::Chrome
            | BrowserFamily::ChromeMobile
            | BrowserFamily::Edge
            | BrowserFamily::SamsungInternet
            | BrowserFamily::MiuiBrowser => TlsClientKind::Chromium,
            BrowserFamily::Firefox => TlsClientKind::Firefox,
            BrowserFamily::Safari
            | BrowserFamily::MobileSafari
            | BrowserFamily::ChromeMobileIos => TlsClientKind::Safari,
        }
    }

    /// The TLS facet (JA3/JA4 digests) a truthful request from this
    /// browser carries — [`BrowserFamily::tls_client_kind`] synthesised
    /// and digested.
    pub fn tls_facet(self) -> fp_types::TlsFacet {
        self.tls_client_kind().facet()
    }

    /// `navigator.vendor` for this browser.
    pub fn vendor(self) -> &'static str {
        match self {
            BrowserFamily::Safari
            | BrowserFamily::MobileSafari
            | BrowserFamily::ChromeMobileIos => "Apple Computer, Inc.",
            BrowserFamily::Firefox => "",
            _ => "Google Inc.",
        }
    }

    /// `navigator.productSub`.
    pub fn product_sub(self) -> &'static str {
        match self {
            BrowserFamily::Firefox => "20100101",
            _ => "20030107",
        }
    }

    /// FingerprintJS vendor-flavour markers.
    pub fn vendor_flavors(self) -> &'static [&'static str] {
        match self {
            BrowserFamily::Chrome | BrowserFamily::ChromeMobile | BrowserFamily::Edge => {
                &["chrome"]
            }
            BrowserFamily::ChromeMobileIos => &["chrome-ios"],
            BrowserFamily::Safari | BrowserFamily::MobileSafari => &["safari"],
            BrowserFamily::SamsungInternet | BrowserFamily::MiuiBrowser => &["chrome"],
            BrowserFamily::Firefox => &[],
        }
    }

    /// Plugin list this browser genuinely exposes on `kind`.
    pub fn plugins(self, kind: DeviceKind) -> &'static [&'static str] {
        let mobile = kind.is_mobile();
        match self {
            // Mobile Chromium exposes no plugins; desktop exposes the 5 PDF
            // viewers. Safari exposes none anywhere.
            BrowserFamily::Chrome | BrowserFamily::Edge if !mobile => {
                &catalog::CHROMIUM_PDF_PLUGINS
            }
            BrowserFamily::Firefox if !mobile => &catalog::FIREFOX_PDF_PLUGINS,
            _ => &[],
        }
    }

    /// MIME types consistent with [`BrowserFamily::plugins`].
    pub fn mime_types(self, kind: DeviceKind) -> &'static [&'static str] {
        if self.plugins(kind).is_empty() {
            &[]
        } else {
            &catalog::PDF_MIME_TYPES
        }
    }

    /// Default browser families per device kind with rough popularity
    /// weights, used by the consistent generators.
    pub fn defaults_for(kind: DeviceKind) -> &'static [(BrowserFamily, f64)] {
        match kind {
            DeviceKind::IPhone | DeviceKind::IPad => &[
                (BrowserFamily::MobileSafari, 0.85),
                (BrowserFamily::ChromeMobileIos, 0.15),
            ],
            DeviceKind::Mac => &[
                (BrowserFamily::Safari, 0.45),
                (BrowserFamily::Chrome, 0.45),
                (BrowserFamily::Firefox, 0.10),
            ],
            DeviceKind::WindowsDesktop => &[
                (BrowserFamily::Chrome, 0.70),
                (BrowserFamily::Edge, 0.20),
                (BrowserFamily::Firefox, 0.10),
            ],
            DeviceKind::LinuxDesktop => &[
                (BrowserFamily::Chrome, 0.55),
                (BrowserFamily::Firefox, 0.45),
            ],
            DeviceKind::AndroidPhone => &[
                (BrowserFamily::ChromeMobile, 0.75),
                (BrowserFamily::SamsungInternet, 0.17),
                (BrowserFamily::MiuiBrowser, 0.08),
            ],
            DeviceKind::AndroidTablet => &[
                (BrowserFamily::ChromeMobile, 0.85),
                (BrowserFamily::SamsungInternet, 0.15),
            ],
        }
    }
}

/// A browser pinned to a version — together with a [`crate::DeviceProfile`]
/// this fully determines the software half of a fingerprint.
#[derive(Clone, Copy, Debug)]
pub struct BrowserProfile {
    pub family: BrowserFamily,
    /// Major version (e.g. 116 for Chrome 116).
    pub major: u16,
}

impl BrowserProfile {
    /// A contemporary version for the study window (fall 2023).
    pub fn contemporary(family: BrowserFamily, rng: &mut fp_types::Splittable) -> BrowserProfile {
        let major = match family {
            BrowserFamily::Chrome
            | BrowserFamily::ChromeMobile
            | BrowserFamily::ChromeMobileIos
            | BrowserFamily::Edge => *rng.pick(&[114u16, 115, 116, 117, 118]),
            BrowserFamily::Safari | BrowserFamily::MobileSafari => *rng.pick(&[15u16, 16, 17]),
            BrowserFamily::Firefox => *rng.pick(&[115u16, 116, 117, 118]),
            BrowserFamily::SamsungInternet => *rng.pick(&[21u16, 22, 23]),
            BrowserFamily::MiuiBrowser => *rng.pick(&[13u16, 14]),
        };
        BrowserProfile { family, major }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safari_is_apple_only() {
        assert_eq!(BrowserFamily::Safari.valid_os(), &["Mac OS X"]);
        assert_eq!(BrowserFamily::MobileSafari.valid_os(), &["iOS"]);
        assert!(!BrowserFamily::Safari.valid_os().contains(&"Linux"));
    }

    #[test]
    fn vendor_matches_engine() {
        assert_eq!(BrowserFamily::Chrome.vendor(), "Google Inc.");
        assert_eq!(BrowserFamily::MobileSafari.vendor(), "Apple Computer, Inc.");
        assert_eq!(
            BrowserFamily::ChromeMobileIos.vendor(),
            "Apple Computer, Inc.",
            "Chrome on iOS uses WebKit"
        );
        assert_eq!(BrowserFamily::Firefox.vendor(), "");
    }

    #[test]
    fn desktop_chromium_has_five_pdf_plugins() {
        let p = BrowserFamily::Chrome.plugins(DeviceKind::WindowsDesktop);
        assert_eq!(p.len(), 5);
        assert!(BrowserFamily::Chrome
            .plugins(DeviceKind::AndroidPhone)
            .is_empty());
        assert!(BrowserFamily::MobileSafari
            .plugins(DeviceKind::IPhone)
            .is_empty());
        assert!(BrowserFamily::Safari.plugins(DeviceKind::Mac).is_empty());
    }

    #[test]
    fn chromium_flag() {
        assert!(BrowserFamily::Chrome.is_chromium());
        assert!(BrowserFamily::SamsungInternet.is_chromium());
        assert!(!BrowserFamily::Safari.is_chromium());
        assert!(!BrowserFamily::Firefox.is_chromium());
        assert!(
            !BrowserFamily::ChromeMobileIos.is_chromium(),
            "CriOS is WebKit"
        );
    }

    #[test]
    fn defaults_are_valid_for_their_kind() {
        for kind in DeviceKind::ALL {
            for (fam, w) in BrowserFamily::defaults_for(kind) {
                assert!(*w > 0.0);
                assert!(
                    fam.valid_os().contains(&kind.ua_os()),
                    "{:?} invalid on {:?}",
                    fam,
                    kind
                );
            }
        }
    }

    /// The cross-layer no-false-positive guarantee at the catalogue level:
    /// for every browser family, the JA3 the family's genuine TLS stack
    /// presents is exactly the JA3 expected for the `UA Browser` string a
    /// UA parser recovers from that family's synthesized User-Agent. A
    /// truthful client can therefore never trip the mismatch check.
    #[test]
    fn every_catalogue_browser_has_a_ua_consistent_ja3() {
        use crate::{parse_user_agent, ua, DeviceProfile};
        let mut rng = fp_types::Splittable::new(0x715C0);
        for kind in DeviceKind::ALL {
            for (family, _) in BrowserFamily::defaults_for(kind) {
                let device = DeviceProfile::sample(kind, &mut rng);
                let browser = BrowserProfile::contemporary(*family, &mut rng);
                let ua = ua::synthesize(&device, &browser);
                let parsed = parse_user_agent(&ua);
                let expected = fp_tls::expected_ja3_for_ua_browser(&parsed.browser);
                let facet = family.tls_facet();
                assert_eq!(
                    expected,
                    facet.ja3_str(),
                    "{family:?} on {kind:?}: UA {ua:?} parsed as {:?}",
                    parsed.browser
                );
                assert!(facet.is_observed());
                assert_eq!(facet.ja3_str(), Some(family.tls_client_kind().ja3()));
            }
        }
    }

    #[test]
    fn ios_shells_share_apples_stack() {
        assert_eq!(
            BrowserFamily::ChromeMobileIos.tls_client_kind(),
            TlsClientKind::Safari,
            "CriOS is WebKit, so its TLS is Apple's"
        );
        assert_eq!(
            BrowserFamily::SamsungInternet.tls_client_kind(),
            TlsClientKind::Chromium
        );
        assert_eq!(
            BrowserFamily::Firefox.tls_client_kind(),
            TlsClientKind::Firefox
        );
    }

    #[test]
    fn mime_types_track_plugins() {
        assert!(!BrowserFamily::Chrome
            .mime_types(DeviceKind::WindowsDesktop)
            .is_empty());
        assert!(BrowserFamily::ChromeMobile
            .mime_types(DeviceKind::AndroidPhone)
            .is_empty());
    }
}
