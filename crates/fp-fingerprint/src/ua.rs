//! User-Agent synthesis and parsing.
//!
//! Synthesis renders a (device, browser) pair into a realistic UA string;
//! parsing recovers the paper's `UA Device` / `UA Browser` / `UA OS`
//! attributes from *any* UA string (including the lies bots tell). The
//! parser is intentionally independent of the synthesizer's internals — it
//! is the honey site's view, and it must classify spoofed UAs the same way
//! a production UA parser would.

use crate::browser::{BrowserFamily, BrowserProfile};
use crate::device::{DeviceKind, DeviceProfile};

/// Synthesize a realistic User-Agent string for a device/browser pair.
pub fn synthesize(device: &DeviceProfile, browser: &BrowserProfile) -> String {
    let v = browser.major;
    match browser.family {
        BrowserFamily::MobileSafari => {
            let ios = ios_version(v).replace('.', "_");
            let cpu = if device.kind == DeviceKind::IPad {
                format!("OS {ios}")
            } else {
                format!("iPhone OS {ios}")
            };
            let dev = if device.kind == DeviceKind::IPad { "iPad" } else { "iPhone" };
            format!(
                "Mozilla/5.0 ({dev}; CPU {cpu} like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/{v}.0 Mobile/15E148 Safari/604.1"
            )
        }
        BrowserFamily::ChromeMobileIos => {
            let (dev, cpu) = if device.kind == DeviceKind::IPad {
                ("iPad", "OS 16_6")
            } else {
                ("iPhone", "iPhone OS 16_6")
            };
            format!(
                "Mozilla/5.0 ({dev}; CPU {cpu} like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) CriOS/{v}.0.0.0 Mobile/15E148 Safari/604.1"
            )
        }
        BrowserFamily::Safari => format!(
            "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/{v}.0 Safari/605.1.15"
        ),
        BrowserFamily::Chrome => {
            let os = match device.kind {
                DeviceKind::Mac => "Macintosh; Intel Mac OS X 10_15_7",
                DeviceKind::LinuxDesktop => "X11; Linux x86_64",
                _ => "Windows NT 10.0; Win64; x64",
            };
            format!("Mozilla/5.0 ({os}) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{v}.0.0.0 Safari/537.36")
        }
        BrowserFamily::Edge => {
            let os = match device.kind {
                DeviceKind::Mac => "Macintosh; Intel Mac OS X 10_15_7",
                _ => "Windows NT 10.0; Win64; x64",
            };
            format!("Mozilla/5.0 ({os}) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{v}.0.0.0 Safari/537.36 Edg/{v}.0.0.0")
        }
        BrowserFamily::Firefox => {
            let os = match device.kind {
                DeviceKind::Mac => "Macintosh; Intel Mac OS X 10.15".to_owned(),
                DeviceKind::LinuxDesktop => "X11; Linux x86_64".to_owned(),
                DeviceKind::AndroidPhone | DeviceKind::AndroidTablet => "Android 13; Mobile".to_owned(),
                _ => format!("Windows NT 10.0; Win64; x64; rv:{v}.0"),
            };
            format!("Mozilla/5.0 ({os}; rv:{v}.0) Gecko/20100101 Firefox/{v}.0")
        }
        BrowserFamily::ChromeMobile => {
            let model = device.android_model.unwrap_or("Pixel 7");
            let mobile = if device.kind == DeviceKind::AndroidTablet { "" } else { " Mobile" };
            format!(
                "Mozilla/5.0 (Linux; Android 13; {model}) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{v}.0.0.0{mobile} Safari/537.36"
            )
        }
        BrowserFamily::SamsungInternet => {
            let model = device.android_model.unwrap_or("SM-G991B");
            format!(
                "Mozilla/5.0 (Linux; Android 13; {model}) AppleWebKit/537.36 (KHTML, like Gecko) SamsungBrowser/{v}.0 Chrome/115.0.0.0 Mobile Safari/537.36"
            )
        }
        BrowserFamily::MiuiBrowser => {
            let model = device.android_model.unwrap_or("M2006C3MG");
            format!(
                "Mozilla/5.0 (Linux; U; Android 12; {model}) AppleWebKit/537.36 (KHTML, like Gecko) Version/4.0 Chrome/110.0.0.0 Mobile Safari/537.36 XiaoMi/MiuiBrowser/{v}.1.30"
            )
        }
    }
}

fn ios_version(safari_major: u16) -> String {
    format!("{}.6", safari_major.clamp(14, 17))
}

/// What a UA parser recovers from a User-Agent string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedUa {
    /// `UA Device`: `iPhone`, `iPad`, `Mac`, a model string, or `Other`.
    pub device: String,
    /// `UA Browser` family name.
    pub browser: String,
    /// `UA OS` name.
    pub os: String,
}

/// Parse a User-Agent string into the paper's three UA attributes.
///
/// Deliberately forgiving: bots send arbitrary UAs and the parser must
/// classify them like a production parser (uap-core conventions) would.
pub fn parse_user_agent(ua: &str) -> ParsedUa {
    let browser = if ua.contains("CriOS/") {
        "Chrome Mobile iOS"
    } else if ua.contains("FxiOS/") {
        "Firefox iOS"
    } else if ua.contains("SamsungBrowser/") {
        "Samsung Internet"
    } else if ua.contains("MiuiBrowser/") {
        "MiuiBrowser"
    } else if ua.contains("Edg/") || ua.contains("Edge/") {
        "Edge"
    } else if ua.contains("Firefox/") {
        "Firefox"
    } else if ua.contains("Chrome/") {
        if ua.contains("Android") {
            "Chrome Mobile"
        } else {
            "Chrome"
        }
    } else if ua.contains("Safari/") && ua.contains("Version/") {
        if ua.contains("iPhone") || ua.contains("iPad") {
            "Mobile Safari"
        } else {
            "Safari"
        }
    } else {
        "Other"
    };

    // iPad before iPhone: iPad UAs may still contain "iPhone OS".
    let (device, os) = if ua.contains("iPad") {
        ("iPad".to_owned(), "iOS")
    } else if ua.contains("iPhone") {
        ("iPhone".to_owned(), "iOS")
    } else if ua.contains("Android") {
        (android_device_from_ua(ua), "Android")
    } else if ua.contains("Macintosh") || ua.contains("Mac OS X") {
        ("Mac".to_owned(), "Mac OS X")
    } else if ua.contains("Windows") {
        ("Other".to_owned(), "Windows")
    } else if ua.contains("Linux") || ua.contains("X11") {
        ("Other".to_owned(), "Linux")
    } else {
        ("Other".to_owned(), "Other")
    };

    ParsedUa {
        device,
        browser: browser.to_owned(),
        os: os.to_owned(),
    }
}

/// Extract the device model from an Android UA: the last `;`-separated field
/// of the parenthesised system block, with any `Build/...` suffix dropped.
fn android_device_from_ua(ua: &str) -> String {
    let Some(open) = ua.find('(') else {
        return "Other".to_owned();
    };
    let Some(close) = ua[open..].find(')') else {
        return "Other".to_owned();
    };
    let block = &ua[open + 1..open + close];
    let last = block.split(';').next_back().unwrap_or("").trim();
    let model = last.split(" Build").next().unwrap_or(last).trim();
    if model.is_empty() || model == "U" || model.starts_with("Android") {
        "Other".to_owned()
    } else {
        model.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_types::Splittable;

    fn profile(kind: DeviceKind, family: BrowserFamily) -> (DeviceProfile, BrowserProfile) {
        let mut rng = Splittable::new(77);
        let d = DeviceProfile::sample(kind, &mut rng);
        let b = BrowserProfile::contemporary(family, &mut rng);
        (d, b)
    }

    #[test]
    fn synthesis_parses_back_iphone_safari() {
        let (d, b) = profile(DeviceKind::IPhone, BrowserFamily::MobileSafari);
        let ua = synthesize(&d, &b);
        let p = parse_user_agent(&ua);
        assert_eq!(p.device, "iPhone");
        assert_eq!(p.browser, "Mobile Safari");
        assert_eq!(p.os, "iOS");
    }

    #[test]
    fn synthesis_parses_back_all_valid_pairs() {
        for kind in DeviceKind::ALL {
            for (family, _) in BrowserFamily::defaults_for(kind) {
                let (d, b) = profile(kind, *family);
                let ua = synthesize(&d, &b);
                let p = parse_user_agent(&ua);
                assert_eq!(
                    p.os,
                    kind.ua_os(),
                    "os mismatch for {kind:?}/{family:?}: {ua}"
                );
                assert_eq!(
                    p.browser,
                    family.name(),
                    "browser mismatch for {kind:?}/{family:?}: {ua}"
                );
            }
        }
    }

    #[test]
    fn android_model_extraction() {
        let ua = "Mozilla/5.0 (Linux; Android 13; SM-S906N Build/TP1A) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/116.0.0.0 Mobile Safari/537.36";
        let p = parse_user_agent(ua);
        assert_eq!(p.device, "SM-S906N");
        assert_eq!(p.browser, "Chrome Mobile");
        assert_eq!(p.os, "Android");
    }

    #[test]
    fn desktop_is_other() {
        let p = parse_user_agent(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/116.0.0.0 Safari/537.36",
        );
        assert_eq!(p.device, "Other");
        assert_eq!(p.os, "Windows");
        assert_eq!(p.browser, "Chrome");
    }

    #[test]
    fn crios_detected_before_safari() {
        let p = parse_user_agent(
            "Mozilla/5.0 (iPhone; CPU iPhone OS 16_6 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) CriOS/116.0.0.0 Mobile/15E148 Safari/604.1",
        );
        assert_eq!(p.browser, "Chrome Mobile iOS");
        assert_eq!(p.device, "iPhone");
    }

    #[test]
    fn edge_detected_before_chrome() {
        let p = parse_user_agent(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/116.0.0.0 Safari/537.36 Edg/116.0.0.0",
        );
        assert_eq!(p.browser, "Edge");
    }

    #[test]
    fn garbage_ua_is_other() {
        let p = parse_user_agent("curl/8.1.2");
        assert_eq!(p.device, "Other");
        assert_eq!(p.browser, "Other");
        assert_eq!(p.os, "Other");
    }

    #[test]
    fn malformed_android_block_is_other() {
        assert_eq!(android_device_from_ua("Mozilla/5.0 Android"), "Other");
        assert_eq!(
            android_device_from_ua("Mozilla/5.0 (Linux; Android 13"),
            "Other"
        );
        assert_eq!(
            android_device_from_ua("Mozilla/5.0 (Linux; Android 13; )"),
            "Other"
        );
    }
}
