//! The validity oracle.
//!
//! Algorithm 1 in the paper is *semi*-automatic: the data-driven part ranks
//! attribute pairs by configuration explosion, and a human confirms which
//! specific value combinations are impossible in the real world. This module
//! automates that confirmation using the device catalogue, so the whole
//! mining pipeline is reproducible: given two attribute values, it answers
//! whether they can coexist on any real device.
//!
//! The oracle is deliberately conservative — it returns
//! [`Plausibility::Unknown`] whenever the catalogue has nothing to say, and
//! the miner treats only [`Plausibility::Impossible`] as a rule.

use crate::browser::BrowserFamily;
use crate::catalog;
use fp_types::{AttrId, AttrValue};

/// Oracle verdict for a value combination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Plausibility {
    /// The combination occurs on real devices.
    Valid,
    /// The combination cannot occur on any real device.
    Impossible,
    /// The catalogue has no knowledge about this pair.
    Unknown,
}

/// Stateless façade over the catalogue knowledge.
pub struct ValidityOracle;

impl ValidityOracle {
    /// Can `(attr_a, value_a)` and `(attr_b, value_b)` coexist in one real
    /// browser fingerprint? Order-insensitive.
    pub fn judge(a: AttrId, va: &AttrValue, b: AttrId, vb: &AttrValue) -> Plausibility {
        // Normalise the order so each rule is written once.
        if (b as u8) < (a as u8) {
            return Self::judge(b, vb, a, va);
        }
        use AttrId::*;
        match (a, b) {
            (UaDevice, ScreenResolution) => Self::device_resolution(va, vb),
            (UaDevice, TouchSupport) => Self::device_touch(va, vb),
            (UaDevice, MaxTouchPoints) => Self::device_touch_points(va, vb),
            (UaDevice, ColorDepth) => Self::device_color_depth(va, vb),
            (UaDevice, ColorGamut) => Self::device_color_gamut(va, vb),
            (UaDevice, DeviceMemory) => Self::device_memory(va, vb),
            (UaDevice, HardwareConcurrency) => Self::device_cores(va, vb),
            (UaDevice, Platform) => Self::device_platform(va, vb),
            (UaBrowser, UaOs) => Self::browser_os(va, vb),
            (UaBrowser, Vendor) => Self::browser_vendor(va, vb),
            (UaBrowser, Platform) => Self::browser_platform(va, vb),
            (UaBrowser, ProductSub) => Self::browser_product_sub(va, vb),
            (UaBrowser, SecChUa) => Self::browser_client_hints(va),
            (UaOs, Platform) => Self::os_platform(va, vb),
            (UaOs, SecChUaPlatform) => Self::os_ch_platform(va, vb),
            (Platform, Vendor) => Self::platform_vendor(va, vb),
            (Platform, SecChUaPlatform) => Self::platform_ch_platform(va, vb),
            (Language, AcceptLanguage) | (Languages, AcceptLanguage) => {
                Self::language_accept_language(va, vb)
            }
            (UaOs, MonospaceWidth) => Plausibility::Unknown,
            _ => Plausibility::Unknown,
        }
    }

    fn device_resolution(dev: &AttrValue, res: &AttrValue) -> Plausibility {
        let (Some(dev), Some(r)) = (dev.as_str(), res.as_resolution()) else {
            return Plausibility::Unknown;
        };
        match dev {
            "iPhone" => bool_verdict(catalog::is_real_iphone_resolution(r)),
            "iPad" => bool_verdict(catalog::is_real_ipad_resolution(r)),
            "Mac" => bool_verdict(r.0 >= 1024 && r.1 >= 640 && r.0 >= r.1),
            _ => match catalog::android_model(dev) {
                Some(m) => bool_verdict(m.resolution == r || (m.resolution.1, m.resolution.0) == r),
                None => Plausibility::Unknown,
            },
        }
    }

    fn device_touch(dev: &AttrValue, touch: &AttrValue) -> Plausibility {
        let (Some(dev), Some(t)) = (dev.as_str(), touch.as_str()) else {
            return Plausibility::Unknown;
        };
        let has_touch = t != "None";
        match dev {
            "iPhone" | "iPad" => bool_verdict(has_touch),
            "Mac" => bool_verdict(!has_touch), // no touch-screen Mac exists
            dev if catalog::android_model(dev).is_some() => bool_verdict(has_touch),
            _ => Plausibility::Unknown, // Windows desktops may have touch screens
        }
    }

    fn device_touch_points(dev: &AttrValue, mtp: &AttrValue) -> Plausibility {
        let (Some(dev), Some(n)) = (dev.as_str(), mtp.as_int()) else {
            return Plausibility::Unknown;
        };
        match dev {
            // Real iPhones/iPads report exactly 5 simultaneous touch points.
            "iPhone" | "iPad" => bool_verdict(n == 5),
            "Mac" => bool_verdict(n == 0),
            dev if catalog::android_model(dev).is_some() => bool_verdict(n == 5 || n == 10),
            _ => Plausibility::Unknown,
        }
    }

    fn device_color_depth(dev: &AttrValue, depth: &AttrValue) -> Plausibility {
        let (Some(dev), Some(d)) = (dev.as_str(), depth.as_int()) else {
            return Plausibility::Unknown;
        };
        match dev {
            // iOS reports 32-bit; the paper flags (iPhone, 16) / (iPad, 16).
            "iPhone" | "iPad" => bool_verdict(d == 32),
            "Mac" => bool_verdict(d == 24 || d == 30),
            dev if catalog::android_model(dev).is_some() => bool_verdict(d == 24 || d == 32),
            _ => Plausibility::Unknown,
        }
    }

    fn device_color_gamut(dev: &AttrValue, gamut: &AttrValue) -> Plausibility {
        let (Some(dev), Some(g)) = (dev.as_str(), gamut.as_str()) else {
            return Plausibility::Unknown;
        };
        match dev {
            "iPhone" | "iPad" | "Mac" => bool_verdict(g == "p3" || g == "srgb"),
            dev if catalog::android_model(dev).is_some() => {
                // The paper flags mid-range Samsungs claiming (p3, rec2020).
                bool_verdict(g == "srgb" || g == "p3")
            }
            _ => Plausibility::Unknown,
        }
    }

    fn device_memory(dev: &AttrValue, mem: &AttrValue) -> Plausibility {
        let (Some(dev), Some(m)) = (dev.as_str(), mem.as_f64()) else {
            return Plausibility::Unknown;
        };
        if !catalog::DEVICE_MEMORY_LADDER.contains(&m) {
            return Plausibility::Impossible; // the API clamps to the ladder
        }
        match dev {
            // Safari has no deviceMemory API, so *any* reported value on an
            // iPhone/iPad UA means Chrome-iOS — which is WebKit and also
            // lacks the API. Impossible.
            "iPhone" | "iPad" => Plausibility::Impossible,
            dev => match catalog::android_model(dev) {
                Some(model) => bool_verdict((m - model.device_memory).abs() < 1e-9),
                None => Plausibility::Unknown,
            },
        }
    }

    fn device_cores(dev: &AttrValue, cores: &AttrValue) -> Plausibility {
        let (Some(dev), Some(c)) = (dev.as_str(), cores.as_int()) else {
            return Plausibility::Unknown;
        };
        match dev {
            "iPhone" => bool_verdict(catalog::IPHONE_CORES.iter().any(|&k| i64::from(k) == c)),
            "iPad" => bool_verdict(catalog::IPAD_CORES.iter().any(|&k| i64::from(k) == c)),
            "Mac" => bool_verdict((2..=24).contains(&c)),
            dev => match catalog::android_model(dev) {
                Some(m) => bool_verdict(i64::from(m.cores) == c),
                None => Plausibility::Unknown,
            },
        }
    }

    fn device_platform(dev: &AttrValue, plat: &AttrValue) -> Plausibility {
        let (Some(dev), Some(p)) = (dev.as_str(), plat.as_str()) else {
            return Plausibility::Unknown;
        };
        match dev {
            "iPhone" => bool_verdict(p == "iPhone"),
            "iPad" => bool_verdict(p == "iPad" || p == "MacIntel"), // iPadOS 13+ masquerades
            "Mac" => bool_verdict(p == "MacIntel"),
            dev if catalog::android_model(dev).is_some() => {
                bool_verdict(p.starts_with("Linux arm"))
            }
            _ => Plausibility::Unknown,
        }
    }

    /// Client hints (`Sec-CH-UA*`) are emitted by Chromium engines only.
    /// Any value of the header under a non-Chromium UA is a leak from the
    /// real (Chromium) runtime underneath the lie.
    fn browser_client_hints(browser: &AttrValue) -> Plausibility {
        let Some(b) = browser.as_str() else {
            return Plausibility::Unknown;
        };
        match family_by_name(b) {
            Some(f) => bool_verdict(f.is_chromium()),
            None => Plausibility::Unknown,
        }
    }

    /// `Sec-CH-UA-Platform` is low-entropy but truthful; it must agree with
    /// the UA's OS.
    fn os_ch_platform(os: &AttrValue, ch: &AttrValue) -> Plausibility {
        let (Some(o), Some(c)) = (os.as_str(), ch.as_str()) else {
            return Plausibility::Unknown;
        };
        let expected = match o {
            "Windows" => "Windows",
            "Mac OS X" => "macOS",
            "Linux" => "Linux",
            "Android" => "Android",
            "iOS" => return Plausibility::Impossible, // no Chromium on iOS sends hints
            _ => return Plausibility::Unknown,
        };
        bool_verdict(c == expected)
    }

    /// … and with `navigator.platform`.
    fn platform_ch_platform(platform: &AttrValue, ch: &AttrValue) -> Plausibility {
        let (Some(p), Some(c)) = (platform.as_str(), ch.as_str()) else {
            return Plausibility::Unknown;
        };
        match platform_os(p) {
            Some("Windows") => bool_verdict(c == "Windows"),
            Some("Mac OS X") => bool_verdict(c == "macOS"),
            Some("Linux") => bool_verdict(c == "Linux"),
            Some("Android") => bool_verdict(c == "Android"),
            Some("iOS") => Plausibility::Impossible,
            _ => Plausibility::Unknown,
        }
    }

    /// Browsers derive `Accept-Language` from the configured language list;
    /// the primary tags must agree.
    fn language_accept_language(lang: &AttrValue, accept: &AttrValue) -> Plausibility {
        let (Some(l), Some(a)) = (lang.as_str(), accept.as_str()) else {
            return Plausibility::Unknown;
        };
        let primary_lang = l.split(',').next().unwrap_or(l).trim();
        let primary_accept = a
            .split(',')
            .next()
            .unwrap_or(a)
            .split(';')
            .next()
            .unwrap_or("")
            .trim();
        if primary_lang.is_empty() || primary_accept.is_empty() {
            return Plausibility::Unknown;
        }
        bool_verdict(primary_lang.eq_ignore_ascii_case(primary_accept))
    }

    fn browser_os(browser: &AttrValue, os: &AttrValue) -> Plausibility {
        let (Some(b), Some(o)) = (browser.as_str(), os.as_str()) else {
            return Plausibility::Unknown;
        };
        match family_by_name(b) {
            Some(f) => bool_verdict(f.valid_os().contains(&o)),
            None => Plausibility::Unknown,
        }
    }

    fn browser_vendor(browser: &AttrValue, vendor: &AttrValue) -> Plausibility {
        let (Some(b), Some(v)) = (browser.as_str(), vendor.as_str()) else {
            return Plausibility::Unknown;
        };
        match family_by_name(b) {
            Some(f) => bool_verdict(f.vendor() == v),
            None => Plausibility::Unknown,
        }
    }

    fn browser_product_sub(browser: &AttrValue, ps: &AttrValue) -> Plausibility {
        let (Some(b), Some(p)) = (browser.as_str(), ps.as_str()) else {
            return Plausibility::Unknown;
        };
        match family_by_name(b) {
            Some(f) => bool_verdict(f.product_sub() == p),
            None => Plausibility::Unknown,
        }
    }

    fn browser_platform(browser: &AttrValue, plat: &AttrValue) -> Plausibility {
        let (Some(b), Some(p)) = (browser.as_str(), plat.as_str()) else {
            return Plausibility::Unknown;
        };
        let Some(f) = family_by_name(b) else {
            return Plausibility::Unknown;
        };
        let os = platform_os(p);
        match os {
            Some(o) => bool_verdict(f.valid_os().contains(&o)),
            None => Plausibility::Unknown,
        }
    }

    fn os_platform(os: &AttrValue, plat: &AttrValue) -> Plausibility {
        let (Some(o), Some(p)) = (os.as_str(), plat.as_str()) else {
            return Plausibility::Unknown;
        };
        match platform_os(p) {
            Some(po) => bool_verdict(po == o),
            None => Plausibility::Unknown,
        }
    }

    fn platform_vendor(plat: &AttrValue, vendor: &AttrValue) -> Plausibility {
        let (Some(p), Some(v)) = (plat.as_str(), vendor.as_str()) else {
            return Plausibility::Unknown;
        };
        // Apple's vendor string only ever appears on Apple platforms —
        // Table 6 flags (Linux armv5tejl, Apple Computer, Inc) etc.
        if v == "Apple Computer, Inc." {
            return bool_verdict(matches!(p, "iPhone" | "iPad" | "MacIntel"));
        }
        if v == "Google Inc." {
            // Chromium runs everywhere except: there is no Chromium on iOS
            // reporting Google Inc. (CriOS reports Apple).
            return bool_verdict(!matches!(p, "iPhone" | "iPad"));
        }
        Plausibility::Unknown
    }
}

impl ValidityOracle {
    /// Scan a whole fingerprint for impossible attribute pairs. Used by
    /// tests (to prove an archetype is or is not a consistent lie) and by
    /// the miner's confirmation step.
    pub fn scan_impossible(fp: &fp_types::Fingerprint) -> Vec<(AttrId, AttrId)> {
        let mut found = Vec::new();
        let present: Vec<(AttrId, &AttrValue)> = fp.present().collect();
        for (i, (a, va)) in present.iter().enumerate() {
            for (b, vb) in present.iter().skip(i + 1) {
                if Self::judge(*a, va, *b, vb) == Plausibility::Impossible {
                    found.push((*a, *b));
                }
            }
        }
        found
    }
}

/// Map a `navigator.platform` value to its OS family.
fn platform_os(p: &str) -> Option<&'static str> {
    match p {
        "Win32" | "Win64" => Some("Windows"),
        "MacIntel" => Some("Mac OS X"),
        "iPhone" | "iPad" => Some("iOS"),
        "Linux x86_64" | "Linux i686" => Some("Linux"),
        p if p.starts_with("Linux arm") || p.starts_with("Linux aarch64") => Some("Android"),
        _ => None,
    }
}

/// Reverse lookup of [`BrowserFamily`] by UA-parser name.
fn family_by_name(name: &str) -> Option<BrowserFamily> {
    BrowserFamily::ALL
        .iter()
        .copied()
        .find(|f| f.name() == name)
}

fn bool_verdict(ok: bool) -> Plausibility {
    if ok {
        Plausibility::Valid
    } else {
        Plausibility::Impossible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_types::AttrValue as V;

    fn judge(a: AttrId, va: V, b: AttrId, vb: V) -> Plausibility {
        ValidityOracle::judge(a, &va, b, &vb)
    }

    #[test]
    fn table6_screen_examples_are_impossible() {
        // Straight from the paper's Table 6 "Screen" group.
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::ScreenResolution,
                V::Resolution(1920, 1080)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::ScreenResolution,
                V::Resolution(847, 476)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPad"),
                AttrId::ScreenResolution,
                V::Resolution(900, 1600)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("SM-S906N"),
                AttrId::ScreenResolution,
                V::Resolution(1920, 1080)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::TouchSupport,
                V::text("None")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("Mac"),
                AttrId::TouchSupport,
                V::text("touchEvent/touchStart")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::MaxTouchPoints,
                V::Int(0)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPad"),
                AttrId::MaxTouchPoints,
                V::Int(7)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("Mac"),
                AttrId::MaxTouchPoints,
                V::Int(10)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::ColorDepth,
                V::Int(16)
            ),
            Plausibility::Impossible
        );
    }

    #[test]
    fn table6_device_examples_are_impossible() {
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("MI PAD 4"),
                AttrId::DeviceMemory,
                V::float(8.0)
            ),
            Plausibility::Impossible,
            "Mi Pad 4 has 4 GB"
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("SM-A515F"),
                AttrId::DeviceMemory,
                V::float(1.0)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("Redmi Go"),
                AttrId::DeviceMemory,
                V::float(8.0)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::HardwareConcurrency,
                V::Int(3)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::HardwareConcurrency,
                V::Int(32)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("Mac"),
                AttrId::HardwareConcurrency,
                V::Int(48)
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("Pixel 2"),
                AttrId::HardwareConcurrency,
                V::Int(32)
            ),
            Plausibility::Impossible
        );
    }

    #[test]
    fn table6_browser_examples_are_impossible() {
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Safari"),
                AttrId::UaOs,
                V::text("Linux")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Samsung Internet"),
                AttrId::UaOs,
                V::text("Linux")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Safari"),
                AttrId::UaOs,
                V::text("Windows")
            ),
            Plausibility::Impossible,
            "Safari for Windows died in 2012"
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Mobile Safari"),
                AttrId::Vendor,
                V::text("Google Inc.")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Chrome Mobile"),
                AttrId::Vendor,
                V::text("Apple Computer, Inc.")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Chrome Mobile"),
                AttrId::Platform,
                V::text("Win32")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Chrome Mobile iOS"),
                AttrId::Platform,
                V::text("Win32")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::Platform,
                V::text("Linux armv5tejl"),
                AttrId::Vendor,
                V::text("Apple Computer, Inc.")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::Platform,
                V::text("Win32"),
                AttrId::Vendor,
                V::text("Apple Computer, Inc.")
            ),
            Plausibility::Impossible
        );
    }

    #[test]
    fn real_configurations_are_valid() {
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::ScreenResolution,
                V::Resolution(390, 844)
            ),
            Plausibility::Valid
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPhone"),
                AttrId::MaxTouchPoints,
                V::Int(5)
            ),
            Plausibility::Valid
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Mobile Safari"),
                AttrId::Vendor,
                V::text("Apple Computer, Inc.")
            ),
            Plausibility::Valid
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Chrome"),
                AttrId::UaOs,
                V::text("Windows")
            ),
            Plausibility::Valid
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("Pixel 7"),
                AttrId::HardwareConcurrency,
                V::Int(8)
            ),
            Plausibility::Valid
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("iPad"),
                AttrId::Platform,
                V::text("MacIntel")
            ),
            Plausibility::Valid,
            "iPadOS masquerades as MacIntel"
        );
    }

    #[test]
    fn unknown_pairs_stay_unknown() {
        assert_eq!(
            judge(
                AttrId::Canvas,
                V::text("canvas:ab"),
                AttrId::Audio,
                V::float(124.0)
            ),
            Plausibility::Unknown
        );
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("UnknownDevice 9000"),
                AttrId::HardwareConcurrency,
                V::Int(7)
            ),
            Plausibility::Unknown
        );
        // Windows desktops can genuinely have touch screens.
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("Other"),
                AttrId::TouchSupport,
                V::text("touchEvent/touchStart")
            ),
            Plausibility::Unknown
        );
    }

    #[test]
    fn header_layer_rules() {
        // Client hints under a WebKit UA: the headless-Chromium leak.
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Mobile Safari"),
                AttrId::SecChUa,
                V::text("\"Chromium\";v=\"116\"")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaBrowser,
                V::text("Chrome"),
                AttrId::SecChUa,
                V::text("\"Chromium\";v=\"116\"")
            ),
            Plausibility::Valid
        );
        // CH platform must track the UA OS and navigator.platform.
        assert_eq!(
            judge(
                AttrId::UaOs,
                V::text("iOS"),
                AttrId::SecChUaPlatform,
                V::text("Linux")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::UaOs,
                V::text("Windows"),
                AttrId::SecChUaPlatform,
                V::text("Windows")
            ),
            Plausibility::Valid
        );
        assert_eq!(
            judge(
                AttrId::UaOs,
                V::text("Windows"),
                AttrId::SecChUaPlatform,
                V::text("Android")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::Platform,
                V::text("Win32"),
                AttrId::SecChUaPlatform,
                V::text("macOS")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::Platform,
                V::text("MacIntel"),
                AttrId::SecChUaPlatform,
                V::text("macOS")
            ),
            Plausibility::Valid
        );
        // Accept-Language must share its primary tag with navigator.language.
        assert_eq!(
            judge(
                AttrId::Language,
                V::text("fr-FR"),
                AttrId::AcceptLanguage,
                V::text("en-US,en;q=0.9")
            ),
            Plausibility::Impossible
        );
        assert_eq!(
            judge(
                AttrId::Language,
                V::text("fr-FR"),
                AttrId::AcceptLanguage,
                V::text("fr-FR,fr;q=0.8,en-US;q=0.7")
            ),
            Plausibility::Valid
        );
    }

    #[test]
    fn judge_is_order_insensitive() {
        let a = judge(
            AttrId::UaDevice,
            V::text("iPhone"),
            AttrId::MaxTouchPoints,
            V::Int(0),
        );
        let b = judge(
            AttrId::MaxTouchPoints,
            V::Int(0),
            AttrId::UaDevice,
            V::text("iPhone"),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn ios_device_memory_is_always_impossible() {
        // No iOS browser exposes the deviceMemory API at all.
        for mem in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            assert_eq!(
                judge(
                    AttrId::UaDevice,
                    V::text("iPhone"),
                    AttrId::DeviceMemory,
                    V::float(mem)
                ),
                Plausibility::Impossible
            );
        }
    }

    #[test]
    fn off_ladder_memory_is_impossible_everywhere() {
        assert_eq!(
            judge(
                AttrId::UaDevice,
                V::text("Other"),
                AttrId::DeviceMemory,
                V::float(3.0)
            ),
            Plausibility::Impossible
        );
    }
}
