//! Static facts about real devices and browsers.
//!
//! The paper's core insight is that real hardware/software comes in a
//! *limited* number of configurations (Section 7.1). This module is that
//! limit, written down: the miner's validity oracle and every consistent
//! traffic generator read from here. Numbers follow public references — the
//! iPhone logical-resolution list mirrors the iosref catalogue the paper
//! cites ("iPhones have a fixed set of screen resolutions (12 resolutions)").

/// Logical (CSS-pixel) portrait resolutions of real iPhones. Exactly twelve,
/// matching the paper's count.
pub const IPHONE_RESOLUTIONS: [(u16, u16); 12] = [
    (320, 480), // iPhone 4/4S
    (320, 568), // iPhone 5/5s/SE (1st gen)
    (375, 667), // iPhone 6/7/8/SE (2nd/3rd gen)
    (414, 736), // iPhone 6+/7+/8+ Plus
    (375, 812), // iPhone X/XS/11 Pro
    (414, 896), // iPhone XR/XS Max/11/11 Pro Max
    (360, 780), // iPhone 12 mini/13 mini
    (390, 844), // iPhone 12/12 Pro/13/14
    (428, 926), // iPhone 12/13 Pro Max/14 Plus
    (393, 852), // iPhone 14 Pro/15
    (430, 932), // iPhone 14 Pro Max/15 Plus
    (402, 874), // iPhone 16 Pro
];

/// Logical portrait resolutions of real iPads.
pub const IPAD_RESOLUTIONS: [(u16, u16); 7] = [
    (768, 1024),  // iPad (classic), mini
    (744, 1133),  // iPad mini 6
    (810, 1080),  // iPad 7th-9th gen
    (820, 1180),  // iPad 10th gen / Air 4/5
    (834, 1112),  // iPad Pro 10.5 / Air 3
    (834, 1194),  // iPad Pro 11
    (1024, 1366), // iPad Pro 12.9
];

/// Common desktop/laptop resolutions (Windows, macOS, Linux).
pub const DESKTOP_RESOLUTIONS: [(u16, u16); 10] = [
    (1920, 1080),
    (1366, 768),
    (1536, 864),
    (1440, 900),
    (1600, 900),
    (1680, 1050),
    (2560, 1440),
    (2560, 1600),
    (1280, 800),
    (3840, 2160),
];

/// Plausible `hardwareConcurrency` values per device family.
pub const IPHONE_CORES: [u8; 3] = [2, 4, 6];
pub const IPAD_CORES: [u8; 3] = [4, 6, 8];
pub const MAC_CORES: [u8; 5] = [4, 8, 10, 12, 16];
pub const WINDOWS_CORES: [u8; 6] = [2, 4, 6, 8, 12, 16];
pub const LINUX_CORES: [u8; 5] = [2, 4, 8, 12, 16];

/// `navigator.deviceMemory` values Chromium can report (the API clamps to
/// this ladder). Safari and Firefox do not implement the API at all.
pub const DEVICE_MEMORY_LADDER: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// The plugin names Chromium-family desktop browsers expose since 2022 —
/// exactly the five PDF viewers of the paper's Figure 4.
pub const CHROMIUM_PDF_PLUGINS: [&str; 5] = [
    "PDF Viewer",
    "Chrome PDF Viewer",
    "Chromium PDF Viewer",
    "Microsoft Edge PDF Viewer",
    "WebKit built-in PDF",
];

/// Firefox ≥ 99 exposes the same synthetic plugin list.
pub const FIREFOX_PDF_PLUGINS: [&str; 5] = CHROMIUM_PDF_PLUGINS;

/// MIME types that accompany the PDF plugin list.
pub const PDF_MIME_TYPES: [&str; 2] = ["application/pdf", "text/pdf"];

/// Windows core font probe set.
pub const WINDOWS_FONTS: [&str; 12] = [
    "Arial",
    "Arial Black",
    "Calibri",
    "Cambria",
    "Comic Sans MS",
    "Consolas",
    "Courier New",
    "Georgia",
    "Segoe UI",
    "Tahoma",
    "Times New Roman",
    "Verdana",
];

/// macOS / iOS font probe set.
pub const APPLE_FONTS: [&str; 12] = [
    "American Typewriter",
    "Arial",
    "Avenir",
    "Courier",
    "Futura",
    "Geneva",
    "Gill Sans",
    "Helvetica",
    "Helvetica Neue",
    "Menlo",
    "Monaco",
    "Palatino",
];

/// Linux font probe set.
pub const LINUX_FONTS: [&str; 8] = [
    "Bitstream Vera Sans",
    "DejaVu Sans",
    "DejaVu Sans Mono",
    "DejaVu Serif",
    "Liberation Mono",
    "Liberation Sans",
    "Liberation Serif",
    "Ubuntu",
];

/// Android font probe set.
pub const ANDROID_FONTS: [&str; 5] = [
    "Droid Sans",
    "Droid Sans Mono",
    "Noto Sans",
    "Roboto",
    "sans-serif-thin",
];

/// FingerprintJS monospace probe width (px) per OS family — the App C
/// decision path splits on this at 131.5.
pub fn monospace_width_for_os(os: &str) -> f64 {
    match os {
        "Windows" => 121.0,
        "Mac OS X" | "iOS" => 132.625,
        "Android" => 133.484,
        _ => 130.0, // Linux and friends
    }
}

/// One real Android (or Android-tablet) model with its true hardware facts.
/// The model strings are the ones that appear inside Android User-Agents and
/// in the paper's Table 6.
pub struct AndroidModel {
    /// UA model string (the paper's `UA Device` value).
    pub model: &'static str,
    /// Marketing name (docs only).
    pub marketing: &'static str,
    /// Portrait logical resolution.
    pub resolution: (u16, u16),
    /// True core count.
    pub cores: u8,
    /// True `deviceMemory` as Chromium would clamp it.
    pub device_memory: f64,
    /// `navigator.platform` as reported by Chromium on this SoC.
    pub platform: &'static str,
    /// Whether the device is a tablet (affects UA `Mobile` token).
    pub tablet: bool,
    /// GPU renderer string (WebGL).
    pub gpu: &'static str,
}

/// Real Android devices, including every model named in Table 6.
pub const ANDROID_MODELS: [AndroidModel; 16] = [
    AndroidModel {
        model: "SM-S906N",
        marketing: "Samsung Galaxy S22+",
        resolution: (384, 854),
        cores: 8,
        device_memory: 8.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Mali-G710",
    },
    AndroidModel {
        model: "SM-A127F",
        marketing: "Samsung Galaxy A12",
        resolution: (360, 800),
        cores: 8,
        device_memory: 4.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Mali-G52",
    },
    AndroidModel {
        model: "SM-A515F",
        marketing: "Samsung Galaxy A51",
        resolution: (412, 914),
        cores: 8,
        device_memory: 4.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Mali-G72",
    },
    AndroidModel {
        model: "SM-G991B",
        marketing: "Samsung Galaxy S21",
        resolution: (360, 800),
        cores: 8,
        device_memory: 8.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Mali-G78",
    },
    AndroidModel {
        model: "SM-T387W",
        marketing: "Samsung Galaxy Tab A 8.0",
        resolution: (768, 1024),
        cores: 4,
        device_memory: 2.0,
        platform: "Linux armv8l",
        tablet: true,
        gpu: "Adreno 506",
    },
    AndroidModel {
        model: "SM-T870",
        marketing: "Samsung Galaxy Tab S7",
        resolution: (800, 1280),
        cores: 8,
        device_memory: 8.0,
        platform: "Linux armv8l",
        tablet: true,
        gpu: "Adreno 650",
    },
    AndroidModel {
        model: "SM-G973F",
        marketing: "Samsung Galaxy S10",
        resolution: (360, 760),
        cores: 8,
        device_memory: 8.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Mali-G76",
    },
    AndroidModel {
        model: "Pixel 2",
        marketing: "Google Pixel 2",
        resolution: (412, 732),
        cores: 8,
        device_memory: 4.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Adreno 540",
    },
    AndroidModel {
        model: "Pixel 7",
        marketing: "Google Pixel 7",
        resolution: (412, 915),
        cores: 8,
        device_memory: 8.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Mali-G710",
    },
    AndroidModel {
        model: "Pixel 7 Pro",
        marketing: "Google Pixel 7 Pro",
        resolution: (412, 892),
        cores: 8,
        device_memory: 8.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Mali-G710",
    },
    AndroidModel {
        model: "M2006C3MG",
        marketing: "Xiaomi Redmi 9C",
        resolution: (360, 800),
        cores: 8,
        device_memory: 2.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "PowerVR GE8320",
    },
    AndroidModel {
        model: "M2004J19C",
        marketing: "Xiaomi Redmi 9",
        resolution: (393, 851),
        cores: 8,
        device_memory: 4.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "Mali-G52",
    },
    AndroidModel {
        model: "Redmi Go",
        marketing: "Xiaomi Redmi Go",
        resolution: (360, 640),
        cores: 4,
        device_memory: 1.0,
        platform: "Linux armv7l",
        tablet: false,
        gpu: "Adreno 308",
    },
    AndroidModel {
        model: "MI PAD 3",
        marketing: "Xiaomi Mi Pad 3",
        resolution: (768, 1024),
        cores: 6,
        device_memory: 4.0,
        platform: "Linux armv8l",
        tablet: true,
        gpu: "PowerVR GX6250",
    },
    AndroidModel {
        model: "MI PAD 4",
        marketing: "Xiaomi Mi Pad 4 LTE",
        resolution: (600, 960),
        cores: 8,
        device_memory: 4.0,
        platform: "Linux armv8l",
        tablet: true,
        gpu: "Adreno 512",
    },
    AndroidModel {
        model: "Infinix X652B",
        marketing: "Infinix S5 Pro",
        resolution: (360, 800),
        cores: 8,
        device_memory: 4.0,
        platform: "Linux armv8l",
        tablet: false,
        gpu: "PowerVR GE8320",
    },
];

/// Look up a real Android model by its UA model string.
pub fn android_model(model: &str) -> Option<&'static AndroidModel> {
    ANDROID_MODELS.iter().find(|m| m.model == model)
}

/// Is `r` a real iPhone resolution (either orientation)?
pub fn is_real_iphone_resolution(r: (u16, u16)) -> bool {
    IPHONE_RESOLUTIONS
        .iter()
        .any(|&(w, h)| (w, h) == r || (h, w) == r)
}

/// Is `r` a real iPad resolution (either orientation)?
pub fn is_real_ipad_resolution(r: (u16, u16)) -> bool {
    IPAD_RESOLUTIONS
        .iter()
        .any(|&(w, h)| (w, h) == r || (h, w) == r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_iphone_resolutions() {
        // The paper: "iPhones have a fixed set of screen resolutions (12)".
        assert_eq!(IPHONE_RESOLUTIONS.len(), 12);
        let mut sorted = IPHONE_RESOLUTIONS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12, "resolutions must be distinct");
    }

    #[test]
    fn iphone_resolution_check_handles_orientation() {
        assert!(is_real_iphone_resolution((390, 844)));
        assert!(is_real_iphone_resolution((844, 390)));
        assert!(!is_real_iphone_resolution((1920, 1080)));
        assert!(!is_real_iphone_resolution((847, 476)));
    }

    #[test]
    fn table6_android_models_present() {
        for m in [
            "SM-S906N",
            "SM-A127F",
            "SM-A515F",
            "SM-T387W",
            "M2006C3MG",
            "M2004J19C",
            "Infinix X652B",
            "Pixel 2",
            "Pixel 7 Pro",
            "Redmi Go",
        ] {
            assert!(android_model(m).is_some(), "missing model {m}");
        }
    }

    #[test]
    fn android_model_facts_sane() {
        for m in &ANDROID_MODELS {
            assert!(
                m.cores >= 4 && m.cores <= 8,
                "{}: cores {}",
                m.model,
                m.cores
            );
            assert!(
                DEVICE_MEMORY_LADDER.contains(&m.device_memory),
                "{}: memory {} off ladder",
                m.model,
                m.device_memory
            );
            assert!(m.platform.starts_with("Linux arm"));
        }
    }

    #[test]
    fn five_pdf_plugins() {
        assert_eq!(CHROMIUM_PDF_PLUGINS.len(), 5);
        assert!(CHROMIUM_PDF_PLUGINS.contains(&"Chrome PDF Viewer"));
    }

    #[test]
    fn monospace_width_split_matches_appendix_c() {
        // Appendix C: evading requests had monospace width > 131.5 —
        // Apple and Android fonts are above, Windows below.
        assert!(monospace_width_for_os("Mac OS X") > 131.5);
        assert!(monospace_width_for_os("iOS") > 131.5);
        assert!(monospace_width_for_os("Android") > 131.5);
        assert!(monospace_width_for_os("Windows") < 131.5);
    }
}
