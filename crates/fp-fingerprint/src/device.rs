//! Typed device profiles: one *consistent* hardware configuration.

use crate::catalog;
use fp_types::Splittable;

/// Families of real devices the honey site observed (Figure 6 groups them as
/// iPhone / iPad / Mac / Other, where Other covers desktops and Androids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceKind {
    IPhone,
    IPad,
    Mac,
    WindowsDesktop,
    LinuxDesktop,
    AndroidPhone,
    AndroidTablet,
}

impl DeviceKind {
    /// All device kinds.
    pub const ALL: [DeviceKind; 7] = [
        DeviceKind::IPhone,
        DeviceKind::IPad,
        DeviceKind::Mac,
        DeviceKind::WindowsDesktop,
        DeviceKind::LinuxDesktop,
        DeviceKind::AndroidPhone,
        DeviceKind::AndroidTablet,
    ];

    /// Does the device have a touch screen?
    pub fn has_touch(self) -> bool {
        matches!(
            self,
            DeviceKind::IPhone
                | DeviceKind::IPad
                | DeviceKind::AndroidPhone
                | DeviceKind::AndroidTablet
        )
    }

    /// Is this a mobile-class device (phone or tablet)?
    pub fn is_mobile(self) -> bool {
        self.has_touch()
    }

    /// OS name as a UA parser reports it (the paper's `UA OS` attribute).
    pub fn ua_os(self) -> &'static str {
        match self {
            DeviceKind::IPhone | DeviceKind::IPad => "iOS",
            DeviceKind::Mac => "Mac OS X",
            DeviceKind::WindowsDesktop => "Windows",
            DeviceKind::LinuxDesktop => "Linux",
            DeviceKind::AndroidPhone | DeviceKind::AndroidTablet => "Android",
        }
    }
}

/// One concrete, real-world-consistent device.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    pub kind: DeviceKind,
    /// `UA Device` string as a parser infers it (`iPhone`, `Mac`, `Pixel 7`,
    /// `Other` for desktops).
    pub ua_device: &'static str,
    /// `navigator.platform`.
    pub platform: &'static str,
    /// Portrait (or landscape-native for desktops) logical resolution.
    pub resolution: (u16, u16),
    /// `navigator.hardwareConcurrency`.
    pub cores: u8,
    /// True device memory on the Chromium ladder (even where the API is
    /// absent, the physical fact exists).
    pub device_memory: f64,
    /// `navigator.maxTouchPoints`.
    pub max_touch_points: u8,
    /// `screen.colorDepth`.
    pub color_depth: u8,
    /// Widest color gamut.
    pub color_gamut: &'static str,
    /// WebGL unmasked vendor.
    pub webgl_vendor: &'static str,
    /// WebGL unmasked renderer.
    pub webgl_renderer: &'static str,
    /// Android model string if applicable (feeds the UA).
    pub android_model: Option<&'static str>,
    /// Typical screen-frame (taskbar/dock border) in px.
    pub screen_frame: u8,
}

impl DeviceProfile {
    /// Sample a real device of `kind`, deterministically from `rng`.
    pub fn sample(kind: DeviceKind, rng: &mut Splittable) -> DeviceProfile {
        match kind {
            DeviceKind::IPhone => {
                let resolution = *rng.pick(&catalog::IPHONE_RESOLUTIONS);
                let cores = *rng.pick(&catalog::IPHONE_CORES);
                DeviceProfile {
                    kind,
                    ua_device: "iPhone",
                    platform: "iPhone",
                    resolution,
                    cores,
                    device_memory: if cores >= 6 { 4.0 } else { 2.0 },
                    max_touch_points: 5,
                    color_depth: 32,
                    color_gamut: "p3",
                    webgl_vendor: "Apple Inc.",
                    webgl_renderer: "Apple GPU",
                    android_model: None,
                    screen_frame: 0,
                }
            }
            DeviceKind::IPad => {
                let resolution = *rng.pick(&catalog::IPAD_RESOLUTIONS);
                DeviceProfile {
                    kind,
                    ua_device: "iPad",
                    platform: "iPad",
                    resolution,
                    cores: *rng.pick(&catalog::IPAD_CORES),
                    device_memory: 4.0,
                    max_touch_points: 5,
                    color_depth: 32,
                    color_gamut: "p3",
                    webgl_vendor: "Apple Inc.",
                    webgl_renderer: "Apple GPU",
                    android_model: None,
                    screen_frame: 0,
                }
            }
            DeviceKind::Mac => DeviceProfile {
                kind,
                ua_device: "Mac",
                platform: "MacIntel",
                resolution: *rng.pick(&[
                    (1440, 900),
                    (1680, 1050),
                    (2560, 1600),
                    (1512, 982),
                    (1728, 1117),
                ]),
                cores: *rng.pick(&catalog::MAC_CORES),
                device_memory: *rng.pick(&[8.0, 8.0, 8.0, 4.0]),
                max_touch_points: 0,
                color_depth: 30,
                color_gamut: "p3",
                webgl_vendor: "Apple Inc.",
                webgl_renderer: "Apple M1",
                android_model: None,
                screen_frame: if rng.chance(0.7) { 25 } else { 0 },
            },
            DeviceKind::WindowsDesktop => DeviceProfile {
                kind,
                ua_device: "Other",
                platform: "Win32",
                resolution: *rng.pick(&catalog::DESKTOP_RESOLUTIONS),
                cores: *rng.pick(&catalog::WINDOWS_CORES),
                device_memory: *rng.pick(&[8.0, 8.0, 4.0, 8.0]),
                max_touch_points: 0,
                color_depth: 24,
                color_gamut: "srgb",
                webgl_vendor: "Google Inc. (Intel)",
                webgl_renderer: "ANGLE (Intel, Intel(R) UHD Graphics Direct3D11)",
                android_model: None,
                screen_frame: *rng.pick(&[40u8, 40, 48, 30]),
            },
            DeviceKind::LinuxDesktop => DeviceProfile {
                kind,
                ua_device: "Other",
                platform: "Linux x86_64",
                resolution: *rng.pick(&catalog::DESKTOP_RESOLUTIONS),
                cores: *rng.pick(&catalog::LINUX_CORES),
                device_memory: *rng.pick(&[8.0, 4.0, 8.0]),
                max_touch_points: 0,
                color_depth: 24,
                color_gamut: "srgb",
                webgl_vendor: "Mesa",
                webgl_renderer: "Mesa Intel(R) UHD Graphics (CML GT2)",
                android_model: None,
                screen_frame: *rng.pick(&[27u8, 32, 0]),
            },
            DeviceKind::AndroidPhone | DeviceKind::AndroidTablet => {
                let tablet = kind == DeviceKind::AndroidTablet;
                let candidates: Vec<&catalog::AndroidModel> = catalog::ANDROID_MODELS
                    .iter()
                    .filter(|m| m.tablet == tablet)
                    .collect();
                let m = *rng.pick(&candidates);
                DeviceProfile {
                    kind,
                    ua_device: m.model,
                    platform: m.platform,
                    resolution: m.resolution,
                    cores: m.cores,
                    device_memory: m.device_memory,
                    max_touch_points: if tablet { 10 } else { 5 },
                    color_depth: 24,
                    color_gamut: "srgb",
                    webgl_vendor: "Qualcomm",
                    webgl_renderer: m.gpu,
                    android_model: Some(m.model),
                    screen_frame: 0,
                }
            }
        }
    }

    /// Build the profile of a specific real Android model from the
    /// catalogue (panics on unknown models — use catalogue constants).
    pub fn android(model: &str) -> DeviceProfile {
        let m = catalog::android_model(model)
            .unwrap_or_else(|| panic!("unknown Android model {model:?}"));
        DeviceProfile {
            kind: if m.tablet {
                DeviceKind::AndroidTablet
            } else {
                DeviceKind::AndroidPhone
            },
            ua_device: m.model,
            platform: m.platform,
            resolution: m.resolution,
            cores: m.cores,
            device_memory: m.device_memory,
            max_touch_points: if m.tablet { 10 } else { 5 },
            color_depth: 24,
            color_gamut: "srgb",
            webgl_vendor: "Qualcomm",
            webgl_renderer: m.gpu,
            android_model: Some(m.model),
            screen_frame: 0,
        }
    }

    /// A synthetic "reduced User-Agent" Android device: Chrome ≥ 110 sends
    /// the frozen model string `K`, which UA parsers surface verbatim. Bots
    /// hide behind it because no catalogue constrains an unknown model.
    pub fn android_generic_k() -> DeviceProfile {
        DeviceProfile {
            kind: DeviceKind::AndroidPhone,
            ua_device: "K",
            platform: "Linux armv8l",
            resolution: (360, 800),
            cores: 4,
            device_memory: 2.0,
            max_touch_points: 5,
            color_depth: 24,
            color_gamut: "srgb",
            webgl_vendor: "Qualcomm",
            webgl_renderer: "Adreno 640",
            android_model: Some("K"),
            screen_frame: 0,
        }
    }

    /// Touch support summary in the FingerprintJS style the paper's Table 6
    /// uses (`None` vs `touchEvent/touchStart`).
    pub fn touch_summary(&self) -> &'static str {
        if self.kind.has_touch() {
            "touchEvent/touchStart"
        } else {
            "None"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Splittable {
        Splittable::new(0xD15C0)
    }

    #[test]
    fn iphone_profiles_are_consistent() {
        let mut r = rng();
        for _ in 0..50 {
            let d = DeviceProfile::sample(DeviceKind::IPhone, &mut r);
            assert!(catalog::is_real_iphone_resolution(d.resolution));
            assert!(catalog::IPHONE_CORES.contains(&d.cores));
            assert_eq!(d.max_touch_points, 5);
            assert_eq!(d.platform, "iPhone");
            assert_eq!(d.ua_device, "iPhone");
            assert_eq!(d.touch_summary(), "touchEvent/touchStart");
        }
    }

    #[test]
    fn desktop_profiles_have_no_touch() {
        let mut r = rng();
        for kind in [
            DeviceKind::Mac,
            DeviceKind::WindowsDesktop,
            DeviceKind::LinuxDesktop,
        ] {
            let d = DeviceProfile::sample(kind, &mut r);
            assert_eq!(d.max_touch_points, 0);
            assert_eq!(d.touch_summary(), "None");
            assert!(!kind.has_touch());
        }
    }

    #[test]
    fn android_profiles_use_real_models() {
        let mut r = rng();
        for _ in 0..30 {
            let d = DeviceProfile::sample(DeviceKind::AndroidPhone, &mut r);
            let m = catalog::android_model(d.android_model.unwrap()).unwrap();
            assert_eq!(d.cores, m.cores);
            assert_eq!(d.resolution, m.resolution);
            assert!(!m.tablet);
        }
        let d = DeviceProfile::sample(DeviceKind::AndroidTablet, &mut r);
        assert!(
            catalog::android_model(d.android_model.unwrap())
                .unwrap()
                .tablet
        );
        assert_eq!(d.max_touch_points, 10);
    }

    #[test]
    fn ua_os_mapping() {
        assert_eq!(DeviceKind::IPhone.ua_os(), "iOS");
        assert_eq!(DeviceKind::Mac.ua_os(), "Mac OS X");
        assert_eq!(DeviceKind::WindowsDesktop.ua_os(), "Windows");
        assert_eq!(DeviceKind::AndroidTablet.ua_os(), "Android");
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = rng();
        let mut b = rng();
        for kind in DeviceKind::ALL {
            let da = DeviceProfile::sample(kind, &mut a);
            let db = DeviceProfile::sample(kind, &mut b);
            assert_eq!(da.resolution, db.resolution);
            assert_eq!(da.cores, db.cores);
        }
    }
}
