//! Browser fingerprint model.
//!
//! This crate is the *real world* the inconsistency miner measures against:
//!
//! * [`catalog`] — static facts: real iPhone/iPad/Android/desktop hardware
//!   (resolutions, cores, memory, touch points), per-browser software facts
//!   (vendors, productSub, plugin sets), fonts per OS.
//! * [`device`] / [`browser`] — typed views over the catalog:
//!   [`DeviceProfile`] and [`BrowserProfile`] describe one *consistent*
//!   hardware/software configuration.
//! * [`ua`] — User-Agent synthesis for a profile and the inverse parser that
//!   recovers the paper's `UA Device` / `UA Browser` / `UA OS` attributes.
//! * [`collect`] — the FingerprintJS-style collector: renders a profile (plus
//!   a locale) into a complete, internally consistent [`fp_types::Fingerprint`].
//! * [`oracle`] — the validity oracle: answers "can these two attribute
//!   values coexist on a real device?", the semi-automatic confirmation step
//!   of the paper's Algorithm 1.

pub mod browser;
pub mod catalog;
pub mod collect;
pub mod device;
pub mod oracle;
pub mod ua;

pub use browser::{BrowserFamily, BrowserProfile};
pub use collect::{Collector, LocaleSpec};
pub use device::{DeviceKind, DeviceProfile};
pub use oracle::{Plausibility, ValidityOracle};
pub use ua::{parse_user_agent, ParsedUa};
