//! The Table 5 API-access model: which browser APIs each service's script
//! reads. (The extracted paper text loses the per-cell checkmarks; the
//! reconstruction below follows the table's row list plus the paper's
//! statement that "DataDome collects more attributes from each request than
//! BotD" — DataDome reads everything listed, BotD a strict subset. Noted in
//! DESIGN.md.)

/// One row of Table 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApiAccess {
    /// Row group in the table.
    pub group: &'static str,
    /// Browser API name.
    pub api: &'static str,
    /// DataDome's script reads it.
    pub datadome: bool,
    /// BotD's script reads it.
    pub botd: bool,
}

/// Browser APIs read by the two services (Table 5).
pub const API_ACCESS_TABLE: [ApiAccess; 33] = [
    // Display
    ApiAccess {
        group: "Display",
        api: "window.screen.colorDepth",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Display",
        api: "HTMLCanvasElement.getContext",
        datadome: true,
        botd: true,
    },
    // Navigator
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.webdriver",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.vendor",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.userAgent",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.serviceWorker",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.productSub",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.plugins",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.platform",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.permissions",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.oscpu",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.mimeTypes",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.mediaDevices",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.maxTouchPoints",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.languages",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.language",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.hardwareConcurrency",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.buildID",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.appVersion",
        datadome: true,
        botd: true,
    },
    ApiAccess {
        group: "Navigator",
        api: "window.navigator.__proto__",
        datadome: true,
        botd: true,
    },
    // Storage
    ApiAccess {
        group: "Storage",
        api: "window.sessionStorage",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Storage",
        api: "window.localStorage",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Storage",
        api: "window.document.cookie",
        datadome: true,
        botd: false,
    },
    // Mouse movements
    ApiAccess {
        group: "Mouse Movements",
        api: "MouseEvent.type",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Mouse Movements",
        api: "MouseEvent.timeStamp",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Mouse Movements",
        api: "MouseEvent.clientY",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Mouse Movements",
        api: "MouseEvent.clientX",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Mouse Movements",
        api: "addEventListener: mouseup",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Mouse Movements",
        api: "addEventListener: mousemove",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Mouse Movements",
        api: "addEventListener: mousedown",
        datadome: true,
        botd: false,
    },
    // Miscellaneous
    ApiAccess {
        group: "Miscellaneous",
        api: "addEventListener: asyncChallengeFinished",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Miscellaneous",
        api: "addEventListener: pagehide",
        datadome: true,
        botd: false,
    },
    ApiAccess {
        group: "Miscellaneous",
        api: "Performance.now",
        datadome: true,
        botd: true,
    },
];

/// Count of APIs each service reads — the paper's "DataDome collects more
/// attributes" observation in queryable form.
pub fn access_counts() -> (usize, usize) {
    let dd = API_ACCESS_TABLE.iter().filter(|a| a.datadome).count();
    let botd = API_ACCESS_TABLE.iter().filter(|a| a.botd).count();
    (dd, botd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datadome_reads_strictly_more() {
        let (dd, botd) = access_counts();
        assert!(dd > botd, "DataDome {dd} vs BotD {botd}");
        // Every BotD API is also read by DataDome in this reconstruction.
        assert!(API_ACCESS_TABLE.iter().all(|a| !a.botd || a.datadome));
    }

    #[test]
    fn mouse_apis_are_datadome_only() {
        for row in API_ACCESS_TABLE
            .iter()
            .filter(|a| a.group == "Mouse Movements")
        {
            assert!(row.datadome && !row.botd, "{}", row.api);
        }
    }

    #[test]
    fn api_names_unique() {
        let mut seen = std::collections::HashSet::new();
        for row in API_ACCESS_TABLE.iter() {
            assert!(seen.insert(row.api), "duplicate {}", row.api);
        }
    }
}
