//! DataDome's behavioural model: score a pointer trajectory's statistics
//! for human-ness. The generators never hand over a verdict — this module
//! has to derive one, like the real service derives one from its
//! MouseEvent listeners (Table 5).

use fp_types::PointerStats;

/// Naturalness score in `[0, 1]`.
///
/// Three independent signatures of a human hand, each scored 0–1 and
/// averaged:
/// * speed variance — muscles accelerate and decelerate; replayed events
///   arrive at machine-regular intervals;
/// * curvature — real strokes arc and tremble; interpolated lines do not;
/// * temporal texture — humans pause to read; scripts do not idle.
pub fn naturalness(stats: &PointerStats) -> f32 {
    if stats.samples < 5 {
        return 0.0;
    }
    let speed_score = ramp(stats.speed_cv, 0.08, 0.30);
    let curve_score = ramp(stats.curvature, 0.01, 0.05);
    // Either pauses or a humanly long interaction counts as texture.
    let texture_score = ramp(stats.pause_fraction, 0.01, 0.08)
        .max(ramp(stats.duration_ms as f32, 400.0, 1200.0) * 0.8);
    (speed_score + curve_score + texture_score) / 3.0
}

/// 0 below `lo`, 1 above `hi`, linear in between.
fn ramp(x: f32, lo: f32, hi: f32) -> f32 {
    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
}

/// The decision threshold DataDome applies to [`naturalness`].
pub const NATURAL_THRESHOLD: f32 = 0.6;

/// Convenience: does a behaviour trace contain credible pointer input?
pub fn credible_pointer(trace: &fp_types::BehaviorTrace) -> bool {
    trace.mouse_events >= 3
        && trace
            .pointer
            .map(|s| naturalness(&s) >= NATURAL_THRESHOLD)
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn human_stats() -> PointerStats {
        PointerStats {
            samples: 40,
            duration_ms: 2200,
            speed_cv: 0.55,
            curvature: 0.12,
            pause_fraction: 0.25,
        }
    }

    fn replay_stats() -> PointerStats {
        PointerStats {
            samples: 30,
            duration_ms: 300,
            speed_cv: 0.01,
            curvature: 0.0,
            pause_fraction: 0.0,
        }
    }

    #[test]
    fn human_shape_scores_high() {
        assert!(naturalness(&human_stats()) > 0.9);
    }

    #[test]
    fn replay_shape_scores_low() {
        assert!(naturalness(&replay_stats()) < 0.1);
    }

    #[test]
    fn too_few_samples_score_zero() {
        let s = PointerStats {
            samples: 3,
            ..human_stats()
        };
        assert_eq!(naturalness(&s), 0.0);
    }

    #[test]
    fn partial_mimicry_lands_in_the_middle() {
        // Curved but machine-timed: one of three signatures.
        let s = PointerStats {
            samples: 30,
            duration_ms: 250,
            speed_cv: 0.02,
            curvature: 0.2,
            pause_fraction: 0.0,
        };
        let score = naturalness(&s);
        assert!(score > 0.2 && score < NATURAL_THRESHOLD, "{score}");
    }

    #[test]
    fn credible_pointer_requires_both_events_and_stats() {
        let trace = fp_types::BehaviorTrace {
            mouse_events: 20,
            touch_events: 0,
            pointer: Some(human_stats()),
            first_input_delay_ms: 500,
        };
        assert!(credible_pointer(&trace));
        let no_stats = fp_types::BehaviorTrace {
            pointer: None,
            ..trace
        };
        assert!(!credible_pointer(&no_stats));
        let few_events = fp_types::BehaviorTrace {
            mouse_events: 1,
            ..trace
        };
        assert!(!credible_pointer(&few_events));
    }

    #[test]
    fn ramp_boundaries() {
        assert_eq!(ramp(0.0, 0.1, 0.2), 0.0);
        assert_eq!(ramp(0.3, 0.1, 0.2), 1.0);
        assert!((ramp(0.15, 0.1, 0.2) - 0.5).abs() < 1e-6);
    }
}
