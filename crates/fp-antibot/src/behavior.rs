//! DataDome's behavioural model: score a pointer trajectory's statistics
//! for human-ness. The generators never hand over a verdict — this module
//! has to derive one, like the real service derives one from its
//! MouseEvent listeners (Table 5).
//!
//! The scoring itself lives in [`fp_types::behavior`] since the behavioural
//! facet landed: the session detector's re-fitting member (`fp-behavior`)
//! uses the same pointer-credibility read to pick its trusted training
//! sample, and two drifting copies of `NATURAL_THRESHOLD` would quietly
//! decouple the commercial simulator from the in-house chain. This module
//! re-exports the one sourced copy under the paths DataDome's engine has
//! always used.

pub use fp_types::behavior::{credible_pointer, naturalness, NATURAL_THRESHOLD};

#[cfg(test)]
mod tests {
    use super::*;
    use fp_types::PointerStats;

    #[test]
    fn reexports_resolve_to_the_shared_constants() {
        assert_eq!(NATURAL_THRESHOLD, fp_types::behavior::NATURAL_THRESHOLD);
        let human = PointerStats {
            samples: 40,
            duration_ms: 2200,
            speed_cv: 0.55,
            curvature: 0.12,
            pause_fraction: 0.25,
        };
        assert!(naturalness(&human) >= NATURAL_THRESHOLD);
        assert!(credible_pointer(&fp_types::BehaviorTrace {
            mouse_events: 20,
            touch_events: 0,
            pointer: Some(human),
            first_input_delay_ms: 500,
        }));
    }
}
