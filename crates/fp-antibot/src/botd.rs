//! The BotD-like detector: a client-side fingerprinting script.
//!
//! BotD ships as JavaScript, so it sees exactly what the page sees — browser
//! attributes — and nothing network-side. Its strength is catching
//! automation stacks that forget to dress up the browser; its measured
//! weakness (the whole point of §5.3.1/§5.3.3) is that the *presence* of
//! plugins or touch support defeats its headless-Chromium signature.

use crate::{Detector, StateScope, Verdict};
use fp_types::{AttrId, Fingerprint, Request, StoredRequest};

/// BotD simulator. Stateless: the script has no cross-request memory.
#[derive(Default)]
pub struct BotD;

impl BotD {
    /// Fresh instance.
    pub fn new() -> BotD {
        BotD
    }

    /// Decide a live request (legacy entry point; same classifier as the
    /// [`Detector`] impl — BotD only ever reads the fingerprint).
    pub fn decide(&mut self, request: &Request) -> Verdict {
        Self::classify(&request.fingerprint)
    }

    fn classify(fp: &Fingerprint) -> Verdict {
        // 1. The automation flag itself. `navigator.webdriver` is the
        //    first thing every bot-detection script reads.
        if fp.get(AttrId::Webdriver).as_int() == Some(1) {
            return Verdict::Bot;
        }

        // 2. Headless markers in the UA.
        if let Some(ua) = fp.get(AttrId::UserAgent).as_str() {
            if ua.contains("HeadlessChrome") || ua.contains("PhantomJS") || ua.contains("Electron")
            {
                return Verdict::Bot;
            }
        }

        // 3. Engine self-consistency: a Chromium-family UA must report the
        //    WebKit productSub. (Real browsers always do; only spoofed
        //    stacks get this wrong.)
        let ua_browser = fp.get(AttrId::UaBrowser).as_str().unwrap_or("");
        let chromium_ua = matches!(
            ua_browser,
            "Chrome" | "Chrome Mobile" | "Edge" | "Samsung Internet" | "MiuiBrowser"
        );
        if chromium_ua && fp.get(AttrId::ProductSub).as_str() == Some("20100101") {
            return Verdict::Bot;
        }

        // 3b. `window.chrome` must exist on Chromium. Raw headless builds
        //    leave the vendor-flavour probe empty; stealth frameworks patch
        //    it first — which is why Vendor Flavors tops the paper's
        //    Table 2 importance ranking for both services.
        if chromium_ua {
            let flavors_empty = fp
                .get(AttrId::VendorFlavors)
                .as_list()
                .map(|l| l.is_empty())
                .unwrap_or(true);
            if flavors_empty {
                return Verdict::Bot;
            }
        }

        // 4. The headless-Chromium signature: Chromium exposing neither
        //    plugins nor touch. Real desktop Chromium ships five PDF-viewer
        //    plugins; real mobile Chromium has touch. Headless has neither.
        //    This is the rule the paper's evasive bots sidestep by adding a
        //    PDF plugin (Fig 4) or claiming touch support (§5.3.3).
        if chromium_ua {
            let no_plugins = fp
                .get(AttrId::Plugins)
                .as_list()
                .map(|l| l.is_empty())
                .unwrap_or(true);
            let no_touch = fp.get(AttrId::TouchSupport).as_str().unwrap_or("None") == "None"
                && fp.get(AttrId::MaxTouchPoints).as_int().unwrap_or(0) == 0;
            if no_plugins && no_touch {
                return Verdict::Bot;
            }
        }

        Verdict::Human
    }
}

impl Detector for BotD {
    fn name(&self) -> &'static str {
        fp_types::detect::provenance::BOTD
    }

    fn scope(&self) -> StateScope {
        StateScope::Stateless
    }

    fn observe(&mut self, request: &StoredRequest) -> Verdict {
        Self::classify(&request.fingerprint)
    }

    fn reset(&mut self) {}

    fn fork(&self) -> Box<dyn Detector> {
        Box::new(BotD::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_fingerprint::{
        BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile, LocaleSpec,
    };
    use fp_types::{sym, BehaviorTrace, Fingerprint, SimTime, Splittable, TrafficSource};
    use std::net::Ipv4Addr;

    fn request_with(fp: Fingerprint) -> Request {
        Request {
            id: 0,
            time: SimTime::EPOCH,
            site_token: sym("t"),
            ip: Ipv4Addr::new(73, 1, 2, 3),
            cookie: None,
            fingerprint: fp,
            tls: fp_types::TlsFacet::unobserved(),
            behavior: BehaviorTrace::silent(),
            cadence: fp_types::BehaviorFacet::unobserved(),
            source: TrafficSource::RealUser,
        }
    }

    fn consistent(kind: DeviceKind, family: BrowserFamily) -> Fingerprint {
        let mut rng = Splittable::new(1);
        let d = DeviceProfile::sample(kind, &mut rng);
        let b = BrowserProfile::contemporary(family, &mut rng);
        Collector::collect(&d, &b, &LocaleSpec::en_us())
    }

    #[test]
    fn real_browsers_pass() {
        let mut botd = BotD::new();
        for (kind, family) in [
            (DeviceKind::WindowsDesktop, BrowserFamily::Chrome),
            (DeviceKind::Mac, BrowserFamily::Safari),
            (DeviceKind::LinuxDesktop, BrowserFamily::Firefox),
            (DeviceKind::IPhone, BrowserFamily::MobileSafari),
            (DeviceKind::AndroidPhone, BrowserFamily::ChromeMobile),
            (DeviceKind::AndroidPhone, BrowserFamily::SamsungInternet),
        ] {
            let fp = consistent(kind, family);
            assert_eq!(
                botd.decide(&request_with(fp)),
                Verdict::Human,
                "{kind:?}/{family:?} is a real user"
            );
        }
    }

    #[test]
    fn webdriver_flag_is_detected() {
        let mut botd = BotD::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome)
            .with(AttrId::Webdriver, true);
        assert_eq!(botd.decide(&request_with(fp)), Verdict::Bot);
    }

    #[test]
    fn headless_signature_detected() {
        // Chromium UA, no plugins, no touch — the classic headless shape.
        let mut botd = BotD::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome)
            .with(
                AttrId::Plugins,
                fp_types::AttrValue::list(Vec::<&str>::new()),
            )
            .with(
                AttrId::MimeTypes,
                fp_types::AttrValue::list(Vec::<&str>::new()),
            );
        assert_eq!(botd.decide(&request_with(fp)), Verdict::Bot);
    }

    #[test]
    fn any_pdf_plugin_evades() {
        // Figure 4: the presence of any PDF plugin nearly guarantees evasion.
        let mut botd = BotD::new();
        for plugin in fp_fingerprint::catalog::CHROMIUM_PDF_PLUGINS {
            let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome)
                .with(AttrId::Plugins, fp_types::AttrValue::list([plugin]));
            assert_eq!(botd.decide(&request_with(fp)), Verdict::Human, "{plugin}");
        }
    }

    #[test]
    fn touch_support_evades() {
        // §5.3.3: S14/S20 exploit touchSupport instead of plugins.
        let mut botd = BotD::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome)
            .with(
                AttrId::Plugins,
                fp_types::AttrValue::list(Vec::<&str>::new()),
            )
            .with(AttrId::TouchSupport, "touchEvent/touchStart")
            .with(AttrId::MaxTouchPoints, 5i64);
        assert_eq!(botd.decide(&request_with(fp)), Verdict::Human);
    }

    #[test]
    fn headless_ua_marker_detected_despite_plugins() {
        let mut botd = BotD::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome).with(
            AttrId::UserAgent,
            "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/116.0.0.0 Safari/537.36",
        );
        assert_eq!(botd.decide(&request_with(fp)), Verdict::Bot);
    }

    #[test]
    fn firefox_without_plugins_is_not_flagged() {
        // The headless signature is Chromium-specific; Tor (a Firefox) must
        // pass BotD (Appendix G).
        let mut botd = BotD::new();
        let fp = consistent(DeviceKind::LinuxDesktop, BrowserFamily::Firefox).with(
            AttrId::Plugins,
            fp_types::AttrValue::list(Vec::<&str>::new()),
        );
        assert_eq!(botd.decide(&request_with(fp)), Verdict::Human);
    }

    #[test]
    fn spoofed_product_sub_detected() {
        let mut botd = BotD::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome)
            .with(AttrId::ProductSub, "20100101");
        assert_eq!(botd.decide(&request_with(fp)), Verdict::Bot);
    }
}
