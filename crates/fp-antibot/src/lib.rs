//! Simulated anti-bot oracles.
//!
//! The paper treats DataDome and BotD as black boxes and measures *which
//! requests get past them*. These simulators reproduce that measured
//! conditional behaviour so every downstream analysis (evasion tables, SHAP
//! attribution, FP-Inconsistent's added detection) exercises the same code
//! paths against oracles with the same blind spots:
//!
//! * [`BotD`] — client-side script: fingerprint-only signals, no IP view.
//!   Core signal is the headless-Chromium signature (Chromium UA with an
//!   empty plugin array and no touch support). Measured blind spots: any
//!   plugin present (Figure 4) or touch support claimed (§5.3.3) ⇒ evasion.
//! * [`DataDome`] — server-side engine: fingerprint + IP + behavioural
//!   signals + per-IP history. Always-detect signals on `ScreenFrame` /
//!   `ForcedColors` (§5.3.2), Tor-exit blocking and fingerprint-churn rate
//!   limiting (Appendix G). Measured blind spot: a mobile-looking profile
//!   with `hardwareConcurrency < 8` excuses the absence of mouse behaviour
//!   (Figure 5, Appendix C).
//!
//! Decisions are deterministic functions of the request (plus, for
//! DataDome, per-IP history) — there is no hidden randomness to tune.

pub mod api_access;
pub mod behavior;
pub mod botd;
pub mod datadome;

pub use api_access::{ApiAccess, API_ACCESS_TABLE};
pub use botd::BotD;
pub use datadome::DataDome;

// The detection contract is shared workspace-wide (`fp_types::detect`):
// these simulators implement the same `Detector` trait FP-Inconsistent's
// own spatial/temporal detectors do, so the honey site runs one chain.
// Re-exported here because this crate defined the original trait.
pub use fp_types::detect::{Detector, StateScope, Verdict};
