//! Simulated anti-bot oracles.
//!
//! The paper treats DataDome and BotD as black boxes and measures *which
//! requests get past them*. These simulators reproduce that measured
//! conditional behaviour so every downstream analysis (evasion tables, SHAP
//! attribution, FP-Inconsistent's added detection) exercises the same code
//! paths against oracles with the same blind spots:
//!
//! * [`BotD`] — client-side script: fingerprint-only signals, no IP view.
//!   Core signal is the headless-Chromium signature (Chromium UA with an
//!   empty plugin array and no touch support). Measured blind spots: any
//!   plugin present (Figure 4) or touch support claimed (§5.3.3) ⇒ evasion.
//! * [`DataDome`] — server-side engine: fingerprint + IP + behavioural
//!   signals + per-IP history. Always-detect signals on `ScreenFrame` /
//!   `ForcedColors` (§5.3.2), Tor-exit blocking and fingerprint-churn rate
//!   limiting (Appendix G). Measured blind spot: a mobile-looking profile
//!   with `hardwareConcurrency < 8` excuses the absence of mouse behaviour
//!   (Figure 5, Appendix C).
//!
//! Decisions are deterministic functions of the request (plus, for
//! DataDome, per-IP history) — there is no hidden randomness to tune.

pub mod api_access;
pub mod behavior;
pub mod botd;
pub mod datadome;

pub use api_access::{ApiAccess, API_ACCESS_TABLE};
pub use botd::BotD;
pub use datadome::DataDome;

use fp_types::Request;

/// An anti-bot service's verdict on one request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Verdict {
    /// Let through — the request looked human.
    Human,
    /// Blocked — the request was classified as a bot.
    Bot,
}

impl Verdict {
    /// Did the request get past the service?
    pub fn evaded(self) -> bool {
        self == Verdict::Human
    }
}

/// A bot-detection service integrated on the honey site.
pub trait Detector {
    /// Service name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Decide one request. `&mut self` because server-side engines keep
    /// per-IP state; requests must be fed in arrival order.
    fn decide(&mut self, request: &Request) -> Verdict;

    /// Drop accumulated state (new measurement run).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_evaded() {
        assert!(Verdict::Human.evaded());
        assert!(!Verdict::Bot.evaded());
    }
}
