//! The DataDome-like detector: a server-side engine.
//!
//! DataDome sees the browser attributes *and* the network (source IP,
//! request history) *and* behavioural telemetry (mouse events — Table 5
//! lists the MouseEvent listeners its script installs). The rule structure
//! below reproduces the conditional behaviour the paper measured:
//!
//! * hard fingerprint signals that always detect (`webdriver`, headless UA
//!   markers, implausible `ScreenFrame` values, `ForcedColors` off-Windows
//!   — §5.3.2 "certain values always result in detection");
//! * Tor-exit blocking and per-IP fingerprint-churn rate limiting
//!   (Appendix G: Brave gets flagged "roughly after the first 10 requests",
//!   all Tor requests are flagged);
//! * behavioural evidence: credible pointer input passes (real desktop
//!   users), touch input on a touch device passes (real mobile users);
//! * the measured blind spot: with *no* behavioural evidence, a profile
//!   that looks like a phone (mobile OS or touch) with fewer than 8 cores
//!   is excused — phones have no mouse, and cheap phones dominate; this is
//!   exactly the `hardwareConcurrency` effect of Figure 5 and the low-core
//!   branch of the Appendix C decision path.

use crate::{Detector, StateScope, Verdict};
use fp_netsim::blocklist::is_tor_exit;
use fp_netsim::NetDb;
use fp_types::{AttrId, BehaviorTrace, Fingerprint, Request, StoredRequest};
use std::collections::HashMap;

/// `ScreenFrame` values DataDome always rejects: no real OS chrome
/// (taskbar/dock/notch) exceeds this many pixels.
pub const MAX_PLAUSIBLE_SCREEN_FRAME: i64 = 100;

/// Per-IP history window for the churn detector.
const CHURN_MIN_REQUESTS: u32 = 10;
const CHURN_DISTINCT_FRACTION: f64 = 0.5;

#[derive(Default)]
struct IpHistory {
    requests: u32,
    digests: std::collections::HashSet<u64>,
    /// Once the churn detector fires, the address stays flagged — Appendix G:
    /// DataDome "starts detecting all requests from Brave as bots".
    flagged: bool,
}

/// DataDome simulator (stateful: per-IP history, keyed by the address's
/// salted hash so the live path and the stored-record path share one state
/// machine).
#[derive(Default)]
pub struct DataDome {
    history: HashMap<u64, IpHistory>,
}

impl DataDome {
    /// Fresh instance.
    pub fn new() -> DataDome {
        DataDome::default()
    }

    /// Decide a live request (legacy entry point; identical state machine
    /// to the [`Detector`] impl — both funnel into `DataDome::decide_parts`).
    pub fn decide(&mut self, request: &Request) -> Verdict {
        self.decide_parts(
            &request.fingerprint,
            &request.behavior,
            NetDb::hash_ip(request.ip),
            is_tor_exit(request.ip),
        )
    }

    fn hard_fingerprint_signals(fp: &Fingerprint) -> bool {
        if fp.get(AttrId::Webdriver).as_int() == Some(1) {
            return true;
        }
        if let Some(ua) = fp.get(AttrId::UserAgent).as_str() {
            if ua.contains("HeadlessChrome") || ua.contains("PhantomJS") {
                return true;
            }
        }
        // Implausible screen frame — a value no real taskbar/dock produces.
        if let Some(frame) = fp.get(AttrId::ScreenFrame).as_int() {
            if !(0..=MAX_PLAUSIBLE_SCREEN_FRAME).contains(&frame) {
                return true;
            }
        }
        // forced-colors is Windows high-contrast; claiming it elsewhere is
        // an always-detect signal.
        if fp.get(AttrId::ForcedColors).as_int() == Some(1) {
            let platform = fp.get(AttrId::Platform).as_str().unwrap_or("");
            if !platform.starts_with("Win") {
                return true;
            }
        }
        // `window.chrome` missing on a Chromium UA — the raw-headless
        // signature (same check BotD makes; DataDome reads the same probes).
        let chromium_ua = matches!(
            fp.get(AttrId::UaBrowser).as_str().unwrap_or(""),
            "Chrome" | "Chrome Mobile" | "Edge" | "Samsung Internet" | "MiuiBrowser"
        );
        if chromium_ua {
            let flavors_empty = fp
                .get(AttrId::VendorFlavors)
                .as_list()
                .map(|l| l.is_empty())
                .unwrap_or(true);
            if flavors_empty {
                return true;
            }
        }
        false
    }

    /// Does the fingerprint claim to be a touch/mobile device?
    fn claims_mobile(fp: &Fingerprint) -> bool {
        let touch = fp
            .get(AttrId::TouchSupport)
            .as_str()
            .map(|t| t != "None")
            .unwrap_or(false)
            || fp.get(AttrId::MaxTouchPoints).as_int().unwrap_or(0) > 0;
        let mobile_os = matches!(fp.get(AttrId::UaOs).as_str(), Some("iOS") | Some("Android"));
        touch || mobile_os
    }

    /// The whole rule engine, over the facts both entry points can supply.
    fn decide_parts(
        &mut self,
        fp: &Fingerprint,
        behavior: &BehaviorTrace,
        ip_key: u64,
        tor_exit: bool,
    ) -> Verdict {
        // Network-level: Tor exits are blocked outright (Appendix G).
        if tor_exit {
            return Verdict::Bot;
        }

        // Per-IP fingerprint churn: many requests from one address with
        // ever-changing fingerprints is either farbling (Brave) or a bot
        // rotating covers. Evaluated before this request joins the window.
        let hist = self.history.entry(ip_key).or_default();
        if hist.requests >= CHURN_MIN_REQUESTS
            && (hist.digests.len() as f64) / f64::from(hist.requests) > CHURN_DISTINCT_FRACTION
        {
            hist.flagged = true;
        }
        hist.requests += 1;
        if hist.digests.len() < 4096 {
            hist.digests.insert(fp.digest());
        }
        if hist.flagged {
            return Verdict::Bot;
        }

        if Self::hard_fingerprint_signals(fp) {
            return Verdict::Bot;
        }

        // Behavioural evidence of a human: a pointer trajectory whose
        // statistics the behavioural model scores as natural, or touch
        // input on a touch-claiming device.
        if crate::behavior::credible_pointer(behavior) {
            return Verdict::Human;
        }
        if behavior.touch_events >= 1 && Self::claims_mobile(fp) {
            return Verdict::Human;
        }

        // No (credible) input. Desktops without input are bots; phone-like
        // profiles are excused — unless the core count says "server".
        let cores = fp.get(AttrId::HardwareConcurrency).as_int().unwrap_or(16);
        if Self::claims_mobile(fp) && cores < 8 {
            return Verdict::Human;
        }
        Verdict::Bot
    }
}

impl Detector for DataDome {
    fn name(&self) -> &'static str {
        fp_types::detect::provenance::DATADOME
    }

    fn scope(&self) -> StateScope {
        StateScope::PerIp
    }

    fn observe(&mut self, request: &StoredRequest) -> Verdict {
        self.decide_parts(
            &request.fingerprint,
            &request.behavior,
            request.ip_hash,
            request.tor_exit,
        )
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn fork(&self) -> Box<dyn Detector> {
        Box::new(DataDome::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_fingerprint::{
        BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile, LocaleSpec,
    };
    use fp_types::{
        sym, AttrValue, BehaviorTrace, Fingerprint, SimTime, Splittable, TrafficSource,
    };
    use std::net::Ipv4Addr;

    fn consistent(kind: DeviceKind, family: BrowserFamily) -> Fingerprint {
        let mut rng = Splittable::new(2);
        let d = DeviceProfile::sample(kind, &mut rng);
        let b = BrowserProfile::contemporary(family, &mut rng);
        Collector::collect(&d, &b, &LocaleSpec::en_us())
    }

    fn request(fp: Fingerprint, behavior: BehaviorTrace, ip: Ipv4Addr) -> Request {
        Request {
            id: 0,
            time: SimTime::EPOCH,
            site_token: sym("t"),
            ip,
            cookie: None,
            fingerprint: fp,
            tls: fp_types::TlsFacet::unobserved(),
            behavior,
            cadence: fp_types::BehaviorFacet::unobserved(),
            source: TrafficSource::RealUser,
        }
    }

    fn human_mouse() -> BehaviorTrace {
        BehaviorTrace {
            mouse_events: 25,
            touch_events: 0,
            pointer: Some(fp_types::PointerStats {
                samples: 25,
                duration_ms: 2400,
                speed_cv: 0.6,
                curvature: 0.15,
                pause_fraction: 0.2,
            }),
            first_input_delay_ms: 700,
        }
    }

    fn human_touch() -> BehaviorTrace {
        BehaviorTrace {
            mouse_events: 0,
            touch_events: 6,
            pointer: None,
            first_input_delay_ms: 450,
        }
    }

    const RESIDENTIAL_IP: Ipv4Addr = Ipv4Addr::new(73, 5, 5, 5);

    #[test]
    fn real_desktop_user_passes() {
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome);
        assert_eq!(
            dd.decide(&request(fp, human_mouse(), RESIDENTIAL_IP)),
            Verdict::Human
        );
    }

    #[test]
    fn real_mobile_user_passes() {
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::IPhone, BrowserFamily::MobileSafari);
        assert_eq!(
            dd.decide(&request(fp, human_touch(), RESIDENTIAL_IP)),
            Verdict::Human
        );
    }

    #[test]
    fn silent_desktop_is_detected() {
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome);
        assert_eq!(
            dd.decide(&request(fp, BehaviorTrace::silent(), RESIDENTIAL_IP)),
            Verdict::Bot
        );
    }

    #[test]
    fn silent_low_core_phone_profile_evades() {
        // The Figure 5 blind spot: phone-like, < 8 cores, no input — excused.
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::IPhone, BrowserFamily::MobileSafari);
        assert!(fp.get(AttrId::HardwareConcurrency).as_int().unwrap() < 8);
        assert_eq!(
            dd.decide(&request(fp, BehaviorTrace::silent(), RESIDENTIAL_IP)),
            Verdict::Human
        );
    }

    #[test]
    fn silent_high_core_phone_claim_is_detected() {
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::IPhone, BrowserFamily::MobileSafari)
            .with(AttrId::HardwareConcurrency, 32i64);
        assert_eq!(
            dd.decide(&request(fp, BehaviorTrace::silent(), RESIDENTIAL_IP)),
            Verdict::Bot
        );
    }

    #[test]
    fn screen_frame_anomaly_always_detected() {
        // §5.3.2: certain ScreenFrame values always result in detection —
        // even with credible mouse behaviour.
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome)
            .with(AttrId::ScreenFrame, 240i64);
        assert_eq!(
            dd.decide(&request(fp, human_mouse(), RESIDENTIAL_IP)),
            Verdict::Bot
        );
    }

    #[test]
    fn forced_colors_off_windows_detected() {
        let mut dd = DataDome::new();
        let fp =
            consistent(DeviceKind::Mac, BrowserFamily::Safari).with(AttrId::ForcedColors, true);
        assert_eq!(
            dd.decide(&request(fp, human_mouse(), RESIDENTIAL_IP)),
            Verdict::Bot
        );
        // On Windows the same flag is legitimate high-contrast mode.
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome)
            .with(AttrId::ForcedColors, true);
        assert_eq!(
            dd.decide(&request(fp, human_mouse(), RESIDENTIAL_IP)),
            Verdict::Human
        );
    }

    #[test]
    fn tor_exit_is_always_blocked() {
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Firefox);
        let tor_ip = Ipv4Addr::new(185, 20, 1, 1);
        assert_eq!(dd.decide(&request(fp, human_mouse(), tor_ip)), Verdict::Bot);
    }

    #[test]
    fn fingerprint_churn_from_one_ip_gets_flagged_after_ten() {
        // Appendix G: Brave's farbling (new fingerprint per request, same
        // IP) trips DataDome after roughly 10 requests.
        let mut dd = DataDome::new();
        let ip = RESIDENTIAL_IP;
        let mut verdicts = Vec::new();
        for i in 0..30u32 {
            let fp = consistent(DeviceKind::Mac, BrowserFamily::Chrome)
                .with(AttrId::HardwareConcurrency, i64::from(2 + (i % 13)))
                .with(
                    AttrId::DeviceMemory,
                    AttrValue::float(f64::from(1 << (i % 4))),
                );
            verdicts.push(dd.decide(&request(fp, human_mouse(), ip)));
        }
        assert!(
            verdicts[..8].iter().all(|v| *v == Verdict::Human),
            "early requests pass"
        );
        assert!(
            verdicts[12..].iter().all(|v| *v == Verdict::Bot),
            "churn flagged after the window: {verdicts:?}"
        );
    }

    #[test]
    fn stable_fingerprint_from_one_ip_is_fine() {
        // A NATed office: many requests, same fingerprints — no churn flag.
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome);
        for _ in 0..50 {
            assert_eq!(
                dd.decide(&request(fp.clone(), human_mouse(), RESIDENTIAL_IP)),
                Verdict::Human
            );
        }
    }

    #[test]
    fn low_naturalness_mouse_replay_is_detected_on_desktop() {
        let mut dd = DataDome::new();
        let fp = consistent(DeviceKind::WindowsDesktop, BrowserFamily::Chrome);
        let replay = BehaviorTrace {
            mouse_events: 40,
            touch_events: 0,
            pointer: Some(fp_types::PointerStats {
                samples: 40,
                duration_ms: 320,
                speed_cv: 0.02,
                curvature: 0.0,
                pause_fraction: 0.0,
            }),
            first_input_delay_ms: 5,
        };
        assert_eq!(
            dd.decide(&request(fp, replay, RESIDENTIAL_IP)),
            Verdict::Bot
        );
    }

    #[test]
    fn reset_clears_history() {
        let mut dd = DataDome::new();
        for i in 0..20u32 {
            let fp = consistent(DeviceKind::Mac, BrowserFamily::Chrome)
                .with(AttrId::HardwareConcurrency, i64::from(2 + (i % 13)));
            let _ = dd.decide(&request(fp, human_mouse(), RESIDENTIAL_IP));
        }
        dd.reset();
        let fp = consistent(DeviceKind::Mac, BrowserFamily::Chrome);
        assert_eq!(
            dd.decide(&request(fp, human_mouse(), RESIDENTIAL_IP)),
            Verdict::Human
        );
    }
}
