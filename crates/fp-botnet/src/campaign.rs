//! Whole-campaign orchestration.
//!
//! Generates all twenty services (in parallel — the work is CPU-bound, so
//! per the Tokio guide's own advice this is plain `crossbeam` scoped
//! threads, not async), merges the streams in arrival order, and exposes
//! the ground-truth designs for calibration.

use crate::realuser::{self, RealUserRequest};
use crate::service::{self, DesignInfo as ServiceDesign, GeneratedRequest};
use crate::spec::SERVICES;
use fp_types::{PrivacyTech, Request, Scale, ServiceId, Symbol};

pub use crate::service::DesignInfo;

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Volume scale relative to the paper's 507,080 bot requests.
    pub scale: Scale,
    /// Master seed; every stream derives from it.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            scale: Scale::FULL,
            seed: 0xF9_1C0DE,
        }
    }
}

impl CampaignConfig {
    /// Test-sized campaign (5 % volume).
    pub fn test_sized() -> CampaignConfig {
        CampaignConfig {
            scale: Scale::test_default(),
            seed: 0xF9_1C0DE,
        }
    }
}

/// A generated campaign: bot traffic in arrival order with parallel design
/// ground truth, the real-user set, and the two agent cohorts of the
/// cross-layer extension.
pub struct Campaign {
    /// The parameters the campaign was generated with.
    pub config: CampaignConfig,
    /// Bot requests, sorted by arrival time. `Request::id` is 0 until a
    /// store ingests them.
    pub bot_requests: Vec<Request>,
    /// Design ground truth, index-aligned with `bot_requests`.
    pub designs: Vec<ServiceDesign>,
    /// Real-user requests (separate URL, §7.4) with spoofer ground truth.
    pub real_users: Vec<RealUserRequest>,
    /// AI-browsing-agent cohort (separate URL): real-browser TLS,
    /// automation-shaped behaviour.
    pub ai_agents: Vec<Request>,
    /// TLS-lagging evasive cohort (separate URL): patched JS fingerprints
    /// over a non-browser ClientHello.
    pub tls_laggards: Vec<Request>,
}

/// The adversarial slice of a campaign: the bot services' merged request
/// stream plus the TLS-laggard cohort, with the truthful populations
/// (real users, AI agents, privacy tools) skipped. What the arena
/// regenerates every round — request content is identical to the
/// corresponding [`Campaign::generate`] fields for the same config.
pub struct AdversarialTraffic {
    /// Bot requests, sorted by arrival time.
    pub bot_requests: Vec<Request>,
    /// The TLS-lagging evasive cohort.
    pub tls_laggards: Vec<Request>,
}

/// Generate all twenty services in parallel and merge in arrival order.
fn generate_services(config: CampaignConfig) -> Vec<GeneratedRequest> {
    let mut per_service: Vec<Vec<GeneratedRequest>> = Vec::with_capacity(SERVICES.len());
    per_service.resize_with(SERVICES.len(), Vec::new);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for spec in SERVICES.iter() {
            handles.push(scope.spawn(move |_| service::generate(spec, config.scale, config.seed)));
        }
        for (slot, handle) in per_service.iter_mut().zip(handles) {
            *slot = handle.join().expect("service generator panicked");
        }
    })
    .expect("generation scope panicked");

    let mut merged: Vec<GeneratedRequest> = per_service.into_iter().flatten().collect();
    merged.sort_by_key(|g| g.request.time);
    merged
}

impl Campaign {
    /// Generate the full campaign.
    pub fn generate(config: CampaignConfig) -> Campaign {
        let merged = generate_services(config);
        let mut bot_requests = Vec::with_capacity(merged.len());
        let mut designs = Vec::with_capacity(merged.len());
        for g in merged {
            bot_requests.push(g.request);
            designs.push(g.design);
        }

        let real_users = realuser::generate(config.scale, config.seed);
        let ai_agents = crate::cohorts::generate_ai_agents(config.scale, config.seed);
        let tls_laggards = crate::cohorts::generate_tls_laggards(config.scale, config.seed);

        Campaign {
            config,
            bot_requests,
            designs,
            real_users,
            ai_agents,
            tls_laggards,
        }
    }

    /// Generate only the adversarial traffic (bot services + TLS
    /// laggards), skipping the truthful populations — the arena's
    /// per-round regeneration path, which would otherwise pay for real
    /// users and AI agents it never uses.
    pub fn generate_adversarial(config: CampaignConfig) -> AdversarialTraffic {
        AdversarialTraffic {
            bot_requests: generate_services(config)
                .into_iter()
                .map(|g| g.request)
                .collect(),
            tls_laggards: crate::cohorts::generate_tls_laggards(config.scale, config.seed),
        }
    }

    /// The URL token assigned to a bot service.
    pub fn token_of(&self, id: ServiceId) -> Symbol {
        service::site_token(self.config.seed, id.0)
    }

    /// The real-user URL token.
    pub fn real_user_token(&self) -> Symbol {
        realuser::real_user_token(self.config.seed)
    }

    /// The AI-agent cohort's URL token.
    pub fn ai_agent_token(&self) -> Symbol {
        crate::cohorts::ai_agent_token(self.config.seed)
    }

    /// The TLS-lagging cohort's URL token.
    pub fn tls_laggard_token(&self) -> Symbol {
        crate::cohorts::tls_laggard_token(self.config.seed)
    }

    /// Generate the §7.5 privacy-technology request sets (not part of the
    /// bot campaign; separate URLs).
    pub fn privacy_experiment(&self) -> Vec<(PrivacyTech, Vec<Request>)> {
        PrivacyTech::ALL
            .iter()
            .map(|&tech| (tech, crate::privacy::generate(tech, self.config.seed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_of;
    use fp_types::TrafficSource;

    #[test]
    fn campaign_volume_and_order() {
        let campaign = Campaign::generate(CampaignConfig {
            scale: Scale::ratio(0.01),
            seed: 1,
        });
        let expected: u64 = SERVICES
            .iter()
            .map(|s| Scale::ratio(0.01).apply(s.requests))
            .sum();
        assert_eq!(campaign.bot_requests.len() as u64, expected);
        assert_eq!(campaign.bot_requests.len(), campaign.designs.len());
        assert!(campaign
            .bot_requests
            .windows(2)
            .all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn per_service_volumes_survive_merge() {
        let campaign = Campaign::generate(CampaignConfig {
            scale: Scale::ratio(0.01),
            seed: 2,
        });
        for spec in SERVICES.iter() {
            let n = campaign
                .bot_requests
                .iter()
                .filter(|r| r.source == TrafficSource::Bot(spec.id))
                .count() as u64;
            assert_eq!(n, Scale::ratio(0.01).apply(spec.requests), "{}", spec.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Campaign::generate(CampaignConfig {
            scale: Scale::ratio(0.01),
            seed: 3,
        });
        let b = Campaign::generate(CampaignConfig {
            scale: Scale::ratio(0.01),
            seed: 3,
        });
        assert_eq!(a.bot_requests.len(), b.bot_requests.len());
        for (x, y) in a.bot_requests.iter().zip(&b.bot_requests) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.fingerprint, y.fingerprint);
        }
    }

    #[test]
    fn adversarial_slice_matches_the_full_campaign() {
        let config = CampaignConfig {
            scale: Scale::ratio(0.01),
            seed: 5,
        };
        let full = Campaign::generate(config);
        let slice = Campaign::generate_adversarial(config);
        assert_eq!(slice.bot_requests.len(), full.bot_requests.len());
        for (a, b) in slice.bot_requests.iter().zip(&full.bot_requests) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.cookie, b.cookie);
            assert_eq!(a.fingerprint, b.fingerprint);
        }
        assert_eq!(slice.tls_laggards.len(), full.tls_laggards.len());
        for (a, b) in slice.tls_laggards.iter().zip(&full.tls_laggards) {
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.tls, b.tls);
        }
    }

    #[test]
    fn tokens_are_per_service() {
        let campaign = Campaign::generate(CampaignConfig {
            scale: Scale::ratio(0.01),
            seed: 4,
        });
        for r in &campaign.bot_requests {
            let TrafficSource::Bot(id) = r.source else {
                panic!()
            };
            assert_eq!(r.site_token, campaign.token_of(id));
        }
        let s1 = spec_of(ServiceId(1));
        assert!(s1.requests > 0);
    }
}
