//! The §7.5 privacy-technology experiment.
//!
//! 300 requests per tool from four devices (M1 MacBook Pro, Intel Linux
//! desktop, iPad Pro, Pixel 7), replaying each tool's documented behaviour:
//!
//! * **Brave** farbles audio/canvas/plugins/deviceMemory/
//!   hardwareConcurrency/screenResolution *to plausible values* and keeps
//!   cookies. Desktop Brave re-farbles per request here (per-session in
//!   reality; the honey-site visits are separate sessions), Android Brave
//!   keeps one farble seed per session, iOS "Brave" is a WebKit shell that
//!   farbles nothing — which is how Appendix G's "~10 requests per device,
//!   then DataDome flags everything" yields a 41 % false-positive rate on
//!   300 requests (2 farbling desktops × (75−10)/300 ≈ 0.43).
//! * **Tor Browser** presents the uniform cross-user fingerprint (Windows
//!   UA, UTC timezone, letterboxed screen) and exits from public relays.
//! * **Safari / uBlock Origin / AdBlock Plus** block trackers but alter no
//!   attributes.

use crate::locale::locale_for_region;
use fp_fingerprint::{
    BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile, LocaleSpec,
};
use fp_netsim::asn::{asns_of_class, AsnClass};
use fp_netsim::NetDb;
use fp_types::{
    sym, AttrId, AttrValue, BehaviorTrace, PrivacyTech, Request, SimTime, Splittable, Symbol,
    TrafficSource,
};

/// Requests per technology (paper: 300 across the four devices).
pub const REQUESTS_PER_TECH: u64 = 300;

/// The four experiment devices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExperimentDevice {
    MacBookM1,
    LinuxDesktop,
    IPadPro,
    Pixel7,
}

impl ExperimentDevice {
    pub const ALL: [ExperimentDevice; 4] = [
        ExperimentDevice::MacBookM1,
        ExperimentDevice::LinuxDesktop,
        ExperimentDevice::IPadPro,
        ExperimentDevice::Pixel7,
    ];

    fn kind(self) -> DeviceKind {
        match self {
            ExperimentDevice::MacBookM1 => DeviceKind::Mac,
            ExperimentDevice::LinuxDesktop => DeviceKind::LinuxDesktop,
            ExperimentDevice::IPadPro => DeviceKind::IPad,
            ExperimentDevice::Pixel7 => DeviceKind::AndroidPhone,
        }
    }
}

/// URL token for one technology's honey-site version.
pub fn privacy_token(seed: u64, tech: PrivacyTech) -> Symbol {
    sym(&format!(
        "{}{:06x}",
        tech.name().replace(' ', "-").to_lowercase(),
        fp_types::mix2(seed, tech as u64) & 0xFF_FFFF
    ))
}

/// Generate the 300-request experiment for one technology.
pub fn generate(tech: PrivacyTech, seed: u64) -> Vec<Request> {
    let mut rng = Splittable::new(seed)
        .child_str("privacy")
        .child(tech as u64);
    let token = privacy_token(seed, tech);
    let per_device = REQUESTS_PER_TECH / ExperimentDevice::ALL.len() as u64;

    let mut out = Vec::new();
    for device in ExperimentDevice::ALL {
        let base_profile = device_profile(device, &mut rng);
        let (ip, locale) = placement(tech, &mut rng);
        let cookie = rng.next_u64();
        // One session-stable farble seed (Android Brave model).
        let session_farble = rng.next_u64();
        for i in 0..per_device {
            let fp = fingerprint_for(
                tech,
                device,
                &base_profile,
                &locale,
                session_farble,
                i,
                &mut rng,
            );
            let behavior = human_behavior(device, &mut rng);
            out.push(Request {
                id: 0,
                time: SimTime::from_day(80 + (i % 7) as u32, rng.next_below(86_400)),
                site_token: token,
                ip,
                cookie: Some(cookie),
                fingerprint: fp,
                tls: tls_for(tech, device),
                behavior,
                cadence: fp_types::BehaviorFacet::unobserved(),
                source: TrafficSource::Privacy(tech),
            });
        }
    }
    out
}

/// The genuine TLS facet for one technology on one device. Every tool
/// here is a real browser: Brave and the blocker setups greet with their
/// engine's stack, Tor Browser with Firefox's — privacy tools never fake
/// the handshake, so none of them can trip the cross-layer detector.
fn tls_for(tech: PrivacyTech, device: ExperimentDevice) -> fp_types::TlsFacet {
    match tech {
        PrivacyTech::Tor => BrowserFamily::Firefox.tls_facet(),
        PrivacyTech::Brave => brave_engine(device).tls_facet(),
        PrivacyTech::Safari | PrivacyTech::UblockOrigin | PrivacyTech::AdblockPlus => {
            blocker_family(tech, device).tls_facet()
        }
    }
}

/// The browser family a blocker-type setup actually runs on a device
/// (mirrors the choices in `fingerprint_for`).
fn blocker_family(tech: PrivacyTech, device: ExperimentDevice) -> BrowserFamily {
    match (tech, device) {
        (PrivacyTech::Safari, ExperimentDevice::MacBookM1) => BrowserFamily::Safari,
        (PrivacyTech::Safari, ExperimentDevice::LinuxDesktop) => BrowserFamily::Firefox,
        (_, ExperimentDevice::IPadPro) => BrowserFamily::MobileSafari,
        (_, ExperimentDevice::Pixel7) => BrowserFamily::ChromeMobile,
        _ => BrowserFamily::Chrome,
    }
}

fn device_profile(device: ExperimentDevice, rng: &mut Splittable) -> DeviceProfile {
    match device {
        ExperimentDevice::Pixel7 => DeviceProfile::android("Pixel 7"),
        d => DeviceProfile::sample(d.kind(), rng),
    }
}

fn placement(tech: PrivacyTech, rng: &mut Splittable) -> (std::net::Ipv4Addr, LocaleSpec) {
    match tech {
        PrivacyTech::Tor => {
            // Exit relays, not the user's own network.
            let exits = asns_of_class(AsnClass::TorExit);
            let asn = exits[rng.next_below(exits.len() as u64) as usize];
            let ip = NetDb::sample_ip(asn, rng);
            // Tor Browser pins the browser-visible locale to en-US/UTC
            // regardless of the exit.
            let locale = LocaleSpec {
                timezone: "UTC",
                offset_minutes: 0,
                language: "en-US",
                languages: &["en-US", "en"],
                geo_region: "United States of America/California",
            };
            (ip, locale)
        }
        _ => {
            // The lab sits on a Californian residential line.
            let asns = fp_netsim::asn::asns_in("United States of America", AsnClass::Residential);
            let asn = asns[rng.next_below(asns.len() as u64) as usize];
            let ip = NetDb::sample_ip(asn, rng);
            let locale = locale_for_region(NetDb::lookup(ip).region);
            (ip, locale)
        }
    }
}

fn fingerprint_for(
    tech: PrivacyTech,
    device: ExperimentDevice,
    profile: &DeviceProfile,
    locale: &LocaleSpec,
    session_farble: u64,
    request_idx: u64,
    rng: &mut Splittable,
) -> fp_types::Fingerprint {
    // Browser version is a property of the installed browser — stable per
    // device across the experiment's requests.
    let mut version_rng = Splittable::new(session_farble ^ 0xB10);
    let _ = rng;
    match tech {
        PrivacyTech::Brave => {
            let browser = BrowserProfile::contemporary(brave_engine(device), &mut version_rng);
            let mut fp = Collector::collect(profile, &browser, locale);
            match device {
                // iOS "Brave" is a WebKit shell: no farbling at all.
                ExperimentDevice::IPadPro => fp,
                // Android Brave farbles the noise digests only, with one
                // session-stable seed (hardware attributes of a known
                // model must stay truthful to remain plausible).
                ExperimentDevice::Pixel7 => {
                    let mut frng = Splittable::new(session_farble);
                    fp.set(
                        AttrId::Audio,
                        AttrValue::float(124.0 + frng.next_f64() / 100.0),
                    );
                    fp.set(
                        AttrId::Canvas,
                        AttrValue::text(&format!(
                            "canvas:farbled{:012x}",
                            frng.next_u64() & 0xFFFF_FFFF_FFFF
                        )),
                    );
                    fp
                }
                // Desktop Brave: full six-attribute farbling, re-drawn per
                // visit (each honey-site visit is a fresh session).
                _ => {
                    apply_brave_farbling(
                        &mut fp,
                        device,
                        fp_types::mix2(session_farble, request_idx),
                    );
                    fp
                }
            }
        }
        PrivacyTech::Tor => {
            // The uniform Tor fingerprint: Firefox ESR claiming Windows.
            let win =
                DeviceProfile::sample(DeviceKind::WindowsDesktop, &mut Splittable::new(0x70_12));
            let browser = BrowserProfile {
                family: BrowserFamily::Firefox,
                major: 115,
            };
            let mut fp = Collector::collect(&win, &browser, locale);
            // Letterboxing and spec-mandated uniformity.
            fp.set(AttrId::ScreenResolution, (1400u16, 900u16));
            fp.set(AttrId::AvailResolution, (1400u16, 900u16));
            fp.set(AttrId::ScreenFrame, 0i64);
            fp.set(AttrId::HardwareConcurrency, 4i64);
            fp
        }
        PrivacyTech::Safari => {
            // Stock Safari (or the platform default browser on non-Apple
            // devices, to keep four devices in the experiment).
            let family = match device {
                ExperimentDevice::MacBookM1 => BrowserFamily::Safari,
                ExperimentDevice::IPadPro => BrowserFamily::MobileSafari,
                ExperimentDevice::LinuxDesktop => BrowserFamily::Firefox,
                ExperimentDevice::Pixel7 => BrowserFamily::ChromeMobile,
            };
            let browser = BrowserProfile::contemporary(family, &mut version_rng);
            Collector::collect(profile, &browser, locale)
        }
        PrivacyTech::UblockOrigin | PrivacyTech::AdblockPlus => {
            // Chrome with a blocking extension: attributes untouched.
            let family = match device {
                ExperimentDevice::IPadPro => BrowserFamily::MobileSafari,
                ExperimentDevice::Pixel7 => BrowserFamily::ChromeMobile,
                _ => BrowserFamily::Chrome,
            };
            let browser = BrowserProfile::contemporary(family, &mut version_rng);
            Collector::collect(profile, &browser, locale)
        }
    }
}

fn brave_engine(device: ExperimentDevice) -> BrowserFamily {
    match device {
        ExperimentDevice::IPadPro => BrowserFamily::MobileSafari,
        ExperimentDevice::Pixel7 => BrowserFamily::ChromeMobile,
        _ => BrowserFamily::Chrome,
    }
}

/// Brave's farbling: plausible-value randomisation of six attributes
/// (§7.5: "Brave alters deviceMemory on desktops to plausible values …
/// which align with the amount of memory in typical desktops and remain
/// consistent with other fingerprint attributes").
fn apply_brave_farbling(fp: &mut fp_types::Fingerprint, device: ExperimentDevice, seed: u64) {
    let mut frng = Splittable::new(seed);
    // audio + canvas: fresh noise digests.
    fp.set(
        AttrId::Audio,
        AttrValue::float(124.0 + frng.next_f64() / 100.0),
    );
    fp.set(
        AttrId::Canvas,
        AttrValue::text(&format!(
            "canvas:farbled{:012x}",
            frng.next_u64() & 0xFFFF_FFFF_FFFF
        )),
    );
    // plugins: Brave shuffles/renames the PDF plugin entries on desktop.
    if matches!(
        device,
        ExperimentDevice::MacBookM1 | ExperimentDevice::LinuxDesktop
    ) {
        let n = 1 + frng.next_below(3);
        let names: Vec<String> = (0..n)
            .map(|i| format!("Plugin {:x}", fp_types::mix2(seed, i)))
            .collect();
        fp.set(
            AttrId::Plugins,
            AttrValue::list(names.iter().map(|s| s.as_str())),
        );
    }
    // deviceMemory / hardwareConcurrency: plausible ladder values.
    if !fp.get(AttrId::DeviceMemory).is_missing() {
        let mem = *frng.pick(&[0.5, 1.0, 2.0, 4.0, 8.0]);
        fp.set(AttrId::DeviceMemory, AttrValue::float(mem));
    }
    let cores = *frng.pick(&[2i64, 4, 8]);
    fp.set(AttrId::HardwareConcurrency, cores);
    // screenResolution: small plausible offsets (desktop panels only; the
    // offsets keep Mac constraints satisfied).
    if let Some((w, h)) = fp.get(AttrId::ScreenResolution).as_resolution() {
        if !matches!(device, ExperimentDevice::IPadPro | ExperimentDevice::Pixel7) {
            let dw = frng.next_below(17) as u16;
            let dh = frng.next_below(9) as u16;
            fp.set(AttrId::ScreenResolution, (w + dw, h + dh));
            fp.set(AttrId::AvailResolution, (w + dw, h + dh));
        }
    }
}

fn human_behavior(device: ExperimentDevice, rng: &mut Splittable) -> BehaviorTrace {
    if matches!(device, ExperimentDevice::IPadPro | ExperimentDevice::Pixel7) {
        crate::pointer::touch_trace(2 + rng.next_below(8) as u16, rng)
    } else {
        crate::pointer::human_trace(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_fingerprint::ValidityOracle;
    use fp_netsim::blocklist::is_tor_exit;
    use std::collections::HashSet;

    #[test]
    fn three_hundred_requests_each() {
        for tech in PrivacyTech::ALL {
            assert_eq!(generate(tech, 1).len(), 300, "{tech:?}");
        }
    }

    #[test]
    fn brave_farbling_stays_spatially_plausible() {
        // §7.5: Brave's alterations are consistent with other attributes —
        // no spatial rule should ever fire on them.
        for r in generate(PrivacyTech::Brave, 2) {
            let bad = ValidityOracle::scan_impossible(&r.fingerprint);
            assert!(bad.is_empty(), "Brave fingerprint impossible: {bad:?}");
        }
    }

    #[test]
    fn brave_desktop_churns_fingerprints_on_one_cookie() {
        let reqs = generate(PrivacyTech::Brave, 3);
        let mut per_cookie: std::collections::HashMap<u64, HashSet<u64>> = Default::default();
        for r in &reqs {
            per_cookie
                .entry(r.cookie.unwrap())
                .or_default()
                .insert(r.fingerprint.digest());
        }
        let max_churn = per_cookie.values().map(HashSet::len).max().unwrap();
        assert!(max_churn > 30, "desktop Brave should churn: {max_churn}");
        let min_churn = per_cookie.values().map(HashSet::len).min().unwrap();
        assert!(min_churn <= 2, "iPad Brave should be stable: {min_churn}");
    }

    #[test]
    fn tor_exits_and_uniform_fingerprint() {
        let reqs = generate(PrivacyTech::Tor, 4);
        let digests: HashSet<u64> = reqs.iter().map(|r| r.fingerprint.digest()).collect();
        assert_eq!(digests.len(), 1, "Tor fingerprint must be uniform");
        assert!(reqs.iter().all(|r| is_tor_exit(r.ip)));
        let r = &reqs[0];
        assert_eq!(r.fingerprint.get(AttrId::Timezone).as_str(), Some("UTC"));
        assert_eq!(r.fingerprint.get(AttrId::UaOs).as_str(), Some("Windows"));
    }

    #[test]
    fn blockers_alter_nothing() {
        for tech in [
            PrivacyTech::Safari,
            PrivacyTech::UblockOrigin,
            PrivacyTech::AdblockPlus,
        ] {
            let reqs = generate(tech, 5);
            for r in &reqs {
                assert!(ValidityOracle::scan_impossible(&r.fingerprint).is_empty());
            }
            // Stable per device: exactly four distinct fingerprints.
            let digests: HashSet<u64> = reqs.iter().map(|r| r.fingerprint.digest()).collect();
            assert!(digests.len() <= 4, "{tech:?}: {} digests", digests.len());
        }
    }

    #[test]
    fn everyone_interacts() {
        for tech in PrivacyTech::ALL {
            assert!(generate(tech, 6).iter().all(|r| r.behavior.has_input()));
        }
    }
}
