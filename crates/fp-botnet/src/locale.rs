//! Region → browser locale mapping, and the geo-mismatch draw.

use fp_fingerprint::LocaleSpec;
use fp_netsim::{Region, REGIONS};
use fp_types::Splittable;

/// Languages per country (first entry is `navigator.language`).
fn languages_for(country: &str) -> &'static [&'static str] {
    match country {
        "France" => &["fr-FR", "fr", "en-US"],
        "Germany" => &["de-DE", "de", "en-US"],
        "United Kingdom" => &["en-GB", "en"],
        "Netherlands" => &["nl-NL", "nl", "en-US"],
        "Mexico" => &["es-MX", "es", "en-US"],
        "Singapore" => &["en-SG", "en", "zh-SG"],
        "China" => &["zh-CN", "zh"],
        "Japan" => &["ja-JP", "ja"],
        "New Zealand" => &["en-NZ", "en"],
        "Brazil" => &["pt-BR", "pt", "en-US"],
        "India" => &["en-IN", "en", "hi-IN"],
        _ => &["en-US", "en"],
    }
}

/// The locale a truthful browser in `region` presents.
pub fn locale_for_region(region: &'static Region) -> LocaleSpec {
    let langs = languages_for(region.country);
    LocaleSpec {
        timezone: region.timezone,
        offset_minutes: region.offset_minutes,
        language: langs[0],
        languages: langs,
        geo_region: region_label(region),
    }
}

/// MaxMind-style `Country/Region` label, interned as 'static.
pub fn region_label(region: &'static Region) -> &'static str {
    fp_types::sym(&format!("{}/{}", region.country, region.name)).as_str()
}

/// Regions bots leak when their timezone alteration misses the target
/// (Table 6's Location rows: America/Los_Angeles under French/German/
/// Singaporean IPs, Asia/Shanghai and Pacific/Auckland under US IPs).
pub fn mismatch_region(rng: &mut Splittable) -> &'static Region {
    // Indices into REGIONS: California (LA), Shanghai, Auckland.
    const CANDIDATES: [usize; 3] = [0, 19, 21];
    let idx = CANDIDATES[rng.pick_weighted(&[0.60, 0.25, 0.15])];
    &REGIONS[idx]
}

/// A locale whose timezone (and geolocation hint) belongs to `leak` while
/// the languages pretend to be from `claimed` — what a bot with a half-done
/// geo alteration presents.
pub fn mismatched_locale(claimed: &'static Region, leak: &'static Region) -> LocaleSpec {
    let langs = languages_for(claimed.country);
    LocaleSpec {
        timezone: leak.timezone,
        offset_minutes: leak.offset_minutes,
        language: langs[0],
        languages: langs,
        geo_region: region_label(leak),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netsim::geo::regions_of;

    #[test]
    fn locale_matches_region_timezone() {
        for region in REGIONS.iter() {
            let l = locale_for_region(region);
            assert_eq!(l.timezone, region.timezone);
            assert_eq!(l.offset_minutes, region.offset_minutes);
            assert!(!l.languages.is_empty());
        }
    }

    #[test]
    fn french_region_speaks_french() {
        let idx = regions_of("France")[0];
        let l = locale_for_region(&REGIONS[idx]);
        assert_eq!(l.language, "fr-FR");
    }

    #[test]
    fn region_label_format() {
        let idx = regions_of("France")
            .into_iter()
            .find(|&i| REGIONS[i].name == "Hauts-de-France")
            .unwrap();
        assert_eq!(region_label(&REGIONS[idx]), "France/Hauts-de-France");
    }

    #[test]
    fn mismatch_regions_are_offset_distant() {
        let mut rng = Splittable::new(1);
        let paris_idx = regions_of("France")[0];
        let paris = &REGIONS[paris_idx];
        for _ in 0..50 {
            let leak = mismatch_region(&mut rng);
            assert_ne!(leak.offset_minutes, paris.offset_minutes, "{}", leak.name);
        }
    }

    #[test]
    fn mismatched_locale_mixes_sources() {
        let paris = &REGIONS[9];
        let la = &REGIONS[0];
        let l = mismatched_locale(paris, la);
        assert_eq!(l.timezone, "America/Los_Angeles");
        assert_eq!(l.language, "fr-FR", "languages still claim France");
        assert!(l.geo_region.starts_with("United States"));
    }
}
