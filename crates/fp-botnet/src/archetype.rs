//! Request archetypes: fingerprints that *realise* a planned cell through
//! the detectors' actual logic.
//!
//! A bot has a real runtime (usually headless Chromium on a Linux server)
//! and tells lies on top of it. A **clean** archetype is a *complete* lie —
//! every attribute of some real device emulated faithfully, so no attribute
//! pair is impossible. A **sloppy** archetype is a *partial* lie — the
//! paper's finding — leaving at least one impossible pair for the miner.
//!
//! Every constructor is covered by tests that (a) feed the result through
//! the real detectors and assert the intended cell, and (b) scan it with
//! the validity oracle and assert the intended consistency.

use crate::iphone_res;
use crate::spec::Cell;
use fp_fingerprint::{
    BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile, LocaleSpec,
};
use fp_tls::TlsClientKind;
use fp_types::{AttrId, AttrValue, BehaviorTrace, Fingerprint, Splittable, TlsFacet};

/// Which lie variant a request uses (exported for calibration tests and
/// the figure benches).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Fully consistent emulation of a real device.
    Clean,
    /// Partial emulation leaving at least one impossible attribute pair.
    Sloppy,
}

/// One built archetype: the browser-layer lie plus the network-layer
/// truth that will carry it.
pub struct Built {
    /// The (possibly fabricated) attribute vector the client script reports.
    pub fingerprint: Fingerprint,
    /// Input behaviour shipped with the page visit.
    pub behavior: BehaviorTrace,
    /// The TLS stack's facet — what the runtime's ClientHello digests to,
    /// regardless of what the fingerprint claims. Archetype constructors
    /// leave it unobserved; [`build`] fills it in.
    pub tls: TlsFacet,
}

impl Built {
    /// A built archetype with the handshake not yet attached.
    pub(crate) fn new(fingerprint: Fingerprint, behavior: BehaviorTrace) -> Built {
        Built {
            fingerprint,
            behavior,
            tls: TlsFacet::unobserved(),
        }
    }
}

/// Build a request body for `(cell, mimicry, variant)` under `locale`.
pub fn build(
    cell: Cell,
    mimicry: bool,
    variant: Variant,
    locale: &LocaleSpec,
    rng: &mut Splittable,
) -> Built {
    let mut built = match (cell, mimicry, variant) {
        (Cell::EvadeBoth, false, Variant::Clean) => clean_mobile_evader(locale, rng),
        (Cell::EvadeBoth, false, Variant::Sloppy) => sloppy_mobile_evader(locale, rng),
        (Cell::EvadeBoth, true, Variant::Clean) => mimicry_evader(true, locale, rng),
        (Cell::EvadeBoth, true, Variant::Sloppy) => sloppy_mimicry_evader(true, locale, rng),
        (Cell::EvadeDataDomeOnly, false, Variant::Clean) => android_k_evader(locale, rng),
        (Cell::EvadeDataDomeOnly, false, Variant::Sloppy) => sloppy_android_no_touch(locale, rng),
        (Cell::EvadeDataDomeOnly, true, Variant::Clean) => mimicry_evader(false, locale, rng),
        (Cell::EvadeDataDomeOnly, true, Variant::Sloppy) => {
            sloppy_mimicry_evader(false, locale, rng)
        }
        (Cell::EvadeBotDOnly, _, Variant::Clean) => detected_desktop_with_plugins(locale, rng),
        (Cell::EvadeBotDOnly, _, Variant::Sloppy) => sloppy_detected_botd_evader(locale, rng),
        (Cell::DetectedBoth, _, Variant::Clean) => detected_both(locale, rng),
        (Cell::DetectedBoth, _, Variant::Sloppy) => sloppy_detected_both(locale, rng),
    };
    built.tls = draw_bot_tls(rng).facet();
    // Most automation stacks ship canvas-noise patches (stealth plugins
    // randomise the digest per page load). The noise is on both evading
    // and detected traffic, so it carries no evasion signal — which keeps
    // the classifier honest about the attributes that do.
    if rng.chance(0.75) {
        built.fingerprint.set(
            AttrId::Canvas,
            AttrValue::text(&format!(
                "canvas:noise{:012x}",
                rng.next_u64() & 0xFFFF_FFFF_FFFF
            )),
        );
    }
    built
}

// --------------------------------------------------------------------
// Behaviour traces.

/// Credible simulated pointer input — the behavioural-mimicry evasion.
/// Good frameworks replay genuinely human-shaped trajectories (§2.3, Jing
/// et al.), so this synthesises the same paths real users produce.
pub fn mimic_good(rng: &mut Splittable) -> BehaviorTrace {
    crate::pointer::human_trace(rng)
}

/// Naive replayed input — straight lines at machine-regular intervals.
/// The behavioural model sees through it.
pub fn mimic_poor(rng: &mut Splittable) -> BehaviorTrace {
    crate::pointer::replay_trace(rng)
}

/// Simulated touch taps on a touch-claiming profile.
pub fn bot_touch(rng: &mut Splittable) -> BehaviorTrace {
    crate::pointer::touch_trace(1 + rng.next_below(4) as u16, rng)
}

// --------------------------------------------------------------------
// Shared construction helpers.

/// A bot's desktop cover: real desktop profile, Chromium browser, cores
/// from the server-grade distribution, plugins optionally stripped.
fn desktop_base(
    plugins: bool,
    force_non_apple: bool,
    locale: &LocaleSpec,
    rng: &mut Splittable,
) -> Fingerprint {
    let kind = if force_non_apple {
        *rng.pick(&[DeviceKind::WindowsDesktop, DeviceKind::LinuxDesktop])
    } else {
        [
            DeviceKind::WindowsDesktop,
            DeviceKind::Mac,
            DeviceKind::LinuxDesktop,
        ][rng.pick_weighted(&[0.68, 0.12, 0.20])]
    };
    let device = DeviceProfile::sample(kind, rng);
    let family = if kind == DeviceKind::WindowsDesktop && rng.chance(0.25) {
        BrowserFamily::Edge
    } else {
        BrowserFamily::Chrome
    };
    let browser = BrowserProfile::contemporary(family, rng);
    let mut fp = Collector::collect(&device, &browser, locale);
    // Bot desktop covers mix cheap VPS (4 cores) with bigger builds —
    // Figure 5's low-evasion CDF has ≈38% below 8 cores.
    let cores = [4i64, 8, 12, 16][rng.pick_weighted(&[0.42, 0.33, 0.15, 0.10])];
    fp.set(AttrId::HardwareConcurrency, cores);
    if !plugins {
        fp.set(AttrId::Plugins, AttrValue::list(Vec::<&str>::new()));
        fp.set(AttrId::MimeTypes, AttrValue::list(Vec::<&str>::new()));
    }
    fp
}

/// Collect a faithful iPhone fingerprint (resolution from the evader-real
/// pool, cores < 8 as real iPhones have).
fn iphone_base(locale: &LocaleSpec, rng: &mut Splittable) -> Fingerprint {
    let device = DeviceProfile::sample(DeviceKind::IPhone, rng);
    let family = if rng.chance(0.10) {
        BrowserFamily::ChromeMobileIos
    } else {
        BrowserFamily::MobileSafari
    };
    let browser = BrowserProfile::contemporary(family, rng);
    let mut fp = Collector::collect(&device, &browser, locale);
    let res = iphone_res::draw_evader_real(rng);
    fp.set(AttrId::ScreenResolution, res);
    fp.set(AttrId::AvailResolution, res);
    fp
}

fn set_resolution(fp: &mut Fingerprint, res: (u16, u16)) {
    fp.set(AttrId::ScreenResolution, res);
    fp.set(AttrId::AvailResolution, res);
}

/// Draw the TLS stack that actually carries a bot request. Bots run
/// Chromium automation or raw HTTP stacks regardless of the UA they
/// claim; that mismatch is the cross-layer extension's signal, invisible
/// to the in-paper tables.
pub fn draw_bot_tls(rng: &mut Splittable) -> TlsClientKind {
    [
        TlsClientKind::Chromium,
        TlsClientKind::GoHttp,
        TlsClientKind::PythonRequests,
    ][rng.pick_weighted(&[0.72, 0.18, 0.10])]
}

/// The *truthful* TLS facet for a fingerprint: the stack the claimed
/// browser family genuinely greets servers with. Unobserved when the UA
/// browser has no known TLS expectation.
pub fn truthful_tls(fp: &Fingerprint) -> TlsFacet {
    let ua_browser = fp.get(AttrId::UaBrowser).as_str().unwrap_or("");
    TlsClientKind::for_ua_browser(ua_browser)
        .map(TlsClientKind::facet)
        .unwrap_or_default()
}

// --------------------------------------------------------------------
// Cell (EvadeBoth): evade DataDome ∧ evade BotD.

/// Clean mobile evader: complete emulation of a real phone/tablet.
/// DataDome: phone-like, < 8 cores, silence excused. BotD: Safari engine
/// or touch support.
fn clean_mobile_evader(locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    let roll = rng.pick_weighted(&[0.57, 0.16, 0.27]);
    let fp = match roll {
        0 => iphone_base(locale, rng),
        1 => {
            let mut device = DeviceProfile::sample(DeviceKind::IPad, rng);
            if device.cores >= 8 {
                device.cores = 6;
            }
            let browser = BrowserProfile::contemporary(BrowserFamily::MobileSafari, rng);
            Collector::collect(&device, &browser, locale)
        }
        _ => {
            // The generic-K Android cover with touch left on (BotD evaded
            // via touch; the unknown model keeps the lie unconstrained).
            let device = DeviceProfile::android_generic_k();
            let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
            Collector::collect(&device, &browser, locale)
        }
    };
    let behavior = if rng.chance(0.2) {
        bot_touch(rng)
    } else {
        BehaviorTrace::silent()
    };
    Built::new(fp, behavior)
}

/// Sloppy mobile evader: the lie is partial — one of the Table 6 patterns.
fn sloppy_mobile_evader(locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    let pattern = rng.pick_weighted(&[0.33, 0.13, 0.13, 0.09, 0.09, 0.09, 0.14]);
    let fp = match pattern {
        6 => {
            // The headless-Chromium runtime keeps sending its client hints
            // under the Safari UA — the HTTP-header leak (Sec-CH-UA under
            // a WebKit UA is impossible; no WebKit engine emits it).
            let mut fp = iphone_base(locale, rng);
            fp.set(
                AttrId::SecChUa,
                format!("\"Chromium\";v=\"{}\"", *rng.pick(&[114u16, 115, 116])).as_str(),
            );
            fp.set(AttrId::SecChUaPlatform, "Linux");
            fp.set(AttrId::SecChUaMobile, "?0");
            fp
        }
        0 => {
            // Fabricated iPhone resolution (Figure 7).
            let mut fp = iphone_base(locale, rng);
            set_resolution(&mut fp, iphone_res::draw_evader_fake(rng));
            fp
        }
        1 => {
            // iPhone UA on the server's real platform (Table 6:
            // (Mobile Safari, Linux x86_64)).
            let mut fp = iphone_base(locale, rng);
            fp.set(AttrId::Platform, "Linux x86_64");
            fp
        }
        2 => {
            // Touch claimed but maxTouchPoints forgotten (iPhone, 0).
            let mut fp = iphone_base(locale, rng);
            fp.set(AttrId::MaxTouchPoints, 0i64);
            fp
        }
        3 => {
            // Wrong vendor (Mobile Safari, Google Inc.).
            let mut fp = iphone_base(locale, rng);
            fp.set(AttrId::Vendor, "Google Inc.");
            fp
        }
        4 => {
            // 16-bit colour depth on iOS (Table 6: (iPhone, 16)).
            let mut fp = iphone_base(locale, rng);
            fp.set(AttrId::ColorDepth, 16i64);
            fp
        }
        _ => {
            // Flagship Android with impossible hardware (Table 6:
            // (Samsung SM-S906N, 1920x1080), low cores for the DD pass).
            let device = DeviceProfile::android("SM-S906N");
            let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
            let mut fp = Collector::collect(&device, &browser, locale);
            fp.set(AttrId::HardwareConcurrency, 4i64);
            set_resolution(&mut fp, (1920, 1080));
            fp
        }
    };
    let behavior = if rng.chance(0.2) {
        bot_touch(rng)
    } else {
        BehaviorTrace::silent()
    };
    Built::new(fp, behavior)
}

/// Behavioural-mimicry evader: desktop cover + credible pointer input.
/// With plugins → also evades BotD; without → BotD catches it.
fn mimicry_evader(with_plugins: bool, locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    Built::new(
        desktop_base(with_plugins, false, locale, rng),
        mimic_good(rng),
    )
}

/// Mimicry evader whose cover has an impossible pair.
fn sloppy_mimicry_evader(with_plugins: bool, locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    let mut fp = if rng.chance(0.5) {
        // Apple vendor on a non-Apple platform (Table 6 Browser group).
        let mut fp = desktop_base(with_plugins, true, locale, rng);
        fp.set(AttrId::Vendor, "Apple Computer, Inc.");
        fp
    } else {
        // Desktop Chrome UA on an ARM Android platform string.
        let mut fp = desktop_base(with_plugins, false, locale, rng);
        fp.set(AttrId::Platform, "Linux armv8l");
        fp
    };
    // The lie never extends to behaviour here — that's the point.
    let behavior = mimic_good(rng);
    apply_locale_noise(&mut fp, rng);
    Built::new(fp, behavior)
}

/// Hook for future locale-level noise; currently a no-op kept for symmetry.
fn apply_locale_noise(_fp: &mut Fingerprint, _rng: &mut Splittable) {}

// --------------------------------------------------------------------
// Cell (EvadeDataDomeOnly): evade DataDome ∧ detected by BotD.

/// The generic-"K" Android cover: unknown model (no catalogue constraint),
/// < 8 cores, no touch, no plugins → BotD's headless signature fires, but
/// DataDome excuses the silent mobile profile.
fn android_k_evader(locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    let device = DeviceProfile::android_generic_k();
    let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
    let mut fp = Collector::collect(&device, &browser, locale);
    fp.set(AttrId::TouchSupport, "None");
    fp.set(AttrId::MaxTouchPoints, 0i64);
    // Unknown model: any plausible phone resolution, cores < 8.
    let res = (
        320 + rng.next_below(150) as u16,
        640 + rng.next_below(320) as u16,
    );
    set_resolution(&mut fp, res);
    fp.set(AttrId::HardwareConcurrency, *rng.pick(&[2i64, 4, 4, 6]));
    Built::new(fp, BehaviorTrace::silent())
}

/// Sloppy variants of the DataDome-only evader. Half are *known* Android
/// models with touch support forgotten (Table 6's Screen group); half are
/// the generic-K cover whose platform alteration was skipped — an Android
/// UA still reporting the Windows host (Table 6's Browser group).
fn sloppy_android_no_touch(locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    if rng.chance(0.5) {
        let mut built = android_k_evader(locale, rng);
        built.fingerprint.set(AttrId::Platform, "Win32");
        return built;
    }
    let model = *rng.pick(&[
        "SM-A127F",
        "M2004J19C",
        "Infinix X652B",
        "SM-T387W",
        "Redmi Go",
    ]);
    let device = DeviceProfile::android(model);
    let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
    let mut fp = Collector::collect(&device, &browser, locale);
    fp.set(AttrId::TouchSupport, "None");
    fp.set(AttrId::MaxTouchPoints, 0i64);
    if device.cores >= 8 {
        // Keep the DataDome pass; the core-count lie is itself impossible.
        fp.set(AttrId::HardwareConcurrency, 4i64);
    }
    if rng.chance(0.5) {
        // Device-memory lie on top (Table 6 Device group).
        let wrong = if device.device_memory >= 4.0 {
            1.0
        } else {
            8.0
        };
        fp.set(AttrId::DeviceMemory, AttrValue::float(wrong));
    }
    Built::new(fp, BehaviorTrace::silent())
}

// --------------------------------------------------------------------
// Cell (EvadeBotDOnly): detected by DataDome ∧ evade BotD.

/// Faithful desktop cover with plugins, but silent — DataDome flags the
/// inputless desktop, BotD sees a plugin-bearing Chromium and passes it.
/// A slice of this cell carries the always-detect anomalies (§5.3.2),
/// which keeps ScreenFrame/ForcedColors discriminative for the classifier.
fn detected_desktop_with_plugins(locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    let roll = rng.pick_weighted(&[0.50, 0.20, 0.20, 0.10]);
    match roll {
        0 => Built::new(
            desktop_base(true, false, locale, rng),
            BehaviorTrace::silent(),
        ),
        1 => {
            // A faithful mid-range Android (8 real cores): BotD passes on
            // touch, DataDome is not fooled — silent and not low-core.
            let model = *rng.pick(&[
                "SM-S906N",
                "SM-A127F",
                "SM-A515F",
                "SM-G991B",
                "SM-G973F",
                "Pixel 7",
                "Pixel 7 Pro",
                "M2006C3MG",
                "M2004J19C",
                "Infinix X652B",
            ]);
            let device = DeviceProfile::android(model);
            let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
            Built::new(
                Collector::collect(&device, &browser, locale),
                BehaviorTrace::silent(),
            )
        }
        2 => {
            let mut fp = desktop_base(true, false, locale, rng);
            fp.set(AttrId::ScreenFrame, *rng.pick(&[120i64, 180, 240]));
            Built::new(fp, mimic_good(rng))
        }
        _ => {
            // forced-colors on a non-Windows platform: consistent UA and
            // platform (Linux), so only the CSS flag is anomalous.
            let device = DeviceProfile::sample(DeviceKind::LinuxDesktop, rng);
            let browser = BrowserProfile::contemporary(BrowserFamily::Chrome, rng);
            let mut fp = Collector::collect(&device, &browser, locale);
            fp.set(AttrId::ForcedColors, true);
            Built::new(fp, mimic_good(rng))
        }
    }
}

/// Sloppy BotD evaders: fake premium devices with impossible hardware.
fn sloppy_detected_botd_evader(locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    let pattern = rng.pick_weighted(&[0.52, 0.12, 0.08, 0.13, 0.15]);
    let fp = match pattern {
        4 => {
            // The detected-side mirror of the sloppy mimicry evader: same
            // desktop-with-plugins cover, same Apple-vendor lie, but no
            // behavioural mimicry — so the fingerprint alone cannot tell
            // this bot from the one DataDome misses (§5.2.1's accuracy
            // ceiling).
            let mut fp = desktop_base(true, true, locale, rng);
            fp.set(AttrId::Vendor, "Apple Computer, Inc.");
            fp
        }
        0 => {
            // Fake iPhone with server cores (Table 6: (iPhone, 32)).
            let mut fp = iphone_base(locale, rng);
            fp.set(AttrId::HardwareConcurrency, *rng.pick(&[16i64, 24, 32]));
            set_resolution(&mut fp, iphone_res::draw_detected(rng));
            fp
        }
        1 => {
            // Touch-screen Mac (Table 6: (Mac, touchEvent/touchStart)).
            let device = DeviceProfile::sample(DeviceKind::Mac, rng);
            let browser = BrowserProfile::contemporary(BrowserFamily::Safari, rng);
            let mut fp = Collector::collect(&device, &browser, locale);
            fp.set(AttrId::TouchSupport, "touchEvent/touchStart");
            fp.set(AttrId::MaxTouchPoints, 10i64);
            fp.set(AttrId::HardwareConcurrency, *rng.pick(&[8i64, 10, 12]));
            fp
        }
        2 => {
            // iPad with seven touch points (Table 6: (iPad, 7)).
            let device = DeviceProfile::sample(DeviceKind::IPad, rng);
            let browser = BrowserProfile::contemporary(BrowserFamily::MobileSafari, rng);
            let mut fp = Collector::collect(&device, &browser, locale);
            fp.set(AttrId::MaxTouchPoints, 7i64);
            fp.set(AttrId::HardwareConcurrency, 8i64);
            fp
        }
        _ => {
            // Galaxy Tab claiming a gamut its panel lacks (Table 6:
            // (Samsung Galaxy Tab S7, rec2020)).
            let device = DeviceProfile::android("SM-T870");
            let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
            let mut fp = Collector::collect(&device, &browser, locale);
            fp.set(AttrId::ColorGamut, "rec2020");
            fp
        }
    };
    Built::new(fp, BehaviorTrace::silent())
}

// --------------------------------------------------------------------
// Cell (DetectedBoth).

/// Detected by both: the undisguised end of the spectrum.
fn detected_both(locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    let roll = rng.pick_weighted(&[0.19, 0.16, 0.08, 0.08, 0.02, 0.065, 0.405]);
    match roll {
        // Plugins stripped, flavours patched — half-dressed headless.
        0 => Built::new(
            desktop_base(false, false, locale, rng),
            BehaviorTrace::silent(),
        ),
        1 => {
            // Raw headless: window.chrome missing too, and the quirky
            // `prefers-contrast: less` default some builds leak.
            let mut fp = desktop_base(false, false, locale, rng);
            fp.set(AttrId::VendorFlavors, AttrValue::list(Vec::<&str>::new()));
            if rng.chance(0.5) {
                fp.set(AttrId::Contrast, -1i64);
            }
            Built::new(fp, BehaviorTrace::silent())
        }
        2 => {
            // webdriver left on.
            let mut fp = desktop_base(false, false, locale, rng);
            fp.set(AttrId::Webdriver, true);
            Built::new(fp, BehaviorTrace::silent())
        }
        // Replayed mouse trail that fools nobody.
        3 => Built::new(desktop_base(false, false, locale, rng), mimic_poor(rng)),
        4 => {
            // Plugins patched but webdriver forgotten — why Figure 4's
            // plugin bars sit *near* 1.0 rather than at it.
            let mut fp = desktop_base(true, false, locale, rng);
            fp.set(AttrId::Webdriver, true);
            Built::new(fp, BehaviorTrace::silent())
        }
        5 => {
            // Plugins patched, `window.chrome` forgotten: the case where
            // Vendor Flavors alone decides (Table 2's top attribute) —
            // plugins said "human", flavours said "headless".
            let mut fp = desktop_base(true, false, locale, rng);
            fp.set(AttrId::VendorFlavors, AttrValue::list(Vec::<&str>::new()));
            if rng.chance(0.4) {
                fp.set(AttrId::Contrast, -1i64);
            }
            Built::new(fp, BehaviorTrace::silent())
        }
        _ => {
            // Touch emulation without `window.chrome` — same story on the
            // mobile-looking side. Non-Apple base: Windows laptops can
            // genuinely have touch screens, Macs cannot.
            let mut fp = desktop_base(false, true, locale, rng);
            fp.set(AttrId::TouchSupport, "touchEvent/touchStart");
            fp.set(AttrId::VendorFlavors, AttrValue::list(Vec::<&str>::new()));
            if rng.chance(0.4) {
                fp.set(AttrId::Contrast, -1i64);
            }
            Built::new(fp, BehaviorTrace::silent())
        }
    }
}

/// Sloppy detected-both: impossible pairs on an undisguised bot.
fn sloppy_detected_both(locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    let pattern = rng.pick_weighted(&[0.35, 0.30, 0.35]);
    let fp = match pattern {
        0 => {
            // Android Chrome UA on a Windows platform (Table 6:
            // (Chrome Mobile, Win32)), server cores so DataDome still flags.
            let device = DeviceProfile::android_generic_k();
            let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
            let ua = fp_fingerprint::ua::synthesize(&device, &browser);
            let mut fp = desktop_base(false, true, locale, rng);
            let parsed = fp_fingerprint::parse_user_agent(&ua);
            fp.set(AttrId::UserAgent, ua.as_str());
            fp.set(AttrId::UaDevice, parsed.device.as_str());
            fp.set(AttrId::UaBrowser, parsed.browser.as_str());
            fp.set(AttrId::UaOs, parsed.os.as_str());
            fp.set(AttrId::Platform, "Win32");
            fp.set(AttrId::HardwareConcurrency, *rng.pick(&[8i64, 12, 16]));
            fp
        }
        1 => {
            // Apple vendor on a silent, pluginless desktop.
            let mut fp = desktop_base(false, true, locale, rng);
            fp.set(AttrId::Vendor, "Apple Computer, Inc.");
            fp
        }
        _ => {
            // ARM platform lie on a pluginless desktop — the detected-side
            // mirror of the no-plugins sloppy mimicry evader.
            let mut fp = desktop_base(false, false, locale, rng);
            fp.set(AttrId::Platform, "Linux armv8l");
            fp
        }
    };
    Built::new(fp, BehaviorTrace::silent())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_antibot::{BotD, DataDome};
    use fp_fingerprint::ValidityOracle;
    use fp_types::{sym, Request, SimTime, TrafficSource};
    use std::net::Ipv4Addr;

    fn as_request(built: &Built, ip: Ipv4Addr) -> Request {
        Request {
            id: 0,
            time: SimTime::EPOCH,
            site_token: sym("arch-test"),
            ip,
            cookie: None,
            fingerprint: built.fingerprint.clone(),
            tls: built.tls,
            behavior: built.behavior,
            cadence: fp_types::BehaviorFacet::unobserved(),
            source: TrafficSource::RealUser,
        }
    }

    /// Every (cell, mimicry, variant) combo must land in its intended cell
    /// through the real detectors and have the intended consistency.
    #[test]
    fn archetypes_realise_their_cells() {
        let locale = LocaleSpec::en_us();
        let mut rng = Splittable::new(0xA2C4);
        for cell in Cell::ALL {
            for mimicry in [false, true] {
                for variant in [Variant::Clean, Variant::Sloppy] {
                    for trial in 0..60 {
                        // Fresh detector state per trial: archetype cells
                        // must not depend on history.
                        let mut dd = DataDome::new();
                        let mut botd = BotD::new();
                        let built = build(cell, mimicry, variant, &locale, &mut rng);
                        // Distinct IPs avoid the churn rule.
                        let ip =
                            Ipv4Addr::new(73, 100, (trial / 250) as u8, (trial % 250 + 1) as u8);
                        let req = as_request(&built, ip);
                        let dd_v = dd.decide(&req);
                        let botd_v = botd.decide(&req);
                        assert_eq!(
                            dd_v.evaded(),
                            cell.evades_dd(),
                            "{cell:?}/mim={mimicry}/{variant:?} trial {trial}: DataDome got {dd_v:?}\nfp: {:?}",
                            built.fingerprint
                        );
                        assert_eq!(
                            botd_v.evaded(),
                            cell.evades_botd(),
                            "{cell:?}/mim={mimicry}/{variant:?} trial {trial}: BotD got {botd_v:?}\nfp: {:?}",
                            built.fingerprint
                        );
                        let impossible = ValidityOracle::scan_impossible(&built.fingerprint);
                        match variant {
                            Variant::Clean => assert!(
                                impossible.is_empty(),
                                "{cell:?}/mim={mimicry} clean has impossible pairs {impossible:?}\nfp: {:?}",
                                built.fingerprint
                            ),
                            Variant::Sloppy => assert!(
                                !impossible.is_empty(),
                                "{cell:?}/mim={mimicry} sloppy has no impossible pair\nfp: {:?}",
                                built.fingerprint
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tls_facet_is_always_observed() {
        let locale = LocaleSpec::en_us();
        let mut rng = Splittable::new(5);
        for cell in Cell::ALL {
            let built = build(cell, false, Variant::Clean, &locale, &mut rng);
            assert!(built.tls.is_observed(), "{cell:?}");
            let ja3 = built.tls.ja3_str().unwrap();
            assert!(
                TlsClientKind::ALL.iter().any(|k| k.ja3() == ja3),
                "{cell:?}: facet must come from a known stack"
            );
        }
    }

    #[test]
    fn clean_mobile_evaders_have_low_cores() {
        let locale = LocaleSpec::en_us();
        let mut rng = Splittable::new(6);
        for _ in 0..100 {
            let built = build(Cell::EvadeBoth, false, Variant::Clean, &locale, &mut rng);
            let cores = built
                .fingerprint
                .get(AttrId::HardwareConcurrency)
                .as_int()
                .unwrap();
            assert!(cores < 8, "cores {cores}");
        }
    }

    #[test]
    fn truthful_tls_matches_ua() {
        let mut rng = Splittable::new(7);
        let device = DeviceProfile::sample(DeviceKind::WindowsDesktop, &mut rng);
        let browser = BrowserProfile::contemporary(BrowserFamily::Chrome, &mut rng);
        let fp = Collector::collect(&device, &browser, &LocaleSpec::en_us());
        let facet = truthful_tls(&fp);
        assert_eq!(facet.ja3_str(), Some(TlsClientKind::Chromium.ja3()));
        assert_eq!(facet.ja4_str(), Some(TlsClientKind::Chromium.ja4()));
    }

    #[test]
    fn truthful_tls_without_ua_claim_is_unobserved() {
        assert!(!truthful_tls(&Fingerprint::new()).is_observed());
    }
}
