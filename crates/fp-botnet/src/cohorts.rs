//! The two agent cohorts of the cross-layer extension.
//!
//! The paper's twenty services span 2023's evasion market; two traffic
//! classes have exploded since, and each stresses a *different* side of
//! the cross-layer consistency web:
//!
//! * **AI browsing agents** drive a real Chromium through an automation
//!   harness. Their handshake is genuine — JA3 matches the Chrome UA
//!   perfectly — so the TLS detector is structurally blind to them; what
//!   gives them away is automation-shaped *behaviour* (silent page loads,
//!   machine-regular replays, the occasional forgotten `webdriver` flag).
//! * **TLS-lagging evasive bots** are the mirror image: stealth toolkits
//!   patched every JS attribute into a flawless device story and even
//!   replay credible pointer input, but the requests still leave a Go or
//!   python-requests ClientHello. Only the cross-layer check can see that
//!   lie.
//!
//! Each cohort gets its own honey-site URL token, so the recorded ground
//! truth ([`fp_types::TrafficSource::AiAgent`] /
//! [`fp_types::TrafficSource::TlsLaggard`]) is as reliable as the paper's
//! per-service tokens, and `evaluate::cohort_report` can split
//! per-detector precision/recall by cohort.

use crate::archetype;
use crate::locale::locale_for_region;
use fp_fingerprint::{BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile};
use fp_netsim::asn::{asns_in, AsnClass};
use fp_netsim::NetDb;
use fp_tls::TlsClientKind;
use fp_types::{
    sym, AttrId, BehaviorTrace, Request, Scale, SimTime, Splittable, Symbol, TrafficSource,
};

/// Full-scale AI-browsing-agent request volume (the cohorts are sized
/// like a mid-table service, small next to the paper's 507,080).
pub const AI_AGENT_REQUESTS: u64 = 9_000;

/// Full-scale TLS-lagging evasive cohort volume.
pub const TLS_LAGGARD_REQUESTS: u64 = 12_000;

/// Fraction of AI-agent requests that forget to scrub `navigator.webdriver`.
pub const AI_AGENT_WEBDRIVER_LEAK: f64 = 0.08;

/// The URL token shared with the AI-agent harness.
pub fn ai_agent_token(seed: u64) -> Symbol {
    sym(&format!(
        "agents{:06x}",
        fp_types::mix2(seed, 0xA1A6) & 0xFF_FFFF
    ))
}

/// The URL token shared with the TLS-lagging toolkit.
pub fn tls_laggard_token(seed: u64) -> Symbol {
    sym(&format!(
        "laggard{:06x}",
        fp_types::mix2(seed, 0x7157) & 0xFF_FFFF
    ))
}

/// US datacenter/residential ASN pools, resolved once per generation run
/// (not per request — the table scan and Vec allocation are loop
/// invariants).
struct UsPlacement {
    datacenter: Vec<&'static fp_netsim::asn::AsnRecord>,
    residential: Vec<&'static fp_netsim::asn::AsnRecord>,
}

impl UsPlacement {
    fn new() -> UsPlacement {
        UsPlacement {
            datacenter: asns_in("United States of America", AsnClass::CloudDatacenter),
            residential: asns_in("United States of America", AsnClass::Residential),
        }
    }

    /// Sample an address (datacenter with probability `dc_share`, else
    /// residential) and the locale consistent with its region.
    fn sample(
        &self,
        dc_share: f64,
        rng: &mut Splittable,
    ) -> (std::net::Ipv4Addr, fp_fingerprint::LocaleSpec) {
        let pool = if rng.chance(dc_share) {
            &self.datacenter
        } else {
            &self.residential
        };
        let asn = pool[rng.next_below(pool.len() as u64) as usize];
        let ip = NetDb::sample_ip(asn, rng);
        (ip, locale_for_region(NetDb::lookup(ip).region))
    }
}

/// Generate the AI-browsing-agent cohort: real-browser TLS under a real
/// Chrome fingerprint, automation-shaped behaviour, mostly cloud-hosted.
pub fn generate_ai_agents(scale: Scale, seed: u64) -> Vec<Request> {
    let mut rng = Splittable::new(seed).child_str("ai-agents");
    let token = ai_agent_token(seed);
    let volume = scale.apply(AI_AGENT_REQUESTS);

    let mut out = Vec::with_capacity(volume as usize);
    let mut remaining = volume;
    let place = UsPlacement::new();
    while remaining > 0 {
        // One task: an agent session fetches a handful of pages in a burst.
        let pages = (2 + rng.next_below(9)).min(remaining);
        let kind = [
            DeviceKind::LinuxDesktop,
            DeviceKind::Mac,
            DeviceKind::WindowsDesktop,
        ][rng.pick_weighted(&[0.6, 0.25, 0.15])];
        let device = DeviceProfile::sample(kind, &mut rng);
        let browser = BrowserProfile::contemporary(BrowserFamily::Chrome, &mut rng);

        // Agents mostly run in someone's cloud; a minority sit on the
        // user's own machine.
        let (ip, locale) = place.sample(0.75, &mut rng);

        let mut fingerprint = Collector::collect(&device, &browser, &locale);
        if rng.chance(AI_AGENT_WEBDRIVER_LEAK) {
            fingerprint.set(AttrId::Webdriver, true);
        }
        // The network layer tells the truth: a real Chromium hello.
        let tls = TlsClientKind::Chromium.facet();

        let cookie = rng.next_u64();
        let day = rng.next_below(u64::from(fp_types::STUDY_DAYS)) as u32;
        let base_second = rng.next_below(86_000);
        // Session-level cadence facet (FP-Agent shape): the harness ticks
        // — tight gap spread, shallow task-shaped navigation. One facet
        // per session, drawn from a child RNG so the parent sequence (and
        // every pre-facet attribute) is untouched.
        let cadence = {
            let mut crng = rng.child_str("cadence");
            let gap_q50 = 2_000 + crng.next_below(8_000) as u32;
            let gap_cv = 0.02 + crng.next_below(800) as f32 / 10_000.0;
            let gap_q90 = gap_q50 + gap_q50 / 8;
            let transitions = 1 + crng.next_below(2) as u16;
            fp_types::BehaviorFacet::observed(
                gap_q50,
                gap_q90,
                gap_cv,
                pages as u16,
                transitions,
                gap_q50.saturating_sub(150),
            )
        };
        for page in 0..pages {
            // Agents read the DOM; most page visits produce no pointer
            // input at all, the rest replay machine-regular motion.
            let behavior = if rng.chance(0.7) {
                BehaviorTrace::silent()
            } else {
                crate::pointer::replay_trace(&mut rng)
            };
            out.push(Request {
                id: 0,
                time: SimTime::from_day(day, base_second + page * (2 + rng.next_below(9))),
                site_token: token,
                ip,
                cookie: Some(cookie),
                fingerprint: fingerprint.clone(),
                tls,
                behavior,
                cadence,
                source: TrafficSource::AiAgent,
            });
        }
        remaining -= pages;
    }
    out
}

/// Generate the TLS-lagging evasive cohort: a *clean* archetype on every
/// browser-layer axis (consistent fingerprint, credible behaviour), with
/// the one lie the toolkit forgot to patch — a non-browser ClientHello.
pub fn generate_tls_laggards(scale: Scale, seed: u64) -> Vec<Request> {
    let mut rng = Splittable::new(seed).child_str("tls-laggards");
    let token = tls_laggard_token(seed);
    let volume = scale.apply(TLS_LAGGARD_REQUESTS);

    let mut out = Vec::with_capacity(volume as usize);
    let place = UsPlacement::new();
    for _ in 0..volume {
        // Residential proxies are part of the package these kits sell.
        let (ip, locale) = place.sample(0.3, &mut rng);

        // A faithful cover device: phone or desktop, collected whole so
        // the validity oracle (and therefore the spatial miner) finds
        // nothing to object to.
        let (fingerprint, behavior) = if rng.chance(0.5) {
            let device = DeviceProfile::sample(DeviceKind::IPhone, &mut rng);
            let browser = BrowserProfile::contemporary(BrowserFamily::MobileSafari, &mut rng);
            let fp = Collector::collect(&device, &browser, &locale);
            let touches = 2 + rng.next_below(8) as u16;
            (fp, crate::pointer::touch_trace(touches, &mut rng))
        } else {
            let kind = *rng.pick(&[DeviceKind::WindowsDesktop, DeviceKind::Mac]);
            let device = DeviceProfile::sample(kind, &mut rng);
            let browser = BrowserProfile::contemporary(BrowserFamily::Chrome, &mut rng);
            let fp = Collector::collect(&device, &browser, &locale);
            (fp, archetype::mimic_good(&mut rng))
        };

        // The lagging layer: the fetch still comes from a raw HTTP stack.
        let tls = if rng.chance(0.6) {
            TlsClientKind::GoHttp.facet()
        } else {
            TlsClientKind::PythonRequests.facet()
        };

        out.push(Request {
            id: 0,
            time: SimTime::from_day(
                rng.next_below(u64::from(fp_types::STUDY_DAYS)) as u32,
                rng.next_below(86_400),
            ),
            site_token: token,
            ip,
            cookie: Some(rng.next_u64()),
            fingerprint,
            tls,
            behavior,
            cadence: fp_types::BehaviorFacet::unobserved(),
            source: TrafficSource::TlsLaggard,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_fingerprint::ValidityOracle;
    use fp_tls::TlsCrossLayer;

    #[test]
    fn volumes_and_labels() {
        let agents = generate_ai_agents(Scale::ratio(0.1), 1);
        assert_eq!(
            agents.len(),
            Scale::ratio(0.1).apply(AI_AGENT_REQUESTS) as usize
        );
        assert!(agents.iter().all(|r| r.source == TrafficSource::AiAgent));
        let laggards = generate_tls_laggards(Scale::ratio(0.1), 1);
        assert_eq!(
            laggards.len(),
            Scale::ratio(0.1).apply(TLS_LAGGARD_REQUESTS) as usize
        );
        assert!(laggards
            .iter()
            .all(|r| r.source == TrafficSource::TlsLaggard));
    }

    #[test]
    fn ai_agents_present_truthful_chromium_tls() {
        for r in generate_ai_agents(Scale::ratio(0.1), 2) {
            assert_eq!(r.tls, TlsClientKind::Chromium.facet());
            assert_eq!(
                r.fingerprint.get(AttrId::UaBrowser).as_str(),
                Some("Chrome")
            );
        }
    }

    #[test]
    fn laggards_are_browser_layer_clean_but_tls_dirty() {
        let laggards = generate_tls_laggards(Scale::ratio(0.1), 3);
        for r in &laggards {
            let bad = ValidityOracle::scan_impossible(&r.fingerprint);
            assert!(bad.is_empty(), "laggard fingerprint impossible: {bad:?}");
            assert!(r.behavior.has_input(), "laggards replay credible input");
            let ja3 = r.tls.ja3_str().unwrap();
            assert!(
                ja3 == TlsClientKind::GoHttp.ja3() || ja3 == TlsClientKind::PythonRequests.ja3(),
                "laggard hello must come from a raw HTTP stack"
            );
        }
    }

    #[test]
    fn crosslayer_predicate_separates_the_cohorts() {
        // The detector's pure predicate over synthetic stored records:
        // laggards always mismatch, agents never do. (End-to-end chain
        // coverage lives in tests/crosslayer.rs.)
        let to_record = |r: &Request| fp_types::StoredRequest {
            id: 0,
            time: r.time,
            site_token: r.site_token,
            ip_hash: 0,
            ip_offset_minutes: 0,
            ip_region: sym("X/Y"),
            ip_lat: 0.0,
            ip_lon: 0.0,
            asn: 0,
            asn_flagged: false,
            ip_blocklisted: false,
            tor_exit: false,
            cookie: 0,
            fingerprint: r.fingerprint.clone(),
            tls: r.tls,
            behavior: r.behavior,
            cadence: r.cadence,
            source: r.source,
            verdicts: fp_types::VerdictSet::new(),
        };
        for r in generate_tls_laggards(Scale::ratio(0.05), 4) {
            assert!(TlsCrossLayer::mismatch(&to_record(&r)));
        }
        for r in generate_ai_agents(Scale::ratio(0.05), 4) {
            assert!(!TlsCrossLayer::mismatch(&to_record(&r)));
        }
    }

    #[test]
    fn tokens_are_distinct_and_deterministic() {
        assert_eq!(ai_agent_token(9), ai_agent_token(9));
        assert_ne!(ai_agent_token(9), tls_laggard_token(9));
        assert_ne!(ai_agent_token(9), ai_agent_token(10));
    }
}
