//! Pointer-trajectory synthesis — the behavioural layer of the arms race.
//!
//! §2.3: bots "simulate human-like behavior to evade behavioral analysis
//! systems, including mimicking mouse movements". This module synthesises
//! actual point sequences and reduces them to the [`PointerStats`] the
//! detectors consume:
//!
//! * [`human_path`] — eased (accelerate/decelerate) curved strokes between
//!   a few waypoints, hand tremor, reading pauses. Real users and the
//!   good mimicry frameworks (Jing et al.'s generators, §2.3) both land
//!   here — which is exactly why DataDome cannot tell them apart and the
//!   mimicry evasion works.
//! * [`replay_path`] — what a naive script does: straight line, constant
//!   velocity, fixed time step. Trivially separable.
//!
//! The statistics are honest reductions of the sequences; nothing here
//! writes a "naturalness" value — `fp-antibot::behavior` has to earn it.

use fp_types::{PointerStats, Splittable};

/// One sampled pointer event: position (CSS px) and timestamp (ms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointerSample {
    pub x: f32,
    pub y: f32,
    pub t_ms: u32,
}

/// Synthesise a human-like trajectory: 2–4 strokes between waypoints with
/// minimum-jerk-style easing, perpendicular tremor, and reading pauses.
pub fn human_path(rng: &mut Splittable) -> Vec<PointerSample> {
    let mut points = Vec::with_capacity(64);
    let mut t = 0u32;
    let mut x = 100.0 + 800.0 * rng.next_f64() as f32;
    let mut y = 80.0 + 500.0 * rng.next_f64() as f32;
    points.push(PointerSample { x, y, t_ms: t });

    let strokes = 2 + rng.next_below(3);
    for _ in 0..strokes {
        let tx = 60.0 + 1100.0 * rng.next_f64() as f32;
        let ty = 40.0 + 640.0 * rng.next_f64() as f32;
        let steps = 10 + rng.next_below(14) as usize;
        let stroke_ms = 280.0 + 600.0 * rng.next_f64();
        // Control point bows the stroke into an arc.
        let mx = (x + tx) / 2.0 + (rng.next_f64() as f32 - 0.5) * 220.0;
        let my = (y + ty) / 2.0 + (rng.next_f64() as f32 - 0.5) * 220.0;
        for i in 1..=steps {
            let u = i as f32 / steps as f32;
            // Smoothstep easing: slow-fast-slow, like a real hand.
            let e = u * u * (3.0 - 2.0 * u);
            let inv = 1.0 - e;
            let bez_x = inv * inv * x + 2.0 * inv * e * mx + e * e * tx;
            let bez_y = inv * inv * y + 2.0 * inv * e * my + e * e * ty;
            // Hand tremor.
            let jx = (rng.next_f64() as f32 - 0.5) * 3.0;
            let jy = (rng.next_f64() as f32 - 0.5) * 3.0;
            // Eased time increments give the speed profile its variance.
            let dt_share = (e - (i as f32 - 1.0) / steps as f32 * 0.0).max(0.02);
            let _ = dt_share;
            let prev_e = {
                let u0 = (i as f32 - 1.0) / steps as f32;
                u0 * u0 * (3.0 - 2.0 * u0)
            };
            let dt = ((e - prev_e).max(0.015) * stroke_ms as f32) as u32 + 4;
            t += dt;
            points.push(PointerSample {
                x: bez_x + jx,
                y: bez_y + jy,
                t_ms: t,
            });
        }
        x = tx;
        y = ty;
        // A reading pause between strokes.
        if rng.chance(0.7) {
            t += 150 + rng.next_below(1200) as u32;
        }
    }
    points
}

/// Synthesise a naive replay: straight line, constant speed, fixed step.
pub fn replay_path(rng: &mut Splittable) -> Vec<PointerSample> {
    let steps = 12 + rng.next_below(40) as usize;
    let x0 = 50.0 + 200.0 * rng.next_f64() as f32;
    let y0 = 50.0 + 200.0 * rng.next_f64() as f32;
    let dx = 4.0 + 8.0 * rng.next_f64() as f32;
    let dy = 2.0 + 6.0 * rng.next_f64() as f32;
    let dt = 8 + rng.next_below(8) as u32;
    (0..steps)
        .map(|i| PointerSample {
            x: x0 + dx * i as f32,
            y: y0 + dy * i as f32,
            t_ms: dt * i as u32,
        })
        .collect()
}

/// Reduce a trajectory to the statistics the detectors consume.
pub fn stats_of(path: &[PointerSample]) -> PointerStats {
    if path.len() < 3 {
        return PointerStats {
            samples: path.len() as u16,
            ..PointerStats::default()
        };
    }
    let duration_ms = path.last().unwrap().t_ms.saturating_sub(path[0].t_ms);

    // Per-segment speeds (px/ms) excluding pauses.
    let mut speeds = Vec::with_capacity(path.len() - 1);
    let mut pause_ms = 0u32;
    for w in path.windows(2) {
        let dt = w[1].t_ms.saturating_sub(w[0].t_ms).max(1);
        if dt > 100 {
            pause_ms += dt;
            continue;
        }
        let dist = ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt();
        speeds.push(dist / dt as f32);
    }
    let speed_cv = coefficient_of_variation(&speeds);

    // Mean absolute turn angle between consecutive segments.
    let mut turns = Vec::with_capacity(path.len().saturating_sub(2));
    for w in path.windows(3) {
        let a = ((w[1].x - w[0].x), (w[1].y - w[0].y));
        let b = ((w[2].x - w[1].x), (w[2].y - w[1].y));
        let (la, lb) = (
            (a.0 * a.0 + a.1 * a.1).sqrt(),
            (b.0 * b.0 + b.1 * b.1).sqrt(),
        );
        if la < 1e-3 || lb < 1e-3 {
            continue;
        }
        let cross = a.0 * b.1 - a.1 * b.0;
        let dot = a.0 * b.0 + a.1 * b.1;
        turns.push(cross.atan2(dot).abs());
    }
    let curvature = if turns.is_empty() {
        0.0
    } else {
        turns.iter().sum::<f32>() / turns.len() as f32
    };

    PointerStats {
        samples: path.len() as u16,
        duration_ms,
        speed_cv,
        curvature,
        pause_fraction: if duration_ms == 0 {
            0.0
        } else {
            pause_ms as f32 / duration_ms as f32
        },
    }
}

fn coefficient_of_variation(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f32>() / xs.len() as f32;
    if mean < 1e-6 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / xs.len() as f32;
    var.sqrt() / mean
}

/// A human-like trace, ready for a request.
pub fn human_trace(rng: &mut Splittable) -> fp_types::BehaviorTrace {
    let path = human_path(rng);
    fp_types::BehaviorTrace {
        mouse_events: path.len() as u16,
        touch_events: 0,
        pointer: Some(stats_of(&path)),
        first_input_delay_ms: 200 + rng.next_below(4000) as u32,
    }
}

/// A naive-replay trace.
pub fn replay_trace(rng: &mut Splittable) -> fp_types::BehaviorTrace {
    let path = replay_path(rng);
    fp_types::BehaviorTrace {
        mouse_events: path.len() as u16,
        touch_events: 0,
        pointer: Some(stats_of(&path)),
        first_input_delay_ms: 1 + rng.next_below(30) as u32,
    }
}

/// A touch-tap trace (no pointer trajectory).
pub fn touch_trace(taps: u16, rng: &mut Splittable) -> fp_types::BehaviorTrace {
    fp_types::BehaviorTrace {
        mouse_events: 0,
        touch_events: taps,
        pointer: None,
        first_input_delay_ms: 200 + rng.next_below(3000) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_antibot::behavior::naturalness;

    #[test]
    fn human_paths_always_score_natural() {
        let mut rng = Splittable::new(0x9A7);
        for i in 0..500 {
            let stats = stats_of(&human_path(&mut rng));
            let score = naturalness(&stats);
            assert!(
                score >= 0.6,
                "draw {i}: human path scored {score}: {stats:?}"
            );
        }
    }

    #[test]
    fn replays_always_score_synthetic() {
        let mut rng = Splittable::new(0xB07);
        for i in 0..500 {
            let stats = stats_of(&replay_path(&mut rng));
            let score = naturalness(&stats);
            assert!(score < 0.3, "draw {i}: replay scored {score}: {stats:?}");
        }
    }

    #[test]
    fn human_stats_have_human_shape() {
        let mut rng = Splittable::new(3);
        let stats = stats_of(&human_path(&mut rng));
        assert!(stats.speed_cv > 0.2, "{stats:?}");
        assert!(stats.curvature > 0.02, "{stats:?}");
        assert!(stats.samples >= 20, "{stats:?}");
    }

    #[test]
    fn replay_stats_are_flat() {
        let mut rng = Splittable::new(4);
        let stats = stats_of(&replay_path(&mut rng));
        assert!(stats.speed_cv < 0.05, "{stats:?}");
        assert!(stats.curvature < 0.01, "{stats:?}");
        assert_eq!(stats.pause_fraction, 0.0);
    }

    #[test]
    fn stats_of_degenerate_paths() {
        assert_eq!(stats_of(&[]).samples, 0);
        let one = [PointerSample {
            x: 1.0,
            y: 1.0,
            t_ms: 0,
        }];
        assert_eq!(stats_of(&one).samples, 1);
        // Stationary path: zero speeds, no turns, no panic.
        let still: Vec<PointerSample> = (0..10)
            .map(|i| PointerSample {
                x: 5.0,
                y: 5.0,
                t_ms: i * 10,
            })
            .collect();
        let s = stats_of(&still);
        assert_eq!(s.curvature, 0.0);
        assert_eq!(s.speed_cv, 0.0);
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut rng = Splittable::new(5);
        for path in [human_path(&mut rng), replay_path(&mut rng)] {
            assert!(path.windows(2).all(|w| w[1].t_ms >= w[0].t_ms));
        }
    }
}
