//! Per-service calibration targets and the joint-cell solver.
//!
//! Everything measured in the paper is a property of the *traffic* the bot
//! services sold. [`ServiceSpec`] writes those properties down per service:
//! request volume and evasion rates (Table 1), post-FP-Inconsistent
//! detection (Table 3), geo-targeting claims (§6.2), and strategy knobs the
//! deep-dives imply (behavioural-mimicry share, datacenter-IP share).
//!
//! [`CellPlan::solve`] turns the targets into a joint distribution over
//! (evades DataDome, evades BotD, carries inconsistency): the generator
//! samples a cell per request and *constructs a fingerprint that realises
//! it through the detectors' actual logic* — the plan is a blueprint, not a
//! label.

use fp_netsim::GeoTarget;
use fp_types::ServiceId;

/// Calibration targets and strategy knobs for one bot service.
#[derive(Clone, Copy, Debug)]
pub struct ServiceSpec {
    /// `S1`..`S20`.
    pub id: ServiceId,
    /// Request volume over the campaign (Table 1).
    pub requests: u64,
    /// Evasion rate against DataDome (Table 1).
    pub dd_evasion: f64,
    /// Evasion rate against BotD (Table 1).
    pub botd_evasion: f64,
    /// DataDome + FP-Inconsistent detection rate (Table 3).
    pub dd_post_detection: f64,
    /// BotD + FP-Inconsistent detection rate (Table 3; the paper's S7 row
    /// prints "360.01 %" for plain BotD — Table 1 is authoritative for the
    /// pre-rates, Table 3 only for the post-rates).
    pub botd_post_detection: f64,
    /// Share of DataDome-evading requests that evade via behavioural
    /// mimicry on a desktop profile (invisible to fingerprint classifiers —
    /// this is what caps the paper's DataDome classifier near 82 %).
    pub mimicry_share: f64,
    /// Share of traffic sent from datacenter ASNs (§5.1: 82.54 % overall).
    pub datacenter_share: f64,
    /// Advertised geographic target, if any (§6.2).
    pub geo_target: Option<GeoTarget>,
    /// For geo-targeted services: fraction of requests whose browser
    /// timezone actually matches the advertised region (§6.2 measured
    /// 76.52 % for Canada and 56 % for Europe).
    pub tz_match_rate: f64,
    /// Fraction of requests whose source IP matches the advertised region.
    pub ip_match_rate: f64,
}

/// The twenty services (Tables 1 and 3).
pub const SERVICES: [ServiceSpec; 20] = [
    ServiceSpec {
        id: ServiceId(1),
        requests: 121_500,
        dd_evasion: 0.4401,
        botd_evasion: 0.7158,
        dd_post_detection: 0.8341,
        botd_post_detection: 0.6026,
        mimicry_share: 0.55,
        datacenter_share: 0.88,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(2),
        requests: 63_708,
        dd_evasion: 0.4299,
        botd_evasion: 0.7229,
        dd_post_detection: 0.8261,
        botd_post_detection: 0.5583,
        mimicry_share: 0.55,
        datacenter_share: 0.88,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(3),
        requests: 54_746,
        dd_evasion: 0.7491,
        botd_evasion: 0.1026,
        dd_post_detection: 0.4631,
        botd_post_detection: 0.9417,
        mimicry_share: 0.30,
        datacenter_share: 0.78,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(4),
        requests: 47_278,
        dd_evasion: 0.3865,
        botd_evasion: 0.7385,
        dd_post_detection: 0.8235,
        botd_post_detection: 0.5209,
        mimicry_share: 0.55,
        datacenter_share: 0.88,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(5),
        requests: 40_087,
        dd_evasion: 0.2386,
        botd_evasion: 0.7265,
        dd_post_detection: 0.8819,
        botd_post_detection: 0.5046,
        mimicry_share: 0.55,
        datacenter_share: 0.88,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(6),
        requests: 32_447,
        dd_evasion: 0.7181,
        botd_evasion: 0.0545,
        dd_post_detection: 0.4370,
        botd_post_detection: 0.9705,
        mimicry_share: 0.30,
        datacenter_share: 0.78,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(7),
        requests: 28_940,
        dd_evasion: 0.0256,
        botd_evasion: 0.3999,
        dd_post_detection: 0.9935,
        botd_post_detection: 0.8391,
        mimicry_share: 0.30,
        datacenter_share: 0.85,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(8),
        requests: 26_335,
        dd_evasion: 0.8043,
        botd_evasion: 0.2890,
        dd_post_detection: 0.4784,
        botd_post_detection: 0.8606,
        mimicry_share: 0.08,
        datacenter_share: 0.80,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(9),
        requests: 23_412,
        dd_evasion: 0.7829,
        botd_evasion: 0.1933,
        dd_post_detection: 0.6569,
        botd_post_detection: 0.9407,
        mimicry_share: 0.08,
        datacenter_share: 0.80,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(10),
        requests: 18_967,
        dd_evasion: 0.1577,
        botd_evasion: 0.5923,
        dd_post_detection: 0.9470,
        botd_post_detection: 0.7043,
        mimicry_share: 0.50,
        datacenter_share: 0.70,
        geo_target: Some(GeoTarget::UnitedStates),
        tz_match_rate: 0.93,
        ip_match_rate: 0.95,
    },
    ServiceSpec {
        id: ServiceId(11),
        requests: 17_996,
        dd_evasion: 0.0655,
        botd_evasion: 0.5936,
        dd_post_detection: 0.9863,
        botd_post_detection: 0.8016,
        mimicry_share: 0.50,
        datacenter_share: 0.70,
        geo_target: Some(GeoTarget::Canada),
        tz_match_rate: 0.7652,
        ip_match_rate: 0.9244,
    },
    ServiceSpec {
        id: ServiceId(12),
        requests: 7_010,
        dd_evasion: 0.0505,
        botd_evasion: 0.5144,
        dd_post_detection: 0.9836,
        botd_post_detection: 0.7821,
        mimicry_share: 0.50,
        datacenter_share: 0.70,
        geo_target: Some(GeoTarget::Europe),
        tz_match_rate: 0.56,
        ip_match_rate: 0.9983,
    },
    ServiceSpec {
        id: ServiceId(13),
        requests: 5_119,
        dd_evasion: 0.0695,
        botd_evasion: 0.5052,
        dd_post_detection: 0.9910,
        botd_post_detection: 0.8704,
        mimicry_share: 0.50,
        datacenter_share: 0.70,
        geo_target: Some(GeoTarget::France),
        tz_match_rate: 0.90,
        ip_match_rate: 0.95,
    },
    ServiceSpec {
        id: ServiceId(14),
        requests: 4_920,
        dd_evasion: 0.8374,
        botd_evasion: 0.9008,
        dd_post_detection: 0.6627,
        botd_post_detection: 0.6729,
        mimicry_share: 0.30,
        datacenter_share: 0.85,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(15),
        requests: 4_219,
        dd_evasion: 0.1114,
        botd_evasion: 1.0,
        dd_post_detection: 0.9960,
        botd_post_detection: 0.7787,
        mimicry_share: 0.50,
        datacenter_share: 0.85,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(16),
        requests: 4_174,
        dd_evasion: 0.0448,
        botd_evasion: 0.0002,
        dd_post_detection: 0.9969,
        botd_post_detection: 1.0,
        mimicry_share: 0.30,
        datacenter_share: 0.90,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(17),
        requests: 2_999,
        dd_evasion: 0.7466,
        botd_evasion: 0.0790,
        dd_post_detection: 0.4388,
        botd_post_detection: 0.9510,
        mimicry_share: 0.08,
        datacenter_share: 0.80,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(18),
        requests: 1_430,
        dd_evasion: 0.2070,
        botd_evasion: 1.0,
        dd_post_detection: 0.9986,
        botd_post_detection: 0.8357,
        mimicry_share: 0.50,
        datacenter_share: 0.85,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(19),
        requests: 1_411,
        dd_evasion: 0.0992,
        botd_evasion: 1.0,
        dd_post_detection: 0.9950,
        botd_post_detection: 0.5976,
        mimicry_share: 0.50,
        datacenter_share: 0.85,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
    ServiceSpec {
        id: ServiceId(20),
        requests: 382,
        dd_evasion: 0.9712,
        botd_evasion: 0.9712,
        dd_post_detection: 0.0759,
        botd_post_detection: 0.0707,
        mimicry_share: 0.20,
        datacenter_share: 0.85,
        geo_target: None,
        tz_match_rate: 1.0,
        ip_match_rate: 1.0,
    },
];

/// Total bot requests at full scale — the paper's 507,080.
pub const TOTAL_REQUESTS: u64 = 507_080;

/// The four joint detector outcomes, in the order used by [`CellPlan`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cell {
    /// Evades both services.
    EvadeBoth,
    /// Evades DataDome only.
    EvadeDataDomeOnly,
    /// Evades BotD only.
    EvadeBotDOnly,
    /// Detected by both.
    DetectedBoth,
}

impl Cell {
    /// All cells in plan order.
    pub const ALL: [Cell; 4] = [
        Cell::EvadeBoth,
        Cell::EvadeDataDomeOnly,
        Cell::EvadeBotDOnly,
        Cell::DetectedBoth,
    ];

    /// Does this cell evade DataDome?
    pub fn evades_dd(self) -> bool {
        matches!(self, Cell::EvadeBoth | Cell::EvadeDataDomeOnly)
    }

    /// Does this cell evade BotD?
    pub fn evades_botd(self) -> bool {
        matches!(self, Cell::EvadeBoth | Cell::EvadeBotDOnly)
    }
}

/// A solved per-service sampling plan.
#[derive(Clone, Copy, Debug)]
pub struct CellPlan {
    /// Cell probabilities `[p11, p10, p01, p00]`.
    pub p: [f64; 4],
    /// Inconsistency (rule-catchable) probability per cell.
    pub q: [f64; 4],
}

impl CellPlan {
    /// Solve the plan for a service spec.
    ///
    /// Unknowns: the cell joint `p` and per-cell flag rates `q`, subject to
    /// * marginals: `p11 + p10 = a` (DD evasion), `p11 + p01 = b` (BotD),
    /// * flag mass: `q11·p11 + q10·p10 = A` where `A` is the extra DataDome
    ///   detection Table 3 attributes to FP-Inconsistent, similarly `B`
    ///   for BotD,
    /// * `q ∈ [0,1]` everywhere.
    ///
    /// The one free correlation parameter (the both-evade overlap `p11`) is
    /// set mid-range, then nudged into the feasibility window the flag
    /// constraints demand.
    pub fn solve(spec: &ServiceSpec) -> CellPlan {
        let a = spec.dd_evasion;
        let b = spec.botd_evasion;
        let big_a = (spec.dd_post_detection - (1.0 - a)).clamp(0.0, a);
        let big_b = (spec.botd_post_detection - (1.0 - b)).clamp(0.0, b);

        // Feasibility window for p11 (derived in the doc comment of the
        // module): p11 ≤ min(a, b, B−A+a, A−B+b), p11 ≥ max(0, a+b−1).
        let lo = (a + b - 1.0).max(0.0);
        let hi = a
            .min(b)
            .min(big_b - big_a + a)
            .min(big_a - big_b + b)
            .max(lo);
        let p11 = (lo + 0.5 * (hi - lo)).clamp(lo, hi);
        let p10 = (a - p11).max(0.0);
        let p01 = (b - p11).max(0.0);
        let p00 = (1.0 - p11 - p10 - p01).max(0.0);

        // x = q11·p11 must satisfy the two flag equations with q10, q01 ≤ 1.
        let x_lo = (big_a - p10).max(big_b - p01).max(0.0);
        let x_hi = p11.min(big_a).min(big_b);
        let x = if x_lo <= x_hi {
            0.5 * (x_lo + x_hi)
        } else {
            x_hi
        };

        let q11 = if p11 > 1e-12 {
            (x / p11).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let q10 = if p10 > 1e-12 {
            ((big_a - x) / p10).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let q01 = if p01 > 1e-12 {
            ((big_b - x) / p01).clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Detected-by-both requests are just as sloppy as the average
        // evader; their flags don't move any table but keep rule support
        // realistic.
        let q00 = ((q11 + q10 + q01) / 3.0).clamp(0.0, 1.0);

        CellPlan {
            p: [p11, p10, p01, p00],
            q: [q11, q10, q01, q00],
        }
    }

    /// Expected `P(flag ∧ evades DD)` under the plan (for tests).
    pub fn flag_and_evade_dd(&self) -> f64 {
        self.q[0] * self.p[0] + self.q[1] * self.p[1]
    }

    /// Expected `P(flag ∧ evades BotD)` under the plan (for tests).
    pub fn flag_and_evade_botd(&self) -> f64 {
        self.q[0] * self.p[0] + self.q[2] * self.p[2]
    }
}

/// Look up a spec by service id.
pub fn spec_of(id: ServiceId) -> &'static ServiceSpec {
    &SERVICES[usize::from(id.0) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volumes_sum_to_paper_total() {
        let total: u64 = SERVICES.iter().map(|s| s.requests).sum();
        assert_eq!(total, TOTAL_REQUESTS);
    }

    #[test]
    fn overall_evasion_rates_match_section5() {
        // §5: DataDome detects 55.44 % (evasion 44.56 %), BotD detects
        // 47.07 % (evasion 52.93 %).
        let total = TOTAL_REQUESTS as f64;
        let dd: f64 = SERVICES
            .iter()
            .map(|s| s.requests as f64 * s.dd_evasion)
            .sum::<f64>()
            / total;
        let botd: f64 = SERVICES
            .iter()
            .map(|s| s.requests as f64 * s.botd_evasion)
            .sum::<f64>()
            / total;
        assert!((dd - 0.4456).abs() < 0.002, "DD evasion {dd}");
        assert!((botd - 0.5293).abs() < 0.002, "BotD evasion {botd}");
    }

    #[test]
    fn plans_are_valid_distributions() {
        for spec in &SERVICES {
            let plan = CellPlan::solve(spec);
            let sum: f64 = plan.p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: cells sum {sum}", spec.id);
            for (i, v) in plan.p.iter().chain(plan.q.iter()).enumerate() {
                assert!((0.0..=1.0).contains(v), "{}: component {i} = {v}", spec.id);
            }
        }
    }

    #[test]
    fn plans_respect_marginals() {
        for spec in &SERVICES {
            let plan = CellPlan::solve(spec);
            let dd = plan.p[0] + plan.p[1];
            let botd = plan.p[0] + plan.p[2];
            assert!((dd - spec.dd_evasion).abs() < 1e-6, "{}: dd {dd}", spec.id);
            assert!(
                (botd - spec.botd_evasion).abs() < 1e-6,
                "{}: botd {botd}",
                spec.id
            );
        }
    }

    #[test]
    fn plans_hit_table3_flag_mass() {
        // The solved flag mass must reproduce Table 3's post-detection
        // improvements to within a percentage point.
        for spec in &SERVICES {
            let plan = CellPlan::solve(spec);
            let a_target = spec.dd_post_detection - (1.0 - spec.dd_evasion);
            let b_target = spec.botd_post_detection - (1.0 - spec.botd_evasion);
            assert!(
                (plan.flag_and_evade_dd() - a_target).abs() < 0.01,
                "{}: DD flag mass {} vs {a_target}",
                spec.id,
                plan.flag_and_evade_dd()
            );
            assert!(
                (plan.flag_and_evade_botd() - b_target).abs() < 0.01,
                "{}: BotD flag mass {} vs {b_target}",
                spec.id,
                plan.flag_and_evade_botd()
            );
        }
    }

    #[test]
    fn geo_services_are_the_four_advertised() {
        let geo: Vec<_> = SERVICES.iter().filter(|s| s.geo_target.is_some()).collect();
        assert_eq!(geo.len(), 4);
        assert!(geo
            .iter()
            .any(|s| s.geo_target == Some(GeoTarget::Canada)
                && (s.tz_match_rate - 0.7652).abs() < 1e-9));
        assert!(geo
            .iter()
            .any(|s| s.geo_target == Some(GeoTarget::Europe)
                && (s.tz_match_rate - 0.56).abs() < 1e-9));
    }

    #[test]
    fn cell_helpers() {
        assert!(Cell::EvadeBoth.evades_dd() && Cell::EvadeBoth.evades_botd());
        assert!(Cell::EvadeDataDomeOnly.evades_dd() && !Cell::EvadeDataDomeOnly.evades_botd());
        assert!(!Cell::EvadeBotDOnly.evades_dd() && Cell::EvadeBotDOnly.evades_botd());
        assert!(!Cell::DetectedBoth.evades_dd() && !Cell::DetectedBoth.evades_botd());
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec_of(ServiceId(7)).requests, 28_940);
        assert_eq!(spec_of(ServiceId(20)).requests, 382);
    }
}
