//! One bot service's traffic.
//!
//! Per request the generator (1) samples an arrival time from the renewal
//! schedule, (2) samples a plan cell and lie variant, (3) picks network
//! cover (ASN class, country, IP) and locale, (4) builds the archetype, and
//! (5) routes it through a device pool: *stable* pools reuse a cookie and a
//! fixed fingerprint (real session reuse), *churn* devices reuse a cookie
//! while re-randomising immutable attributes — the paper's temporal
//! inconsistency, including the Figure 10 platform-churning top cookie.

use crate::archetype::{self, Built, Variant};
use crate::locale::{locale_for_region, mismatch_region, mismatched_locale};
use crate::schedule;
use crate::spec::{Cell, CellPlan, ServiceSpec};
use fp_fingerprint::{
    BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile, LocaleSpec,
};
use fp_netsim::asn::{asns_in, AsnClass, AsnRecord};
use fp_netsim::{NetDb, Region};
use fp_types::{
    sym, AttrId, AttrValue, BehaviorTrace, CookieId, Request, Scale, Splittable, Symbol,
    TrafficSource,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What the generator *intended* for a request — ground truth for the
/// calibration tests, never consumed by detectors or the miner.
#[derive(Clone, Copy, Debug)]
pub struct DesignInfo {
    pub cell: Cell,
    pub mimicry: bool,
    /// Carries an impossible attribute pair by construction.
    pub spatial_sloppy: bool,
    /// Routed through a cookie-reusing churn device.
    pub temporal_offender: bool,
    /// Timezone deliberately leaks a non-advertised region.
    pub geo_mismatch: bool,
    /// Source IP placed outside the advertised region.
    pub ip_out_of_target: bool,
}

/// A generated request plus its design ground truth.
pub struct GeneratedRequest {
    pub request: Request,
    pub design: DesignInfo,
}

/// Figure 10's platform distribution for the most-requested cookie.
pub const FIG10_PLATFORMS: [(&str, f64); 8] = [
    ("Win32", 0.38),
    ("MacIntel", 0.17),
    ("iPhone", 0.14),
    ("Linux armv7l", 0.10),
    ("Linux armv8l", 0.08),
    ("Linux armv5tejl", 0.06),
    ("iPad", 0.04),
    ("Linux x86_64", 0.03),
];

/// World country mix for services that advertise no geography.
const WORLD_MIX: [(&str, f64); 13] = [
    ("United States of America", 0.45),
    ("Germany", 0.12),
    ("France", 0.08),
    ("United Kingdom", 0.08),
    ("Netherlands", 0.05),
    ("Canada", 0.05),
    ("China", 0.05),
    ("Singapore", 0.03),
    ("Japan", 0.03),
    ("Brazil", 0.02),
    ("Mexico", 0.02),
    ("New Zealand", 0.01),
    ("India", 0.01),
];

/// Split of flagged requests across inconsistency mechanisms (Table 4's
/// spatial ≫ temporal structure).
const FLAG_SPATIAL_ONLY: f64 = 0.95;
const FLAG_TEMPORAL_ONLY: f64 = 0.03;
// Remainder (2 %): both mechanisms, on the platform-churn device.

/// Requests served by one stable pool device before it is retired.
const POOL_DEVICE_LIFETIME: u32 = 24;
/// Probability that an unflagged request reuses a stable pool device.
const POOL_REUSE_RATE: f64 = 0.35;

struct PoolDevice {
    fingerprint: fp_types::Fingerprint,
    behavior: BehaviorTrace,
    /// The device's TLS stack — stable for the device's whole lifetime,
    /// like its fingerprint and address.
    tls: fp_types::TlsFacet,
    ip: Ipv4Addr,
    cookie: CookieId,
    uses: u32,
    /// The session's day: impression-fraud bots burst their page views, so
    /// a device's requests cluster on one calendar day (this is what
    /// separates Figure 9's unique-cookie line from the request line).
    day: u32,
}

/// Generate one service's campaign traffic.
pub fn generate(spec: &ServiceSpec, scale: Scale, seed: u64) -> Vec<GeneratedRequest> {
    let plan = CellPlan::solve(spec);
    let volume = scale.apply(spec.requests);
    let mut rng = Splittable::new(seed).child(u64::from(spec.id.0));
    let token = site_token(seed, spec.id.0);
    let weights = schedule::daily_weights();

    let mut stable_pools: HashMap<(usize, bool), Vec<PoolDevice>> = HashMap::new();
    let churn_cookie = |cell_idx: usize| -> CookieId {
        fp_types::mix3(seed, u64::from(spec.id.0), 0xC0_0C + cell_idx as u64)
    };
    let fig10_cookie: CookieId = fp_types::mix3(seed, u64::from(spec.id.0), 0xF1610);

    let mut out = Vec::with_capacity(volume as usize);
    for _ in 0..volume {
        let mut time = schedule::sample_time(&weights, &mut rng);
        let cell_idx = rng.pick_weighted(&plan.p);
        let cell = Cell::ALL[cell_idx];
        let mimicry = cell.evades_dd() && rng.chance(spec.mimicry_share);

        // §5.1 correlation: services whose traffic slips past BotD buy the
        // cheap, already-listed proxy space disproportionately often; the
        // rest shop for clean addresses.
        let seek_blocked = if cell.evades_botd() {
            rng.chance(0.12).then_some(true)
        } else if cell.evades_dd() {
            rng.chance(0.04).then_some(true)
        } else {
            rng.chance(0.50).then_some(false)
        };

        // Geography and locale.
        let (ip, lookup_region, locale, geo_mismatch, ip_out) = place(spec, seek_blocked, &mut rng);

        // Flag budget: the location rule will already catch geo-mismatched
        // requests, so the constructed-inconsistency rate is adjusted down.
        let g_est = geo_flag_rate(spec);
        let q = plan.q[cell_idx];
        let q_adj = if g_est > 0.0 {
            ((q - g_est) / (1.0 - g_est)).max(0.0)
        } else {
            q
        };
        let flagged = rng.chance(q_adj);

        let (mut spatial, mut temporal) = (false, false);
        if flagged {
            let roll = rng.next_f64();
            if roll < FLAG_SPATIAL_ONLY {
                spatial = true;
            } else if roll < FLAG_SPATIAL_ONLY + FLAG_TEMPORAL_ONLY {
                temporal = true;
            } else {
                spatial = true;
                temporal = true;
            }
        }

        let variant = if spatial {
            Variant::Sloppy
        } else {
            Variant::Clean
        };

        let (built, cookie, request_ip) = if temporal {
            // Churn device: shared cookie, rotating IP, re-randomised
            // immutable attributes each request. The locale follows the
            // rotated IP so the *only* inconsistencies are the designed
            // ones (temporal churn, plus the platform lie on the Figure 10
            // device).
            let ip = sample_service_ip(spec, lookup_region, &mut rng);
            let churn_locale = locale_for_region(NetDb::lookup(ip).region);
            let mut built = if spatial {
                // Both mechanisms: sloppy archetype + platform churn on the
                // Figure 10 cookie.
                let mut b =
                    archetype::build(cell, mimicry, Variant::Sloppy, &churn_locale, &mut rng);
                let platform = FIG10_PLATFORMS[rng.pick_weighted(&FIG10_WEIGHTS)].0;
                b.fingerprint.set(AttrId::Platform, platform);
                b
            } else {
                // Temporal-safe churn devices must stay clean on every
                // *other* axis — cross-layer included — so their handshake
                // is the truthful one for the UA they claim.
                let mut b = temporal_safe(cell, &churn_locale, &mut rng);
                b.tls = archetype::truthful_tls(&b.fingerprint);
                b
            };
            churn_immutables(cell, &mut built.fingerprint, &mut rng);
            let cookie = if spatial {
                fig10_cookie
            } else {
                churn_cookie(cell_idx)
            };
            (built, cookie, ip)
        } else if !spatial && !geo_mismatch && rng.chance(POOL_REUSE_RATE) {
            // Stable pool device: same cookie, same fingerprint, same IP.
            let pool = stable_pools.entry((cell_idx, mimicry)).or_default();
            pool.retain(|d| d.uses < POOL_DEVICE_LIFETIME);
            if pool.is_empty() || rng.chance(0.08) {
                // The device's locale must match its *own* IP's region, or
                // a clean pooled request would trip the location rule.
                let ip = sample_service_ip(spec, lookup_region, &mut rng);
                let own_locale = locale_for_region(NetDb::lookup(ip).region);
                let built = archetype::build(cell, mimicry, Variant::Clean, &own_locale, &mut rng);
                pool.push(PoolDevice {
                    fingerprint: built.fingerprint,
                    behavior: built.behavior,
                    tls: built.tls,
                    ip,
                    cookie: rng.next_u64(),
                    uses: 0,
                    day: time.day(),
                });
            }
            let idx = rng.next_below(pool.len() as u64) as usize;
            let d = &mut pool[idx];
            d.uses += 1;
            time = fp_types::SimTime::from_day(d.day, rng.next_below(86_400));
            let mut reused = Built::new(d.fingerprint.clone(), d.behavior);
            reused.tls = d.tls;
            (reused, d.cookie, d.ip)
        } else {
            let built = archetype::build(cell, mimicry, variant, &locale, &mut rng);
            (built, rng.next_u64(), ip)
        };

        out.push(GeneratedRequest {
            request: Request {
                id: 0,
                time,
                site_token: token,
                ip: request_ip,
                cookie: Some(cookie),
                fingerprint: built.fingerprint,
                tls: built.tls,
                behavior: built.behavior,
                cadence: fp_types::BehaviorFacet::unobserved(),
                source: TrafficSource::Bot(spec.id),
            },
            design: DesignInfo {
                cell,
                mimicry,
                spatial_sloppy: spatial,
                temporal_offender: temporal,
                geo_mismatch,
                ip_out_of_target: ip_out,
            },
        });
    }
    out
}

const FIG10_WEIGHTS: [f64; 8] = [0.38, 0.17, 0.14, 0.10, 0.08, 0.06, 0.04, 0.03];

/// Estimated probability the location rule flags a request of this service
/// (see `place`): timezone leaks plus out-of-target IPs under a matching
/// timezone.
fn geo_flag_rate(spec: &ServiceSpec) -> f64 {
    if spec.geo_target.is_none() {
        return 0.0;
    }
    (1.0 - spec.tz_match_rate) + (1.0 - spec.ip_match_rate) * spec.tz_match_rate * 0.8
}

/// The site token shared with this service (Figure 1's URL strings).
pub fn site_token(seed: u64, service: u8) -> Symbol {
    let h = fp_types::mix3(seed, u64::from(service), 0x70_4E_17);
    let alphabet: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
    let mut s = String::with_capacity(10);
    let mut x = h;
    for _ in 0..10 {
        s.push(alphabet[(x % alphabet.len() as u64) as usize]);
        x = fp_types::splitmix64(x);
    }
    sym(&s)
}

/// Pick the network cover and locale for one request.
fn place(
    spec: &ServiceSpec,
    seek_blocked: Option<bool>,
    rng: &mut Splittable,
) -> (Ipv4Addr, &'static Region, LocaleSpec, bool, bool) {
    match spec.geo_target {
        None => {
            let mix_weights: Vec<f64> = WORLD_MIX.iter().map(|(_, w)| *w).collect();
            let country = WORLD_MIX[rng.pick_weighted(&mix_weights)].0;
            let ip = sample_ip_seeking(country, spec, seek_blocked, rng);
            let region = NetDb::lookup(ip).region;
            (ip, region, locale_for_region(region), false, false)
        }
        Some(target) => {
            let ip_in_target = rng.chance(spec.ip_match_rate);
            let tz_in_target = rng.chance(spec.tz_match_rate);
            let country = if ip_in_target {
                *rng.pick(target.countries())
            } else {
                let mix_weights: Vec<f64> = WORLD_MIX
                    .iter()
                    .map(|(c, w)| {
                        if target.countries().contains(c) {
                            0.0
                        } else {
                            *w
                        }
                    })
                    .collect();
                WORLD_MIX[rng.pick_weighted(&mix_weights)].0
            };
            let ip = sample_ip_seeking(country, spec, seek_blocked, rng);
            let region = NetDb::lookup(ip).region;
            let (locale, geo_mismatch) = if tz_in_target {
                if ip_in_target {
                    // Fully consistent: timezone of the IP's own region.
                    (locale_for_region(region), false)
                } else {
                    // Timezone claims the target while the IP sits
                    // elsewhere: pick a target region's locale.
                    let target_region = target_region(target, rng);
                    (
                        mismatched_locale(target_region, target_region),
                        region.offset_minutes != target_region.offset_minutes,
                    )
                }
            } else {
                // Timezone alteration missed: leaks a far-away region whose
                // offset is outside the advertised target.
                let leak = loop {
                    let cand = mismatch_region(rng);
                    if !target.offset_matches(cand.offset_minutes) {
                        break cand;
                    }
                };
                let claimed = target_region(target, rng);
                (
                    mismatched_locale(claimed, leak),
                    leak.offset_minutes != region.offset_minutes,
                )
            };
            (ip, region, locale, geo_mismatch, !ip_in_target)
        }
    }
}

fn target_region(target: fp_netsim::GeoTarget, rng: &mut Splittable) -> &'static Region {
    let country = *rng.pick(target.countries());
    let indices = fp_netsim::geo::regions_of(country);
    &fp_netsim::REGIONS[*rng.pick(&indices)]
}

/// Sample an address, optionally shopping for (or steering clear of)
/// reputation-listed space.
fn sample_ip_seeking(
    country: &str,
    spec: &ServiceSpec,
    seek_blocked: Option<bool>,
    rng: &mut Splittable,
) -> Ipv4Addr {
    let Some(want) = seek_blocked else {
        return sample_ip_in(country, spec, rng);
    };
    let mut last = sample_ip_in(country, spec, rng);
    for _ in 0..12 {
        if fp_netsim::blocklist::IpBlocklist::is_blocked(last) == want {
            return last;
        }
        last = sample_ip_in(country, spec, rng);
    }
    last
}

fn sample_ip_in(country: &str, spec: &ServiceSpec, rng: &mut Splittable) -> Ipv4Addr {
    let class = if rng.chance(spec.datacenter_share) {
        AsnClass::CloudDatacenter
    } else if rng.chance(0.15) {
        AsnClass::MobileCarrier
    } else {
        AsnClass::Residential
    };
    let asn = pick_asn(country, class, rng);
    NetDb::sample_ip(asn, rng)
}

fn pick_asn(country: &str, class: AsnClass, rng: &mut Splittable) -> &'static AsnRecord {
    let candidates = asns_in(country, class);
    if !candidates.is_empty() {
        return candidates[rng.next_below(candidates.len() as u64) as usize];
    }
    // Fall back: residential, then anything in the country.
    let fallback = asns_in(country, AsnClass::Residential);
    if !fallback.is_empty() {
        return fallback[rng.next_below(fallback.len() as u64) as usize];
    }
    let any: Vec<&AsnRecord> = fp_netsim::ASN_TABLE
        .iter()
        .filter(|r| r.country == country)
        .collect();
    assert!(!any.is_empty(), "no ASN for {country}");
    any[rng.next_below(any.len() as u64) as usize]
}

fn sample_service_ip(
    spec: &ServiceSpec,
    region: &'static Region,
    rng: &mut Splittable,
) -> Ipv4Addr {
    sample_ip_in(region.country, spec, rng)
}

/// A temporal-churn archetype whose device is oracle-unconstrained, so
/// randomised immutables never create *spatial* inconsistencies.
fn temporal_safe(cell: Cell, locale: &LocaleSpec, rng: &mut Splittable) -> Built {
    match cell {
        Cell::EvadeBoth => {
            // Generic-K Android with touch: BotD passes on touch, DataDome
            // excuses the low-core phone.
            let device = DeviceProfile::android_generic_k();
            let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
            let fp = Collector::collect(&device, &browser, locale);
            Built::new(fp, BehaviorTrace::silent())
        }
        Cell::EvadeDataDomeOnly => {
            let device = DeviceProfile::android_generic_k();
            let browser = BrowserProfile::contemporary(BrowserFamily::ChromeMobile, rng);
            let mut fp = Collector::collect(&device, &browser, locale);
            fp.set(AttrId::TouchSupport, "None");
            fp.set(AttrId::MaxTouchPoints, 0i64);
            Built::new(fp, BehaviorTrace::silent())
        }
        Cell::EvadeBotDOnly | Cell::DetectedBoth => {
            let device = DeviceProfile::sample(
                *rng.pick(&[DeviceKind::WindowsDesktop, DeviceKind::LinuxDesktop]),
                rng,
            );
            let browser = BrowserProfile::contemporary(BrowserFamily::Chrome, rng);
            let mut fp = Collector::collect(&device, &browser, locale);
            if cell == Cell::DetectedBoth {
                fp.set(AttrId::Plugins, AttrValue::list(Vec::<&str>::new()));
                fp.set(AttrId::MimeTypes, AttrValue::list(Vec::<&str>::new()));
            }
            Built::new(fp, BehaviorTrace::silent())
        }
    }
}

/// Re-randomise immutable attributes within cell-safe ranges (the churn the
/// temporal miner detects).
fn churn_immutables(cell: Cell, fp: &mut fp_types::Fingerprint, rng: &mut Splittable) {
    // Resolution space is effectively unbounded → a new value almost every
    // request. iPhone/iPad covers keep their pool resolutions, or the
    // Figure 7 census would drown in churn noise (their cookies still burn
    // through the core/platform churn below).
    let apple_cover = matches!(
        fp.get(AttrId::UaDevice).as_str(),
        Some("iPhone") | Some("iPad")
    );
    if !apple_cover {
        let res = (
            640 + rng.next_below(1960) as u16,
            360 + rng.next_below(1240) as u16,
        );
        fp.set(AttrId::ScreenResolution, res);
        fp.set(AttrId::AvailResolution, res);
    }
    let cores: i64 = if cell.evades_dd() {
        *rng.pick(&[2i64, 4, 6])
    } else {
        *rng.pick(&[8i64, 12, 16, 24])
    };
    fp.set(AttrId::HardwareConcurrency, cores);
    if !fp.get(AttrId::DeviceMemory).is_missing() {
        let mem = *rng.pick(&fp_fingerprint::catalog::DEVICE_MEMORY_LADDER);
        fp.set(AttrId::DeviceMemory, AttrValue::float(mem));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{spec_of, SERVICES};
    use fp_types::ServiceId;

    fn small_run(id: u8) -> Vec<GeneratedRequest> {
        generate(spec_of(ServiceId(id)), Scale::ratio(0.02), 42)
    }

    #[test]
    fn volume_respects_scale() {
        let reqs = small_run(1);
        assert_eq!(reqs.len(), Scale::ratio(0.02).apply(121_500) as usize);
    }

    #[test]
    fn cells_match_plan_marginals() {
        let spec = spec_of(ServiceId(1));
        let reqs = generate(spec, Scale::ratio(0.08), 42);
        let n = reqs.len() as f64;
        let dd = reqs.iter().filter(|r| r.design.cell.evades_dd()).count() as f64 / n;
        let botd = reqs.iter().filter(|r| r.design.cell.evades_botd()).count() as f64 / n;
        assert!((dd - spec.dd_evasion).abs() < 0.03, "dd share {dd}");
        assert!((botd - spec.botd_evasion).abs() < 0.03, "botd share {botd}");
    }

    #[test]
    fn all_requests_carry_token_and_cookie() {
        let token = site_token(42, 3);
        for r in small_run(3) {
            assert_eq!(r.request.site_token, token);
            assert!(r.request.cookie.is_some());
            assert_eq!(r.request.source, TrafficSource::Bot(ServiceId(3)));
            assert!(r.request.time.day() < fp_types::STUDY_DAYS);
        }
    }

    #[test]
    fn tokens_differ_between_services() {
        assert_ne!(site_token(42, 1), site_token(42, 2));
        assert_eq!(site_token(42, 1), site_token(42, 1));
    }

    #[test]
    fn geo_service_places_most_ips_in_target() {
        let spec = SERVICES
            .iter()
            .find(|s| s.geo_target == Some(fp_netsim::GeoTarget::Canada))
            .unwrap();
        let reqs = generate(spec, Scale::ratio(0.2), 7);
        let n = reqs.len() as f64;
        let in_target = reqs
            .iter()
            .filter(|r| NetDb::lookup(r.request.ip).region.country == "Canada")
            .count() as f64;
        assert!(
            (in_target / n - spec.ip_match_rate).abs() < 0.04,
            "in-target {}",
            in_target / n
        );
    }

    #[test]
    fn geo_mismatch_rate_tracks_spec() {
        let spec = SERVICES
            .iter()
            .find(|s| s.geo_target == Some(fp_netsim::GeoTarget::Europe))
            .unwrap();
        let reqs = generate(spec, Scale::ratio(0.5), 9);
        let n = reqs.len() as f64;
        let mismatched = reqs.iter().filter(|r| r.design.geo_mismatch).count() as f64 / n;
        // tz misses (44 %) plus out-of-target IP leakage.
        assert!(
            mismatched > 0.35 && mismatched < 0.55,
            "geo mismatch {mismatched}"
        );
    }

    #[test]
    fn stable_pool_devices_reuse_fingerprints() {
        let reqs = small_run(2);
        let mut by_cookie: HashMap<CookieId, Vec<u64>> = HashMap::new();
        for r in &reqs {
            if !r.design.temporal_offender {
                by_cookie
                    .entry(r.request.cookie.unwrap())
                    .or_default()
                    .push(r.request.fingerprint.digest());
            }
        }
        let mut reused = 0;
        for digests in by_cookie.values() {
            if digests.len() > 1 {
                reused += 1;
                assert!(
                    digests.windows(2).all(|w| w[0] == w[1]),
                    "stable pool cookie changed fingerprints"
                );
            }
        }
        assert!(reused > 5, "expected stable pools, saw {reused}");
    }

    #[test]
    fn churn_devices_rotate_fingerprints() {
        let reqs = generate(spec_of(ServiceId(1)), Scale::ratio(0.1), 11);
        let mut by_cookie: HashMap<CookieId, Vec<u64>> = HashMap::new();
        for r in &reqs {
            if r.design.temporal_offender {
                by_cookie
                    .entry(r.request.cookie.unwrap())
                    .or_default()
                    .push(r.request.fingerprint.digest());
            }
        }
        assert!(!by_cookie.is_empty(), "no churn devices generated");
        for (cookie, digests) in &by_cookie {
            if digests.len() > 3 {
                let distinct: std::collections::HashSet<_> = digests.iter().collect();
                assert!(
                    distinct.len() * 2 > digests.len(),
                    "cookie {cookie:x} churns too little: {} distinct / {}",
                    distinct.len(),
                    digests.len()
                );
            }
        }
    }

    #[test]
    fn fig10_cookie_is_the_top_cookie() {
        let reqs = generate(spec_of(ServiceId(1)), Scale::FULL, 13);
        let mut counts: HashMap<CookieId, u32> = HashMap::new();
        for r in &reqs {
            *counts.entry(r.request.cookie.unwrap()).or_default() += 1;
        }
        let (&top, &top_n) = counts.iter().max_by_key(|(_, n)| **n).unwrap();
        let fig10 = fp_types::mix3(13, 1, 0xF1610);
        assert_eq!(
            top, fig10,
            "top cookie ({top_n} requests) should be the churn device"
        );
        // And its platform spread covers the Figure 10 values.
        let platforms: std::collections::HashSet<&str> = reqs
            .iter()
            .filter(|r| r.request.cookie == Some(fig10))
            .filter_map(|r| r.request.fingerprint.get(AttrId::Platform).as_str())
            .collect();
        assert!(platforms.len() >= 6, "platform spread {platforms:?}");
    }
}
