//! Real-user traffic: the §7.4 ground-truth negative set.
//!
//! The paper shared one honey-site URL with university students and
//! recorded 2,206 requests. Real users browse from consistent devices with
//! genuine input behaviour; the paper attributes its few false positives to
//! "students experimenting with User-Agent spoofers" — modelled here as a
//! small slice whose UA string (and only the UA string) is replaced.

use crate::locale::locale_for_region;
use fp_fingerprint::{BrowserFamily, BrowserProfile, Collector, DeviceKind, DeviceProfile};
use fp_netsim::asn::{asns_in, AsnClass};
use fp_netsim::NetDb;
use fp_types::{sym, AttrId, CookieId, Request, Scale, SimTime, Splittable, Symbol, TrafficSource};

/// Requests recorded at the real-user URL (paper: 2,206).
pub const REAL_USER_REQUESTS: u64 = 2_206;

/// Fraction of requests sent through a User-Agent spoofer (sized so the
/// rule set's true-negative rate lands at the paper's 96.84 %).
pub const UA_SPOOFER_RATE: f64 = 0.0316;

/// The URL token shared with students.
pub fn real_user_token(seed: u64) -> Symbol {
    sym(&format!(
        "students{:06x}",
        fp_types::mix2(seed, 0x5EA1) & 0xFF_FFFF
    ))
}

/// One student: a stable device, browser, locale, IP and cookie.
struct Student {
    fingerprint: fp_types::Fingerprint,
    /// The browser's genuine TLS facet. Stays truthful even for spoofer
    /// students — a UA spoofer rewrites a header, not the network stack,
    /// which is exactly what makes the lie cross-layer visible.
    tls: fp_types::TlsFacet,
    kind: DeviceKind,
    ip: std::net::Ipv4Addr,
    cookie: CookieId,
    spoofer: bool,
}

fn sample_student(spoofer: bool, rng: &mut Splittable) -> Student {
    let kind = [
        DeviceKind::WindowsDesktop,
        DeviceKind::Mac,
        DeviceKind::LinuxDesktop,
        DeviceKind::IPhone,
        DeviceKind::AndroidPhone,
        DeviceKind::IPad,
    ][rng.pick_weighted(&[0.30, 0.25, 0.05, 0.22, 0.13, 0.05])];
    let device = DeviceProfile::sample(kind, rng);
    let defaults = BrowserFamily::defaults_for(kind);
    let weights: Vec<f64> = defaults.iter().map(|(_, w)| *w).collect();
    let family = defaults[rng.pick_weighted(&weights)].0;
    let browser = BrowserProfile::contemporary(family, rng);

    // University population: Californian ISPs/carriers.
    let class = if kind.is_mobile() && rng.chance(0.6) {
        AsnClass::MobileCarrier
    } else {
        AsnClass::Residential
    };
    let candidates = asns_in("United States of America", class);
    let asn = candidates[rng.next_below(candidates.len() as u64) as usize];
    let ip = NetDb::sample_ip(asn, rng);
    let locale = locale_for_region(NetDb::lookup(ip).region);

    let mut fingerprint = Collector::collect(&device, &browser, &locale);
    let tls = family.tls_facet();

    if spoofer {
        // A UA spoofer rewrites the User-Agent header/property only; every
        // other attribute still tells the truth — a spatial inconsistency.
        let lie = match kind {
            DeviceKind::IPhone | DeviceKind::IPad | DeviceKind::AndroidPhone => {
                "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/116.0.0.0 Safari/537.36"
            }
            _ => {
                "Mozilla/5.0 (iPhone; CPU iPhone OS 16_6 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/16.6 Mobile/15E148 Safari/604.1"
            }
        };
        let parsed = fp_fingerprint::parse_user_agent(lie);
        fingerprint.set(AttrId::UserAgent, lie);
        fingerprint.set(AttrId::UaDevice, parsed.device.as_str());
        fingerprint.set(AttrId::UaBrowser, parsed.browser.as_str());
        fingerprint.set(AttrId::UaOs, parsed.os.as_str());
    }

    Student {
        fingerprint,
        tls,
        kind,
        ip,
        cookie: rng.next_u64(),
        spoofer,
    }
}

/// Generated real-user request plus whether it came from a spoofer user
/// (ground truth for the §7.4 TNR test).
pub struct RealUserRequest {
    pub request: Request,
    pub spoofer: bool,
}

/// Generate the real-user request set.
pub fn generate(scale: Scale, seed: u64) -> Vec<RealUserRequest> {
    let mut rng = Splittable::new(seed).child_str("real-users");
    let token = real_user_token(seed);
    let volume = scale.apply(REAL_USER_REQUESTS);

    // Students browse a handful of times each. Spoofer status follows a
    // request-level quota so the recorded spoofer share tracks
    // [`UA_SPOOFER_RATE`] tightly at any scale (the §7.4 TNR depends on
    // it).
    let mut out = Vec::with_capacity(volume as usize);
    let mut remaining = volume;
    let mut spoofer_requests = 0u64;
    while remaining > 0 {
        let visits = (1 + rng.next_below(6)).min(remaining);
        let emitted = volume - remaining;
        let spoofer = (spoofer_requests as f64) < (emitted + visits) as f64 * UA_SPOOFER_RATE - 0.5;
        if spoofer {
            spoofer_requests += visits;
        }
        let student = sample_student(spoofer, &mut rng);
        // Session-level cadence facet, shared by every visit of this
        // student ("Beyond the Crawl" shape: bursty gaps with long reading
        // tails). Drawn from a child RNG so the parent draw sequence — and
        // with it every other generated attribute — stays byte-identical
        // to the pre-facet generator.
        let cadence = {
            let mut crng = rng.child_str("cadence");
            let gap_q50 = 7_000 + crng.next_below(28_000) as u32;
            let gap_cv = 0.38 + crng.next_below(5_500) as f32 / 10_000.0;
            let gap_q90 = gap_q50 * 3 + crng.next_below(20_000) as u32;
            let transitions = 2 + crng.next_below(visits.max(2)) as u16;
            let dwell = 5_000 + crng.next_below(20_000) as u32;
            fp_types::BehaviorFacet::observed(
                gap_q50,
                gap_q90,
                gap_cv,
                visits as u16,
                transitions,
                dwell,
            )
        };
        for _ in 0..visits {
            let time = SimTime::from_day(70 + rng.next_below(14) as u32, rng.next_below(86_400));
            let behavior = if student.kind.is_mobile() {
                crate::pointer::touch_trace(2 + rng.next_below(9) as u16, &mut rng)
            } else {
                crate::pointer::human_trace(&mut rng)
            };
            out.push(RealUserRequest {
                request: Request {
                    id: 0,
                    time,
                    site_token: token,
                    ip: student.ip,
                    cookie: Some(student.cookie),
                    fingerprint: student.fingerprint.clone(),
                    tls: student.tls,
                    behavior,
                    cadence,
                    source: TrafficSource::RealUser,
                },
                spoofer: student.spoofer,
            });
        }
        remaining -= visits;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_fingerprint::ValidityOracle;

    #[test]
    fn volume_and_labels() {
        let reqs = generate(Scale::FULL, 1);
        assert_eq!(reqs.len(), REAL_USER_REQUESTS as usize);
        assert!(reqs
            .iter()
            .all(|r| r.request.source == TrafficSource::RealUser));
    }

    #[test]
    fn spoofer_rate_near_target() {
        let reqs = generate(Scale::FULL, 2);
        let rate = reqs.iter().filter(|r| r.spoofer).count() as f64 / reqs.len() as f64;
        assert!((rate - UA_SPOOFER_RATE).abs() < 0.02, "spoofer rate {rate}");
    }

    #[test]
    fn non_spoofers_are_fully_consistent() {
        let reqs = generate(Scale::FULL, 3);
        for r in reqs.iter().filter(|r| !r.spoofer) {
            let bad = ValidityOracle::scan_impossible(&r.request.fingerprint);
            assert!(bad.is_empty(), "real user inconsistent: {bad:?}");
        }
    }

    #[test]
    fn spoofers_are_inconsistent() {
        let reqs = generate(Scale::FULL, 4);
        let mut checked = 0;
        for r in reqs.iter().filter(|r| r.spoofer) {
            let bad = ValidityOracle::scan_impossible(&r.request.fingerprint);
            assert!(!bad.is_empty(), "spoofer fingerprint scans clean");
            checked += 1;
        }
        assert!(checked > 0, "no spoofers generated");
    }

    #[test]
    fn everyone_has_input_behavior() {
        for r in generate(Scale::FULL, 5) {
            assert!(r.request.behavior.has_input(), "real users always interact");
        }
    }

    #[test]
    fn locale_is_consistent_with_ip() {
        for r in generate(Scale::ratio(0.2), 6) {
            let region = NetDb::lookup(r.request.ip).region;
            let tz_offset = r
                .request
                .fingerprint
                .get(AttrId::TimezoneOffset)
                .as_int()
                .unwrap();
            assert_eq!(tz_offset, i64::from(region.offset_minutes));
        }
    }
}
