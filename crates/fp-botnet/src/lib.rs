//! Traffic generators: the twenty bot services, real users, and the
//! privacy-technology experiment.
//!
//! The paper measures traffic; this crate regenerates it. Calibration is
//! honest in one specific sense: detector verdicts and miner flags are
//! never assigned — the generator samples a *plan* (which cell of the
//! evade/detect × consistent/inconsistent space a request should land in,
//! derived from Tables 1 and 3) and then constructs a fingerprint that
//! lands there **through the detectors' and oracle's real logic**. The
//! calibration tests in `tests/` close the loop by re-measuring the
//! generated campaign.
//!
//! * [`spec`] — per-service targets (volumes, evasion rates, geo claims)
//!   and the joint-cell solver.
//! * [`archetype`] — fingerprint constructors per cell and lie variant.
//! * [`iphone_res`] — the Figure 7 resolution pools.
//! * [`schedule`] — the Figure 9 purchase-renewal arrival process.
//! * [`service`] — one bot service: device pools, cookies, IP selection.
//! * [`locale`] — region → browser-locale mapping and geo-mismatch draws.
//! * [`realuser`] — the §7.4 university real-user traffic.
//! * [`privacy`] — the §7.5 Brave/Tor/Safari/uBlock/ABP experiment.
//! * [`cohorts`] — the cross-layer extension's AI-browsing-agent and
//!   TLS-lagging evasive cohorts (separate URL tokens, own ground truth).
//! * [`campaign`] — whole-campaign orchestration (parallel per service).

pub mod archetype;
pub mod campaign;
pub mod cohorts;
pub mod iphone_res;
pub mod locale;
pub mod pointer;
pub mod privacy;
pub mod realuser;
pub mod schedule;
pub mod service;
pub mod spec;

pub use archetype::Variant;
pub use campaign::{AdversarialTraffic, Campaign, CampaignConfig, DesignInfo};
pub use spec::{Cell, CellPlan, ServiceSpec, SERVICES, TOTAL_REQUESTS};
