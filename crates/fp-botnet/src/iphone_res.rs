//! iPhone screen-resolution pools — the Figure 7 machinery.
//!
//! The paper found 83 distinct resolutions on iPhone-claiming requests, 42
//! of them among DataDome evaders, and 9 of the top-10 evading resolutions
//! nonexistent in the real world. The pools below reproduce that census:
//!
//! * [`evader_fake`]: fabricated resolutions used only by evading
//!   sloppy-iPhone archetypes (the nine named values are the ones on
//!   Figure 7's x-axis);
//! * [`EVADER_LANDSCAPE_REAL`]: `568x320` — the one *real* (landscape
//!   iPhone 5) value among the top-10, matching the paper's "9 out of 10";
//! * [`SHARED_REAL`]: real resolutions seen on both evading and detected
//!   iPhone requests;
//! * [`EVADER_ONLY_REAL`] / [`DETECTED_ONLY_REAL`]: real values exclusive
//!   to one side;
//! * [`detected_fake`]: fabricated values used only by detected
//!   fake-iPhone archetypes.

use fp_types::Splittable;
use std::sync::OnceLock;

/// Fabricated evader resolutions; eight are Figure 7's axis labels (the
/// figure's `780x360` is landscape iPhone 12 mini and therefore *real* in
/// our catalogue — it is replaced by a physical-pixel value `1170x2532`,
/// the other classic fake-resolution mistake bots make).
pub const EVADER_FAKE_NAMED: [(u16, u16); 9] = [
    (873, 393),
    (640, 360),
    (4096, 1440),
    (3840, 1080),
    (2778, 1284),
    (1900, 1080),
    (693, 320),
    (1170, 2532),
    (847, 476),
];

/// The one real value among the top-10 evaders (landscape iPhone 5).
pub const EVADER_LANDSCAPE_REAL: (u16, u16) = (568, 320);

/// Real resolutions used by both evading (clean) and detected (fake
/// high-core) iPhone archetypes.
pub const SHARED_REAL: [(u16, u16); 7] = [
    (375, 667),
    (390, 844),
    (414, 896),
    (375, 812),
    (428, 926),
    (393, 852),
    (430, 932),
];

/// Real resolution drawn mostly by evading clean iPhones (a sliver of
/// detected draws keeps its evasion probability below 1.0).
pub const EVADER_ONLY_REAL: (u16, u16) = (320, 480);

/// Real resolutions used only by detected fake iPhones.
pub const DETECTED_ONLY_REAL: [(u16, u16); 4] = [(320, 568), (414, 736), (360, 780), (402, 874)];

/// Number of generated (unnamed) fakes on each side. Together with the
/// constants above the campaign-wide census is:
/// evaders: 9 + 24 fake + 1 landscape-real + 7 shared + 1 exclusive = 42;
/// total:   42 + 37 detected-fake + 4 detected-real = 83.
const EVADER_FAKE_EXTRA: usize = 24;
const DETECTED_FAKE_COUNT: usize = 37;

fn is_known(r: (u16, u16), acc: &[(u16, u16)]) -> bool {
    fp_fingerprint::catalog::is_real_iphone_resolution(r)
        || acc.contains(&r)
        || EVADER_FAKE_NAMED.contains(&r)
        || SHARED_REAL.contains(&r)
        || DETECTED_ONLY_REAL.contains(&r)
}

fn generate_fakes(salt: u64, count: usize, avoid: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut rng = Splittable::new(salt);
    let mut out: Vec<(u16, u16)> = Vec::with_capacity(count);
    while out.len() < count {
        let w = 300 + rng.next_below(3600) as u16;
        let h = 200 + rng.next_below(2000) as u16;
        let r = (w, h);
        if !is_known(r, &out) && !avoid.contains(&r) {
            out.push(r);
        }
    }
    out
}

/// All fabricated evader resolutions (named + generated), with draw weights
/// that keep the named nine on top of the evasion-probability ranking.
pub fn evader_fake() -> &'static Vec<(u16, u16)> {
    static POOL: OnceLock<Vec<(u16, u16)>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut v = EVADER_FAKE_NAMED.to_vec();
        v.extend(generate_fakes(0xFA4EA, EVADER_FAKE_EXTRA, &[]));
        v
    })
}

/// Fabricated detected-side resolutions.
pub fn detected_fake() -> &'static Vec<(u16, u16)> {
    static POOL: OnceLock<Vec<(u16, u16)>> = OnceLock::new();
    POOL.get_or_init(|| generate_fakes(0xFA4EB, DETECTED_FAKE_COUNT, evader_fake()))
}

/// Draw a fabricated resolution for an evading sloppy iPhone. Named values
/// are heavily weighted so they top the per-value request counts.
pub fn draw_evader_fake(rng: &mut Splittable) -> (u16, u16) {
    let pool = evader_fake();
    if rng.chance(0.6) {
        // Named nine, descending weight.
        let idx = rng.pick_weighted(&[9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.5, 2.0]);
        pool[idx]
    } else {
        pool[9 + rng.next_below((pool.len() - 9) as u64) as usize]
    }
}

/// Draw a resolution for a *clean* evading iPhone (all real).
pub fn draw_evader_real(rng: &mut Splittable) -> (u16, u16) {
    if rng.chance(0.06) {
        EVADER_LANDSCAPE_REAL
    } else if rng.chance(0.05) {
        EVADER_ONLY_REAL
    } else {
        *rng.pick(&SHARED_REAL)
    }
}

/// Draw a resolution for a detected fake-iPhone archetype. `320x480`
/// appears here with a sliver of weight so exactly one real value
/// (`568x320`) survives at P(evade)=1.0 — the paper's "9 out of 10".
pub fn draw_detected(rng: &mut Splittable) -> (u16, u16) {
    let roll = rng.next_f64();
    if roll < 0.55 {
        *rng.pick(detected_fake())
    } else if roll < 0.78 {
        *rng.pick(&SHARED_REAL)
    } else if roll < 0.82 {
        EVADER_ONLY_REAL
    } else {
        *rng.pick(&DETECTED_ONLY_REAL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_fingerprint::catalog::is_real_iphone_resolution;
    use std::collections::HashSet;

    #[test]
    fn census_adds_up_to_83_total_42_evading() {
        let mut evading: HashSet<(u16, u16)> = HashSet::new();
        evading.extend(evader_fake().iter().copied());
        evading.insert(EVADER_LANDSCAPE_REAL);
        evading.extend(SHARED_REAL);
        evading.insert(EVADER_ONLY_REAL);
        assert_eq!(evading.len(), 42, "evading-side distinct resolutions");

        let mut all = evading.clone();
        all.extend(detected_fake().iter().copied());
        all.extend(DETECTED_ONLY_REAL);
        assert_eq!(all.len(), 83, "campaign-wide distinct resolutions");
    }

    #[test]
    fn fakes_are_fake_and_reals_are_real() {
        for r in evader_fake().iter().chain(detected_fake().iter()) {
            assert!(!is_real_iphone_resolution(*r), "{r:?} is real");
        }
        for r in SHARED_REAL.iter().chain(DETECTED_ONLY_REAL.iter()) {
            assert!(is_real_iphone_resolution(*r), "{r:?} is fake");
        }
        assert!(is_real_iphone_resolution(EVADER_LANDSCAPE_REAL));
        assert!(is_real_iphone_resolution(EVADER_ONLY_REAL));
    }

    #[test]
    fn pools_are_disjoint() {
        let a: HashSet<_> = evader_fake().iter().collect();
        let b: HashSet<_> = detected_fake().iter().collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn draws_come_from_their_pools() {
        let mut rng = Splittable::new(7);
        for _ in 0..200 {
            assert!(evader_fake().contains(&draw_evader_fake(&mut rng)));
            let real = draw_evader_real(&mut rng);
            assert!(is_real_iphone_resolution(real));
            let det = draw_detected(&mut rng);
            assert!(
                detected_fake().contains(&det)
                    || SHARED_REAL.contains(&det)
                    || DETECTED_ONLY_REAL.contains(&det)
                    || det == EVADER_ONLY_REAL
            );
        }
    }

    #[test]
    fn named_values_dominate_fake_draws() {
        let mut rng = Splittable::new(8);
        let mut named = 0;
        for _ in 0..2000 {
            if EVADER_FAKE_NAMED.contains(&draw_evader_fake(&mut rng)) {
                named += 1;
            }
        }
        assert!(named > 1000, "named share {named}/2000");
    }
}
