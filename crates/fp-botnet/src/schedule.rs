//! The arrival process: purchase renewals and daily volume (Figure 9).
//!
//! The paper's traffic shows spikes "corresponding to the days when we
//! renewed our purchases". Volume per day is an exponential decay restarted
//! at each renewal, so a service's daily series looks like the paper's:
//! bursts at renewal, a decaying tail, renewed twice.

use fp_types::{SimTime, Splittable, STUDY_DAYS};

/// Days (since the study epoch) when purchases were renewed.
pub const RENEWAL_DAYS: [u32; 3] = [0, 30, 60];

/// Decay constant of the post-renewal burst, in days.
const DECAY_DAYS: f64 = 12.0;

/// Per-day arrival weights over the study window.
pub fn daily_weights() -> Vec<f64> {
    (0..STUDY_DAYS)
        .map(|day| {
            RENEWAL_DAYS
                .iter()
                .filter(|&&r| day >= r)
                .map(|&r| (-(f64::from(day - r)) / DECAY_DAYS).exp())
                .sum::<f64>()
                // A small floor keeps late-campaign days non-empty (the
                // paper still saw fresh fingerprints in late November).
                + 0.02
        })
        .collect()
}

/// Sample an arrival time: renewal-weighted day, uniform second within it.
pub fn sample_time(weights: &[f64], rng: &mut Splittable) -> SimTime {
    let day = rng.pick_weighted(weights) as u32;
    SimTime::from_day(day, rng.next_below(86_400))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_cover_whole_window() {
        let w = daily_weights();
        assert_eq!(w.len(), STUDY_DAYS as usize);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn renewal_days_spike() {
        let w = daily_weights();
        // Each renewal day must exceed the day before it (except day 0).
        assert!(w[30] > w[29]);
        assert!(w[60] > w[59]);
        // And the burst decays.
        assert!(w[0] > w[10]);
        assert!(w[30] > w[45]);
    }

    #[test]
    fn sampled_times_follow_spikes() {
        let w = daily_weights();
        let mut rng = Splittable::new(3);
        let mut per_day = vec![0u32; STUDY_DAYS as usize];
        for _ in 0..20_000 {
            let t = sample_time(&w, &mut rng);
            assert!(t.day() < STUDY_DAYS);
            per_day[t.day() as usize] += 1;
        }
        let renewal_avg = (per_day[0] + per_day[30] + per_day[60]) as f64 / 3.0;
        let trough_avg = (per_day[25] + per_day[55] + per_day[85]) as f64 / 3.0;
        assert!(
            renewal_avg > trough_avg * 3.0,
            "renewal {renewal_avg} vs trough {trough_avg}"
        );
    }
}
