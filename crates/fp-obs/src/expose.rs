//! Text exposition: Prometheus-style rendering, the greppable `obs[...]`
//! ledger, and a parser for self-checks.

use crate::instrument::{bucket_upper_bound, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::registry::{ObsSnapshot, Value};
use std::fmt::Write as _;

/// Map a metric name into the Prometheus name charset
/// (`[a-zA-Z0-9_:]`); anything else becomes `_`.
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a snapshot in the Prometheus text exposition format: a `# TYPE`
/// line per metric, cumulative `le` buckets plus `+Inf`, `_sum` and
/// `_count` for histograms. Empty histogram buckets are elided (the
/// cumulative series stays well-formed); the `+Inf` bucket always prints.
pub fn render_text(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    for m in &snap.metrics {
        let name = sanitize(&m.name);
        match &m.value {
            Value::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            Value::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            Value::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    cumulative += n;
                    if n != 0 && i < HISTOGRAM_BUCKETS - 1 {
                        let le = bucket_upper_bound(i);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {cumulative}");
            }
        }
    }
    out
}

/// One greppable ledger line per metric, same discipline as the
/// `runfp[...]` fingerprint lines:
///
/// ```text
/// obs[site_requests_admitted] counter value=25472
/// obs[store_resident_records] gauge value=6368
/// obs[site_admission_to_verdict_ns] histogram count=25472 sum=... p50=2047 p90=4095 p99=8191 p999=16383
/// ```
pub fn ledger(snap: &ObsSnapshot) -> Vec<String> {
    snap.metrics
        .iter()
        .map(|m| {
            let name = sanitize(&m.name);
            match &m.value {
                Value::Counter(v) => format!("obs[{name}] counter value={v}"),
                Value::Gauge(v) => format!("obs[{name}] gauge value={v}"),
                Value::Histogram(h) => format!(
                    "obs[{name}] histogram count={} sum={} p50={} p90={} p99={} p999={}",
                    h.count(),
                    h.sum,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.quantile(0.999),
                ),
            }
        })
        .collect()
}

/// A metric read back from the text exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedMetric {
    /// The (sanitized) metric name.
    pub name: String,
    /// The parsed value.
    pub value: ParsedValue,
}

/// The value forms [`parse_text`] reconstructs.
#[derive(Clone, Debug, PartialEq)]
pub enum ParsedValue {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// A histogram's aggregate view (buckets are validated, not kept).
    Histogram {
        /// Total observations (`_count`, equal to the `+Inf` bucket).
        count: u64,
        /// Sum of observations (`_sum`).
        sum: u64,
    },
}

/// Parse text rendered by [`render_text`] back into metrics, validating
/// the histogram invariants on the way: cumulative buckets must be
/// monotone non-decreasing, the `+Inf` bucket must be present, and
/// `_count` must equal it. Used by the bench binaries and CI as a
/// round-trip self-check on the exposition.
pub fn parse_text(text: &str) -> Result<Vec<ParsedMetric>, String> {
    let mut out = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("# TYPE ")
            .ok_or_else(|| format!("expected `# TYPE`, got `{line}`"))?;
        let (name, kind) = rest
            .split_once(' ')
            .ok_or_else(|| format!("malformed TYPE line `{line}`"))?;
        match kind {
            "counter" | "gauge" => {
                let sample = lines
                    .next()
                    .ok_or_else(|| format!("`{name}`: missing sample line"))?;
                let (sample_name, v) = sample
                    .split_once(' ')
                    .ok_or_else(|| format!("`{name}`: malformed sample `{sample}`"))?;
                if sample_name != name {
                    return Err(format!("`{name}`: sample names `{sample_name}`"));
                }
                let value = if kind == "counter" {
                    ParsedValue::Counter(
                        v.parse()
                            .map_err(|_| format!("`{name}`: `{v}` is not a counter value"))?,
                    )
                } else {
                    ParsedValue::Gauge(
                        v.parse()
                            .map_err(|_| format!("`{name}`: `{v}` is not a gauge value"))?,
                    )
                };
                out.push(ParsedMetric {
                    name: name.to_string(),
                    value,
                });
            }
            "histogram" => {
                let bucket_prefix = format!("{name}_bucket{{le=\"");
                let mut last_cumulative = 0u64;
                let mut inf_bucket: Option<u64> = None;
                while let Some(&next) = lines.peek() {
                    let Some(rest) = next.strip_prefix(&bucket_prefix) else {
                        break;
                    };
                    lines.next();
                    let (le, count) = rest
                        .split_once("\"} ")
                        .ok_or_else(|| format!("`{name}`: malformed bucket `{next}`"))?;
                    let cumulative: u64 = count
                        .parse()
                        .map_err(|_| format!("`{name}`: `{count}` is not a bucket count"))?;
                    if cumulative < last_cumulative {
                        return Err(format!(
                            "`{name}`: bucket le=\"{le}\" not cumulative ({cumulative} < {last_cumulative})"
                        ));
                    }
                    last_cumulative = cumulative;
                    if le == "+Inf" {
                        inf_bucket = Some(cumulative);
                        break;
                    }
                }
                let inf = inf_bucket.ok_or_else(|| format!("`{name}`: missing +Inf bucket"))?;
                let sum_line = lines
                    .next()
                    .ok_or_else(|| format!("`{name}`: missing _sum"))?;
                let sum: u64 = sum_line
                    .strip_prefix(&format!("{name}_sum "))
                    .ok_or_else(|| format!("`{name}`: expected _sum, got `{sum_line}`"))?
                    .parse()
                    .map_err(|_| format!("`{name}`: malformed _sum `{sum_line}`"))?;
                let count_line = lines
                    .next()
                    .ok_or_else(|| format!("`{name}`: missing _count"))?;
                let count: u64 = count_line
                    .strip_prefix(&format!("{name}_count "))
                    .ok_or_else(|| format!("`{name}`: expected _count, got `{count_line}`"))?
                    .parse()
                    .map_err(|_| format!("`{name}`: malformed _count `{count_line}`"))?;
                if count != inf {
                    return Err(format!("`{name}`: _count {count} != +Inf bucket {inf}"));
                }
                out.push(ParsedMetric {
                    name: name.to_string(),
                    value: ParsedValue::Histogram { count, sum },
                });
            }
            other => return Err(format!("`{name}`: unknown metric kind `{other}`")),
        }
    }
    Ok(out)
}

/// Render a histogram's quantile summary as the bench tables print it.
pub fn quantile_cells(h: &HistogramSnapshot) -> String {
    format!(
        "p50={} p90={} p99={} p999={}",
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("obs_test_expose_events").add(12);
        reg.gauge("obs_test_expose_level").set(-3);
        let h = reg.histogram("obs_test_expose_lat_ns");
        for v in [0u64, 1, 3, 900, 900, 4096] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn render_parse_round_trip() {
        let snap = sample_registry().snapshot();
        let text = render_text(&snap);
        let parsed = parse_text(&text).expect("exposition must parse");
        assert_eq!(parsed.len(), snap.metrics.len());
        assert!(parsed.contains(&ParsedMetric {
            name: "obs_test_expose_events".into(),
            value: ParsedValue::Counter(12),
        }));
        assert!(parsed.contains(&ParsedMetric {
            name: "obs_test_expose_level".into(),
            value: ParsedValue::Gauge(-3),
        }));
        assert!(parsed.contains(&ParsedMetric {
            name: "obs_test_expose_lat_ns".into(),
            value: ParsedValue::Histogram {
                count: 6,
                sum: 5900,
            },
        }));
    }

    #[test]
    fn rendered_buckets_are_cumulative() {
        let snap = sample_registry().snapshot();
        let text = render_text(&snap);
        // The value 900 was recorded twice → bucket le="1023" holds 5
        // cumulative (0, 1, 3, 900, 900).
        assert!(
            text.contains("obs_test_expose_lat_ns_bucket{le=\"1023\"} 5"),
            "missing cumulative bucket in:\n{text}"
        );
        assert!(text.contains("obs_test_expose_lat_ns_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("obs_test_expose_lat_ns_count 6"));
    }

    #[test]
    fn ledger_lines_are_greppable() {
        let snap = sample_registry().snapshot();
        let lines = ledger(&snap);
        assert!(lines
            .iter()
            .all(|l| l.starts_with("obs[") && l.contains(']')));
        let hist = lines
            .iter()
            .find(|l| l.starts_with("obs[obs_test_expose_lat_ns]"))
            .unwrap();
        assert!(hist.contains("count=6"), "{hist}");
        assert!(hist.contains("p50="), "{hist}");
        assert!(hist.contains("p999="), "{hist}");
    }

    #[test]
    fn parse_rejects_non_cumulative_buckets() {
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(parse_text(bad).unwrap_err().contains("not cumulative"));
    }

    #[test]
    fn parse_rejects_count_mismatch() {
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n";
        assert!(parse_text(bad).unwrap_err().contains("_count"));
    }

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(
            sanitize("detector.observe-ns/fp spatial"),
            "detector_observe_ns_fp_spatial"
        );
        assert_eq!(sanitize("already_fine:ns"), "already_fine:ns");
    }
}
