//! The three instruments: striped [`Counter`], [`Gauge`], log2-bucket
//! [`Histogram`] (plus its shard-local and snapshot forms).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of histogram buckets: one for the value `0` plus one per power of
/// two up to `2^63` (bucket 64 absorbs everything from `2^63` to
/// `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Stripes per [`Counter`]. Eight covers the shard counts the streaming
/// pipeline is exercised at (1/2/4/8) without making `value()` walks long.
const COUNTER_STRIPES: usize = 8;

/// Bucket index for a recorded value: `0` for `0`, otherwise
/// `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket — the ceiling a quantile estimate
/// interpolates up to for ranks landing in that bucket.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// One cache line per stripe so shard workers bumping the same counter
/// don't false-share.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedAtomicU64(AtomicU64);

/// Per-thread stripe assignment: threads round-robin over the stripes at
/// first touch, so a worker keeps hitting its own line for its lifetime.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
}

/// A monotonic event counter, striped across padded atomics.
///
/// `add` is a single relaxed `fetch_add` on the calling thread's stripe;
/// `value()` sums the stripes (monotone but not a linearisable point-read,
/// which is fine for metrics).
#[derive(Debug)]
pub struct Counter {
    stripes: [PaddedAtomicU64; COUNTER_STRIPES],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter {
            stripes: std::array::from_fn(|_| PaddedAtomicU64(AtomicU64::new(0))),
        }
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        STRIPE.with(|&s| self.stripes[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable signed level (resident records, rules active).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by a signed delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free log2-bucket histogram.
///
/// Recording is two relaxed atomic adds (bucket count + running sum). The
/// bucket layout is fixed at [`HISTOGRAM_BUCKETS`] slots so histograms from
/// different shards merge bucket-for-bucket with plain addition.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Fold a shard-local histogram in (bucket-wise addition).
    pub fn merge_local(&self, local: &LocalHistogram) {
        for (b, &n) in self.buckets.iter().zip(local.buckets.iter()) {
            if n != 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        if local.sum != 0 {
            self.sum.fetch_add(local.sum, Ordering::Relaxed);
        }
    }

    /// A plain-value copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A shard worker's private histogram: plain arrays, no atomics. Workers
/// fill one of these during a parallel phase and the join merges them into
/// the shared [`Histogram`], so per-request recording costs two plain adds
/// and the totals are shard-count-invariant by construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty local histogram.
    pub fn new() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        // Wrapping like the shared histogram's atomic sum, so a local fill
        // merged at join equals direct shared recording bit for bit.
        self.sum = self.sum.wrapping_add(v);
    }

    /// Fold another local histogram in.
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (b, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// A plain-value copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets,
            sum: self.sum,
        }
    }
}

/// A plain-value histogram state: what snapshots, deltas, quantiles and
/// exposition all operate on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`] for the layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The quantile estimate for rank `max(1, ceil(q * count))`, with
    /// linear interpolation *within* the log2 bucket holding that rank:
    /// the rank's position among the bucket's occupants places it
    /// proportionally between the bucket's lower and upper bound. This
    /// keeps nearby quantiles distinguishable even when one wide bucket
    /// (e.g. `[2^27, 2^28)` ns) swallows most of the distribution —
    /// without interpolation p50/p99/p999 all collapse to that bucket's
    /// upper edge. Still bounded by the true bucket edges; `0` for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += n;
            if cumulative >= rank {
                if i == 0 {
                    return 0;
                }
                // Bucket i spans [2^(i-1), upper]; interpolate the rank's
                // offset among the n occupants across that span. f64 math
                // is exact for the bucket widths that matter (< 2^53) and
                // only approximate for the top bucket, which is fine for
                // an estimate already bounded by the bucket edges.
                let lower = bucket_upper_bound(i - 1) + 1;
                let upper = bucket_upper_bound(i);
                let frac = (rank - before) as f64 / n as f64;
                let span = (upper - lower) as f64;
                return lower + (frac * span) as u64;
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Fold another snapshot in (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram (saturating, so a reset histogram yields zeros rather
    /// than wrapping).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound indexes back into the same bucket.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
        // Lower edges too: 2^(i-1) is the first value of bucket i.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(1u64 << (i - 1)), i, "lower edge of {i}");
        }
    }

    #[test]
    fn counter_totals_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        c.add(5);
        assert_eq!(c.value(), 4005);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum, 500_500);
        // Rank 500 lands in bucket [256, 511]: 255 values before it, 256
        // occupants → 256 + (245/256)·255 = 500. Interpolation recovers
        // the exact value because the occupants fill the bucket uniformly.
        assert_eq!(snap.quantile(0.5), 500);
        // Rank 990 lands in bucket [512, 1023], which values 512..=1000
        // only part-fill (489 of 512 slots): 512 + (479/489)·511 = 1012 —
        // an over-estimate of the true 990, but inside the bucket and
        // distinguishable from its neighbours.
        assert_eq!(snap.quantile(0.99), 1012);
        assert_eq!(snap.quantile(0.999), 1021);
        assert_eq!(snap.quantile(1.0), 1023);
    }

    #[test]
    fn quantiles_distinguishable_inside_one_wide_bucket() {
        // All samples land in the [2^27, 2^28) ns bucket — the exact
        // collapse BENCH_pipeline.json recorded before interpolation
        // (p50 == p99 == p999 == 268435455).
        let h = Histogram::new();
        for k in 0..1000u64 {
            h.record((1 << 27) + k * 100_000);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5);
        let p99 = snap.quantile(0.99);
        let p999 = snap.quantile(0.999);
        assert!(p50 < p99 && p99 < p999, "collapsed: {p50} {p99} {p999}");
        assert!(p50 >= 1 << 27 && p999 < 1 << 28);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().snapshot().quantile(0.5), 0);
    }

    #[test]
    fn local_merge_equals_shared_recording() {
        let shared = Histogram::new();
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        for v in [0u64, 1, 7, 4096, u64::MAX] {
            shared.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let merged = Histogram::new();
        merged.merge_local(&a);
        merged.merge_local(&b);
        assert_eq!(merged.snapshot(), shared.snapshot());
    }

    #[test]
    fn snapshot_delta_subtracts_bucketwise() {
        let h = Histogram::new();
        h.record(3);
        let earlier = h.snapshot();
        h.record(3);
        h.record(100);
        let d = h.snapshot().delta(&earlier);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum, 103);
        assert_eq!(d.buckets[bucket_index(3)], 1);
        assert_eq!(d.buckets[bucket_index(100)], 1);
    }

    /// The determinism contract: values derived from `SimClock` ticks make
    /// every downstream artifact byte-stable.
    #[test]
    fn sim_clock_ticks_make_snapshots_deterministic() {
        use fp_types::SimClock;
        let run = || {
            let mut clock = SimClock::new();
            let h = Histogram::new();
            for step in 1..=50 {
                let before = clock.now();
                clock.advance(step % 7 + 1);
                h.record(clock.now().nanos_since(before));
            }
            h.snapshot()
        };
        assert_eq!(run(), run());
    }
}
