//! `fp-obs` — the workspace's observability substrate.
//!
//! Everything the hot path records goes through three instruments, all
//! lock-free on the record side and mergeable across shards:
//!
//! * [`Counter`] — a monotonic event count striped over cache-line-padded
//!   atomics so concurrent shard workers don't contend on one line.
//! * [`Gauge`] — a settable signed level (resident records, active rules).
//! * [`Histogram`] — a fixed 65-slot log2-bucket distribution (bucket 0
//!   holds the value 0; bucket *i* covers `[2^(i-1), 2^i - 1]`). Recording
//!   is two relaxed atomic adds; percentiles come from an exact bucket-count
//!   walk over a [`HistogramSnapshot`], so `p50/p90/p99/p999` are upper
//!   bounds tight to one log2 bucket. [`LocalHistogram`] is the plain-array
//!   form a shard worker fills privately and merges at stream join —
//!   merging per-shard histograms is bucket-wise addition, so any shard
//!   count aggregates to identical totals.
//!
//! Instruments live in a [`MetricsRegistry`] keyed by the `fp-types`
//! interner: callers resolve a name to an `Arc` handle once and record
//! through the handle, so the hot path never hashes a string. A registry
//! [`ObsSnapshot`] is a plain, name-sorted value — subtract two with
//! [`ObsSnapshot::delta`] to get a per-round view ([`RoundObs`]).
//!
//! Exposition is deliberately boring: [`expose::render_text`] prints the
//! Prometheus text format, [`expose::ledger`] prints one greppable
//! `obs[name] ...` line per metric (the same ledger discipline as the
//! `runfp[...]` fingerprint lines), and [`expose::parse_text`] reads the
//! text format back for self-checks and CI assertions.
//!
//! Determinism contract: instruments hold no clock. Feed them wall-clock
//! durations and snapshots vary run to run; feed them [`fp_types::SimTime`]
//! ticks and every snapshot, ledger line and rendered exposition is
//! byte-stable. That is why execution-time metrics stay **out** of the
//! `RUNFP_V1` `behavior` fold — they are an execution parameter, like the
//! shard count.

#![deny(missing_docs)]

pub mod expose;
pub mod instrument;
pub mod registry;

pub use instrument::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram,
    HISTOGRAM_BUCKETS,
};
pub use registry::{Instrument, MetricValue, MetricsRegistry, ObsSnapshot, RoundObs, Value};
