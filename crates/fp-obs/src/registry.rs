//! The interner-keyed [`MetricsRegistry`] and its plain-value snapshots.

use crate::instrument::{Counter, Gauge, Histogram, HistogramSnapshot};
use fp_types::{sym, Symbol};
use std::sync::{Arc, Mutex};

/// A live instrument handle as the registry stores it.
#[derive(Clone, Debug)]
pub enum Instrument {
    /// A striped monotonic counter.
    Counter(Arc<Counter>),
    /// A settable signed level.
    Gauge(Arc<Gauge>),
    /// A log2-bucket histogram.
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: Symbol,
    instrument: Instrument,
}

/// A registry of named instruments, keyed by the `fp-types` interner.
///
/// Callers resolve a name **once** (taking the registry lock and an interner
/// lookup) and hold the returned `Arc` handle; every record after that is a
/// lock-free atomic on the instrument itself. Re-registering a name returns
/// the existing handle, so any number of components can share one metric;
/// asking for an existing name as a *different* instrument kind panics —
/// that is a wiring bug, not a runtime condition.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().unwrap();
        write!(f, "MetricsRegistry({} metrics)", entries.len())
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Instrument) -> Instrument {
        let key = sym(name);
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == key) {
            return e.instrument.clone();
        }
        let instrument = make();
        entries.push(Entry {
            name: key,
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Instrument::Counter(Arc::new(Counter::new()))) {
            Instrument::Counter(c) => c,
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Instrument::Gauge(Arc::new(Gauge::new()))) {
            Instrument::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Instrument::Histogram(Arc::new(Histogram::new()))) {
            Instrument::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// A plain-value snapshot of every registered metric, sorted by name so
    /// snapshots (and everything rendered from them) are deterministic
    /// regardless of registration order.
    pub fn snapshot(&self) -> ObsSnapshot {
        let entries = self.entries.lock().unwrap();
        let mut metrics: Vec<MetricValue> = entries
            .iter()
            .map(|e| MetricValue {
                name: e.name.as_str().to_string(),
                value: match &e.instrument {
                    Instrument::Counter(c) => Value::Counter(c.value()),
                    Instrument::Gauge(g) => Value::Gauge(g.value()),
                    Instrument::Histogram(h) => Value::Histogram(h.snapshot()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        ObsSnapshot { metrics }
    }
}

/// One metric's plain value at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricValue {
    /// The registered metric name.
    pub name: String,
    /// The instrument's value.
    pub value: Value,
}

/// The plain value of one instrument.
///
/// The histogram variant carries its full bucket array inline: snapshot
/// values are built once per snapshot on the cold path, so the size skew
/// against the scalar variants costs nothing that boxing would save.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Value {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// A histogram state.
    Histogram(HistogramSnapshot),
}

/// A plain-value snapshot of a whole registry, sorted by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    /// All metrics, name-sorted.
    pub metrics: Vec<MetricValue>,
}

impl ObsSnapshot {
    /// Look a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.metrics
            .binary_search_by(|m| m.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].value)
    }

    /// The counter `name`, if registered as one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            Value::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name`, if registered as one.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            Value::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if registered as one.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            Value::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// The change since an `earlier` snapshot of the same registry:
    /// counters and histograms subtract (saturating, bucket-wise);
    /// gauges are levels, so the later value is kept as-is. Metrics that
    /// appear only in the later snapshot pass through whole.
    pub fn delta(&self, earlier: &ObsSnapshot) -> ObsSnapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let value = match (&m.value, earlier.get(&m.name)) {
                    (Value::Counter(now), Some(Value::Counter(then))) => {
                        Value::Counter(now.saturating_sub(*then))
                    }
                    (Value::Histogram(now), Some(Value::Histogram(then))) => {
                        Value::Histogram(now.delta(then))
                    }
                    (v, _) => v.clone(),
                };
                MetricValue {
                    name: m.name.clone(),
                    value,
                }
            })
            .collect();
        ObsSnapshot { metrics }
    }
}

/// One round's observability record: the wall time the round took plus the
/// registry delta over the round.
///
/// This rides on `RoundStats` for reporting but is **excluded from the
/// `RUNFP_V1` `behavior` fold** — execution-time metrics are an execution
/// parameter (like the shard count), not observable behaviour; folding them
/// in would make every golden fingerprint machine- and load-dependent.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundObs {
    /// Wall-clock nanoseconds the round took end to end.
    pub wall_ns: u64,
    /// Registry delta over the round (see [`ObsSnapshot::delta`]).
    pub snapshot: ObsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshot_sorted() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("obs_test_registry_zeta");
        let c2 = reg.counter("obs_test_registry_zeta");
        c1.inc();
        c2.inc();
        reg.gauge("obs_test_registry_alpha").set(7);
        reg.histogram("obs_test_registry_mid").record(42);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("obs_test_registry_zeta"), Some(2));
        assert_eq!(snap.gauge("obs_test_registry_alpha"), Some(7));
        assert_eq!(snap.histogram("obs_test_registry_mid").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("obs_test_registry_kind");
        reg.gauge("obs_test_registry_kind");
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("obs_test_delta_events");
        let g = reg.gauge("obs_test_delta_level");
        let h = reg.histogram("obs_test_delta_lat");
        c.add(10);
        g.set(100);
        h.record(5);
        let earlier = reg.snapshot();
        c.add(3);
        g.set(42);
        h.record(5);
        h.record(900);
        let d = reg.snapshot().delta(&earlier);
        assert_eq!(d.counter("obs_test_delta_events"), Some(3));
        assert_eq!(d.gauge("obs_test_delta_level"), Some(42));
        let hd = d.histogram("obs_test_delta_lat").unwrap();
        assert_eq!(hd.count(), 2);
        assert_eq!(hd.sum, 905);
    }

    #[test]
    fn delta_passes_new_metrics_through() {
        let reg = MetricsRegistry::new();
        let earlier = reg.snapshot();
        reg.counter("obs_test_delta_fresh").add(4);
        let d = reg.snapshot().delta(&earlier);
        assert_eq!(d.counter("obs_test_delta_fresh"), Some(4));
    }
}
