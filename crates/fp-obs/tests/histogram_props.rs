//! Property tests for the log2-bucket histogram: shard-merge invariance
//! and quantile bracketing.

use fp_obs::{bucket_index, bucket_upper_bound, Histogram, LocalHistogram};

proptest::proptest! {
    /// Splitting a value stream over any shard count and merging the
    /// per-shard histograms equals recording the whole stream into one
    /// histogram — bucket for bucket, sum for sum. This is the property
    /// `ingest_stream` relies on when its workers fill `LocalHistogram`s
    /// merged at join.
    #[test]
    fn shard_merge_equals_single_shard(
        values in proptest::collection::vec(0u64..u64::MAX, 1..400),
        shards in 1usize..9,
    ) {
        let single = Histogram::new();
        for &v in &values {
            single.record(v);
        }

        let mut locals = vec![LocalHistogram::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            // Round-robin partition: any partition works, this one
            // exercises every shard.
            locals[i % shards].record(v);
        }
        let merged = Histogram::new();
        for local in &locals {
            merged.merge_local(local);
        }
        proptest::prop_assert_eq!(merged.snapshot(), single.snapshot());

        // Local-to-local merging (the other join shape) agrees too.
        let mut folded = LocalHistogram::new();
        for local in &locals {
            folded.merge(local);
        }
        proptest::prop_assert_eq!(folded.snapshot(), single.snapshot());
    }

    /// A `pXX` query brackets the true quantile to within one log2 bucket:
    /// the interpolated estimate lands in the *same* bucket as the exact
    /// rank-order statistic — never off by a whole bucket in either
    /// direction — and stays inside that bucket's true edges.
    #[test]
    fn quantiles_bracket_true_value_within_one_bucket(
        values in proptest::collection::vec(0u64..1u64 << 48, 1..500),
        q_millis in 1u64..1000,
    ) {
        let q = q_millis as f64 / 1000.0;
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];

        let reported = snap.quantile(q);
        let bucket = bucket_index(exact);
        proptest::prop_assert_eq!(
            bucket_index(reported),
            bucket,
            "q={} rank={} exact={} reported={}", q, rank, exact, reported
        );
        proptest::prop_assert!(reported <= bucket_upper_bound(bucket));
    }
}
