//! Throughput of the serving-path components: detector decisions, the
//! honey-site ingest pipeline, and fingerprint generation. These are the
//! numbers that decide whether the filter-list approach is deployable
//! inline (§7.3's "good trade-off between performance and accuracy").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fp_antibot::{BotD, DataDome};
use fp_botnet::{Campaign, CampaignConfig};
use fp_honeysite::HoneySite;
use fp_types::{Scale, ServiceId};

fn campaign() -> Campaign {
    Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.01),
        seed: 77,
    })
}

fn bench_detectors(c: &mut Criterion) {
    let campaign = campaign();
    let requests = &campaign.bot_requests;
    let mut group = c.benchmark_group("detector");
    group.throughput(Throughput::Elements(requests.len() as u64));

    group.bench_function("botd_decide", |b| {
        let mut botd = BotD::new();
        b.iter(|| {
            let mut bots = 0u64;
            for r in requests {
                bots += u64::from(botd.decide(r) == fp_antibot::Verdict::Bot);
            }
            bots
        })
    });

    group.bench_function("datadome_decide", |b| {
        b.iter_batched(
            DataDome::new,
            |mut dd| {
                let mut bots = 0u64;
                for r in requests {
                    bots += u64::from(dd.decide(r) == fp_antibot::Verdict::Bot);
                }
                bots
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let campaign = campaign();
    let mut group = c.benchmark_group("honeysite");
    group.throughput(Throughput::Elements(campaign.bot_requests.len() as u64));
    group.sample_size(10);
    group.bench_function("ingest_pipeline", |b| {
        b.iter_batched(
            || {
                let mut site = HoneySite::new();
                for id in ServiceId::all() {
                    site.register_token(campaign.token_of(id));
                }
                (site, campaign.bot_requests.clone())
            },
            |(mut site, requests)| {
                site.ingest_all(requests);
                site.into_store().len()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("campaign_1pct", |b| {
        b.iter(|| {
            Campaign::generate(CampaignConfig {
                scale: Scale::ratio(0.01),
                seed: 5,
            })
            .bot_requests
            .len()
        })
    });
    group.finish();
}

/// The streaming pipeline end to end (ingest + the full five-detector
/// chain including FP-Inconsistent) against the batch path (sequential
/// ingest, then whole-store engine passes), at 1/4/8 shards.
fn bench_pipeline_stream(c: &mut Criterion) {
    use fp_bench::{campaign_stream, honey_site_for};
    use fp_inconsistent_core::{FpInconsistent, MineConfig};

    let campaign = campaign();
    let stream = campaign_stream(&campaign);
    // Rules pre-mined once (the deployment setting).
    let (_, store) = {
        let mut site = honey_site_for(&campaign);
        site.ingest_all(stream.iter().cloned());
        ((), site.into_store())
    };
    let engine = FpInconsistent::mine(&store, &MineConfig::default());

    let mut group = c.benchmark_group("pipeline_stream");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    group.bench_function("batch_ingest_then_flags", |b| {
        b.iter_batched(
            || (honey_site_for(&campaign), stream.clone()),
            |(mut site, requests)| {
                site.ingest_all(requests);
                let store = site.into_store();
                engine.flags(&store).len()
            },
            BatchSize::LargeInput,
        )
    });

    for shards in [1usize, 4, 8] {
        group.bench_function(format!("stream_{shards}_shards"), |b| {
            b.iter_batched(
                || {
                    let mut site = honey_site_for(&campaign);
                    for d in engine.detectors() {
                        site.push_detector(d);
                    }
                    (site, stream.clone())
                },
                |(mut site, requests)| {
                    site.ingest_stream(requests, shards);
                    site.into_store().len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_detectors,
    bench_ingest,
    bench_generation,
    bench_pipeline_stream
);
criterion_main!(benches);
