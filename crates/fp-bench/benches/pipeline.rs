//! Throughput of the serving-path components: detector decisions, the
//! honey-site ingest pipeline, and fingerprint generation. These are the
//! numbers that decide whether the filter-list approach is deployable
//! inline (§7.3's "good trade-off between performance and accuracy").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fp_antibot::{BotD, DataDome, Detector};
use fp_botnet::{Campaign, CampaignConfig};
use fp_honeysite::HoneySite;
use fp_types::{Scale, ServiceId};

fn campaign() -> Campaign {
    Campaign::generate(CampaignConfig { scale: Scale::ratio(0.01), seed: 77 })
}

fn bench_detectors(c: &mut Criterion) {
    let campaign = campaign();
    let requests = &campaign.bot_requests;
    let mut group = c.benchmark_group("detector");
    group.throughput(Throughput::Elements(requests.len() as u64));

    group.bench_function("botd_decide", |b| {
        let mut botd = BotD::new();
        b.iter(|| {
            let mut bots = 0u64;
            for r in requests {
                bots += u64::from(botd.decide(r) == fp_antibot::Verdict::Bot);
            }
            bots
        })
    });

    group.bench_function("datadome_decide", |b| {
        b.iter_batched(
            DataDome::new,
            |mut dd| {
                let mut bots = 0u64;
                for r in requests {
                    bots += u64::from(dd.decide(r) == fp_antibot::Verdict::Bot);
                }
                bots
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let campaign = campaign();
    let mut group = c.benchmark_group("honeysite");
    group.throughput(Throughput::Elements(campaign.bot_requests.len() as u64));
    group.sample_size(10);
    group.bench_function("ingest_pipeline", |b| {
        b.iter_batched(
            || {
                let mut site = HoneySite::new();
                for id in ServiceId::all() {
                    site.register_token(campaign.token_of(id));
                }
                (site, campaign.bot_requests.clone())
            },
            |(mut site, requests)| {
                site.ingest_all(requests);
                site.into_store().len()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("campaign_1pct", |b| {
        b.iter(|| Campaign::generate(CampaignConfig { scale: Scale::ratio(0.01), seed: 5 }).bot_requests.len())
    });
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_ingest, bench_generation);
criterion_main!(benches);
