//! TLS substrate throughput: ClientHello construction, wire serialisation,
//! parsing, and JA3/JA4 digesting — the per-connection cost of the
//! cross-layer extension.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fp_tls::{ja3_digest, ja4_descriptor, ClientHello, TlsClientKind};
use fp_types::Splittable;

fn bench_tls(c: &mut Criterion) {
    let mut rng = Splittable::new(4);
    let hello = TlsClientKind::Chromium.client_hello("bench.example.com", &mut rng);
    let wire = hello.to_wire();

    let mut group = c.benchmark_group("tls");
    group.throughput(Throughput::Elements(1));
    group.bench_function("build_hello", |b| {
        let mut rng = Splittable::new(9);
        b.iter(|| {
            TlsClientKind::Chromium
                .client_hello("bench.example.com", &mut rng)
                .cipher_suites
                .len()
        })
    });
    group.bench_function("serialize", |b| b.iter(|| hello.to_wire().len()));
    group.bench_function("parse", |b| {
        b.iter(|| ClientHello::parse(&wire).unwrap().cipher_suites.len())
    });
    group.bench_function("ja3", |b| b.iter(|| ja3_digest(&hello).len()));
    group.bench_function("ja4", |b| b.iter(|| ja4_descriptor(&hello).len()));
    group.finish();

    let mut group = c.benchmark_group("md5");
    let payload = vec![0xA5u8; 4096];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("md5_4k", |b| b.iter(|| fp_tls::md5::md5(&payload)[0]));
    group.finish();
}

criterion_group!(benches, bench_tls);
criterion_main!(benches);
