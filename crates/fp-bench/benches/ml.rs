//! ML substrate performance: feature encoding and GBDT training on
//! campaign-shaped data (the §5.2.1 classifier fit).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fp_botnet::{Campaign, CampaignConfig};
use fp_ml::{FeatureSchema, Gbdt, GbdtParams};
use fp_types::Scale;

fn bench_ml(c: &mut Criterion) {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(0.01),
        seed: 31,
    });
    let fps: Vec<&fp_types::Fingerprint> = campaign
        .bot_requests
        .iter()
        .map(|r| &r.fingerprint)
        .collect();
    let labels: Vec<f64> = campaign
        .designs
        .iter()
        .map(|d| f64::from(u8::from(d.cell.evades_dd())))
        .collect();

    let schema = FeatureSchema::induce(fps.iter().copied());
    let mut group = c.benchmark_group("ml");
    group.sample_size(10);
    group.throughput(Throughput::Elements(fps.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| schema.encode_all(fps.iter().copied()).rows)
    });

    let matrix = schema.encode_all(fps.iter().copied());
    group.bench_function("gbdt_train_10_rounds", |b| {
        b.iter(|| {
            Gbdt::train(
                &matrix,
                &labels,
                GbdtParams {
                    rounds: 10,
                    ..GbdtParams::default()
                },
            )
            .trees
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ml);
criterion_main!(benches);
