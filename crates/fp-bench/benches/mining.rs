//! Miner and rule-engine performance: how long Algorithm 1 takes as the
//! dataset grows, and how fast the resulting filter list matches requests
//! (the client-side deployability question of §8.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fp_botnet::{Campaign, CampaignConfig};
use fp_honeysite::{HoneySite, RequestStore};
use fp_inconsistent_core::{FpInconsistent, MineConfig};
use fp_types::{Scale, ServiceId};

fn store_at(scale: f64) -> RequestStore {
    let campaign = Campaign::generate(CampaignConfig {
        scale: Scale::ratio(scale),
        seed: 21,
    });
    let mut site = HoneySite::new();
    for id in ServiceId::all() {
        site.register_token(campaign.token_of(id));
    }
    site.ingest_all(campaign.bot_requests.iter().cloned());
    site.into_store()
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_miner");
    group.sample_size(10);
    for scale in [0.005, 0.01, 0.02] {
        let store = store_at(scale);
        group.throughput(Throughput::Elements(store.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(store.len()),
            &store,
            |b, store| {
                b.iter(|| {
                    FpInconsistent::mine(store, &MineConfig::default())
                        .rules()
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let store = store_at(0.02);
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    let mut group = c.benchmark_group("rule_engine");
    group.throughput(Throughput::Elements(store.len() as u64));
    group.bench_function("spatial_match", |b| {
        b.iter(|| store.iter().filter(|r| engine.spatial_flag(r)).count())
    });
    group.bench_function("temporal_stream", |b| {
        b.iter(|| engine.temporal_flags(&store).iter().filter(|f| **f).count())
    });
    group.finish();
}

criterion_group!(benches, bench_mining, bench_matching);
criterion_main!(benches);
