//! Throughput of the closed-loop arena over round counts: the cost of a
//! round is one campaign generation + admission + the full sharded
//! detector chain + policy application, so rounds should scale linearly —
//! this bench tracks that, and the per-round overhead of the mitigation
//! loop itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fp_arena::{Arena, ArenaConfig, ResponsePolicy, DEFAULT_BLOCK_TTL_SECS};
use fp_types::Scale;

fn arena_config(remine_cadence: Option<u32>) -> ArenaConfig {
    ArenaConfig {
        scale: Scale::ratio(0.005),
        seed: 77,
        shards: 1,
        policy: ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS),
        remine_cadence,
        ..ArenaConfig::default()
    }
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena");
    group.sample_size(10);
    for rounds in [1u32, 2, 4] {
        // Throughput in requests processed across all rounds (measured
        // once up front; generation is deterministic).
        let total: u64 = {
            let mut arena = Arena::new(arena_config(None));
            arena.adaptive_defaults();
            (0..rounds)
                .map(|_| arena.step().stats.cohorts.cohort_sizes.iter().sum::<u64>())
                .sum()
        };
        group.throughput(Throughput::Elements(total));
        group.bench_function(format!("block_policy_{rounds}_rounds"), |b| {
            b.iter(|| {
                let mut arena = Arena::new(arena_config(None));
                arena.adaptive_defaults();
                arena.run(rounds).rounds.len()
            })
        });
    }
    // The defender-lifecycle overhead: identical campaign, re-mining the
    // spatial rule set every round (window grows one round per round, so
    // this tracks the incremental-mining cost the lifecycle adds).
    let total: u64 = {
        let mut arena = Arena::new(arena_config(Some(1)));
        arena.adaptive_defaults();
        (0..2u32)
            .map(|_| arena.step().stats.cohorts.cohort_sizes.iter().sum::<u64>())
            .sum()
    };
    group.throughput(Throughput::Elements(total));
    group.bench_function("block_policy_2_rounds_remine_every", |b| {
        b.iter(|| {
            let mut arena = Arena::new(arena_config(Some(1)));
            arena.adaptive_defaults();
            arena.run(2).rounds.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
