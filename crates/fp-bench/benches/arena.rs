//! Throughput of the closed-loop arena over round counts: the cost of a
//! round is one campaign generation + admission + the full sharded
//! detector chain + policy application, so rounds should scale linearly —
//! this bench tracks that, and the per-round overhead of the mitigation
//! loop itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fp_arena::{Arena, ArenaConfig, ResponsePolicy, DEFAULT_BLOCK_TTL_SECS};
use fp_types::Scale;

fn arena_config() -> ArenaConfig {
    ArenaConfig {
        scale: Scale::ratio(0.005),
        seed: 77,
        shards: 1,
        policy: ResponsePolicy::block(DEFAULT_BLOCK_TTL_SECS),
    }
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena");
    group.sample_size(10);
    for rounds in [1u32, 2, 4] {
        // Throughput in requests processed across all rounds (measured
        // once up front; generation is deterministic).
        let total: u64 = {
            let mut arena = Arena::new(arena_config());
            arena.adaptive_defaults();
            (0..rounds)
                .map(|_| arena.step().stats.cohorts.cohort_sizes.iter().sum::<u64>())
                .sum()
        };
        group.throughput(Throughput::Elements(total));
        group.bench_function(format!("block_policy_{rounds}_rounds"), |b| {
            b.iter(|| {
                let mut arena = Arena::new(arena_config());
                arena.adaptive_defaults();
                arena.run(rounds).rounds.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
