//! Interpreted vs compiled rule matching at growing rule-set sizes —
//! the hot-path kernel the `RulePack` compiler exists for. Each size
//! runs the same request batch through `RuleSet::matches` (per-pair
//! hash-index probes, hashing two `AttrValue`s per pair per request) and
//! `RulePack::matches` (one dense value-id resolve per attribute, then
//! bitset/binary-search probes), with the flag counts cross-checked so a
//! speedup can never come from divergent semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fp_inconsistent_core::{AnalysisAttr, RulePack, RuleSet, SpatialRule};
use fp_types::{
    sym, AttrId, AttrValue, BehaviorTrace, Fingerprint, SimTime, StoredRequest, TrafficSource,
    VerdictSet,
};

/// A synthetic mined set of `n` rules spread over three attribute pairs —
/// the shape a real re-mine produces (a few pairs, many value combos).
fn rule_set(n: usize) -> RuleSet {
    let mut set = RuleSet::new();
    for i in 0..n {
        let rule = match i % 3 {
            0 => SpatialRule::new(
                AnalysisAttr::Fp(AttrId::UaDevice),
                AttrValue::text(&format!("dev{i}")),
                AnalysisAttr::Fp(AttrId::MaxTouchPoints),
                AttrValue::Int(i as i64),
            ),
            1 => SpatialRule::new(
                AnalysisAttr::Fp(AttrId::UaDevice),
                AttrValue::text(&format!("dev{i}")),
                AnalysisAttr::Fp(AttrId::ScreenResolution),
                AttrValue::Resolution(1920, (i % 2048) as u16),
            ),
            _ => SpatialRule::new(
                AnalysisAttr::IpRegion,
                AttrValue::text(&format!("land{i}/state{i}")),
                AnalysisAttr::Fp(AttrId::Timezone),
                AttrValue::text(&format!("tz{i}")),
            ),
        };
        set.add(rule);
    }
    set
}

/// A fixed request batch: ~1/4 hit a rule from the first pair shape, the
/// rest miss (the realistic mostly-clean traffic profile).
fn request_batch(n: usize) -> Vec<StoredRequest> {
    (0..4096usize)
        .map(|i| {
            let hit = i % 4 == 0;
            let rule = (i % n) - (i % n) % 3; // a shape-0 rule index
            let device = if hit {
                format!("dev{rule}")
            } else {
                format!("clean{i}")
            };
            StoredRequest {
                id: i as u64,
                time: SimTime::EPOCH,
                site_token: sym("t"),
                ip_hash: i as u64,
                ip_offset_minutes: 0,
                ip_region: sym("Benchland/Central"),
                ip_lat: 0.0,
                ip_lon: 0.0,
                asn: 1,
                asn_flagged: false,
                ip_blocklisted: false,
                tor_exit: false,
                cookie: i as u64,
                tls: fp_types::TlsFacet::unobserved(),
                fingerprint: Fingerprint::new()
                    .with(AttrId::UaDevice, device.as_str())
                    .with(AttrId::MaxTouchPoints, rule as i64)
                    .with(AttrId::ScreenResolution, (1280u16, 800u16))
                    .with(AttrId::Timezone, "UTC"),
                source: TrafficSource::RealUser,
                behavior: BehaviorTrace::silent(),
                cadence: fp_types::BehaviorFacet::unobserved(),
                verdicts: VerdictSet::new(),
            }
        })
        .collect()
}

fn bench_rulepack(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_match");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let set = rule_set(n);
        let pack = RulePack::compile(&set);
        let requests = request_batch(n);
        assert_eq!(
            requests.iter().filter(|r| set.matches(r)).count(),
            requests.iter().filter(|r| pack.matches(r)).count(),
            "compiled and interpreted must flag identically at {n} rules"
        );
        group.throughput(Throughput::Elements(requests.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("interpreted", n),
            &requests,
            |b, requests| b.iter(|| requests.iter().filter(|r| set.matches(r)).count()),
        );
        group.bench_with_input(BenchmarkId::new("compiled", n), &requests, |b, requests| {
            b.iter(|| requests.iter().filter(|r| pack.matches(r)).count())
        });
    }
    group.finish();
}

/// Compilation itself must stay cheap enough to run at end-of-round on
/// the defender's cadence (it is off the hot path, but not free).
fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_compile");
    group.sample_size(20);
    for n in [100usize, 1000] {
        let set = rule_set(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| RulePack::compile(set).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rulepack, bench_compile);
criterion_main!(benches);
