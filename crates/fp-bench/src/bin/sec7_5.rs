//! Regenerates **§7.5 + Appendix G**: the privacy-technology experiment —
//! how FP-Inconsistent, DataDome and BotD treat Brave, Tor, Safari,
//! uBlock Origin and AdBlock Plus.

use fp_bench::{bench_scale, header, pct, recorded_campaign};
use fp_botnet::privacy;
use fp_honeysite::HoneySite;
use fp_inconsistent_core::{evaluate, FpInconsistent, MineConfig};
use fp_types::detect::provenance;
use fp_types::PrivacyTech;

fn main() {
    // Rules are mined from the bot campaign, then applied to the
    // privacy-tech traffic — exactly the paper's protocol.
    let (_, bot_store) = recorded_campaign(bench_scale());
    let engine = FpInconsistent::mine(&bot_store, &MineConfig::default());

    header(
        "§7.5 / Appendix G: privacy-enhancing technologies",
        "Brave: temporal FPs + DataDome 41% after ~10 req/device; Tor: all flagged (geo/tz) + \
         DataDome 100%; Safari/uBlock/ABP: clean everywhere; BotD: 0% on all",
    );
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "Technology", "Requests", "DataDome", "BotD", "FPI-spat", "FPI-temp", "FPI-comb"
    );

    for tech in PrivacyTech::ALL {
        let requests = privacy::generate(tech, fp_bench::CAMPAIGN_SEED);
        // Each technology's run is its own experiment: fresh site state.
        let mut site = HoneySite::new();
        let token = requests[0].site_token;
        site.register_token(token);
        site.ingest_all(requests);
        let store = site.into_store();

        let dd = store
            .iter()
            .filter(|r| r.verdicts.bot(provenance::DATADOME))
            .count() as f64
            / store.len() as f64;
        let botd = store
            .iter()
            .filter(|r| r.verdicts.bot(provenance::BOTD))
            .count() as f64
            / store.len() as f64;
        let (spatial, temporal, combined) = evaluate::flag_rate(&store, &engine);

        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
            tech.name(),
            store.len(),
            pct(dd),
            pct(botd),
            pct(spatial),
            pct(temporal),
            pct(combined),
        );
    }
    println!(
        "\npaper anchors: Brave DataDome ≈ 41%, Tor DataDome = 100%, Tor FPI = 100% (spatial),"
    );
    println!("Brave FPI spatial = 0 but temporal > 0 (cookie-stable farbling), blockers all zero.");
}
