//! Regenerates **Figure 6**: probability of evading DataDome by UA device
//! type (paper: iPhone highest at ≈ 0.5, then Other, iPad, Mac).

use fp_bench::{bench_scale, header, pct, recorded_campaign};
use fp_types::detect::provenance;
use fp_types::AttrId;
use std::collections::HashMap;

fn main() {
    let (_, store) = recorded_campaign(bench_scale());
    header(
        "Figure 6: P(evade DataDome | UA device type)",
        "Figure 6 — iPhone ≈ 0.5 on top, then Other, iPad, Mac",
    );

    let mut by_device: HashMap<&str, (u64, u64)> = HashMap::new();
    let dd_sym = provenance::datadome_sym();
    for r in store.iter().filter(|r| r.source.is_bot()) {
        let Some(device) = r.fingerprint.get(AttrId::UaDevice).as_str() else {
            continue;
        };
        // Group Android models the way a coarse device-type view does.
        // Chrome's frozen reduced-UA model "K" carries no device identity;
        // production parsers bucket it as generic.
        let class = match device {
            "iPhone" | "iPad" | "Mac" | "Other" => device,
            "K" => "Other",
            _ => "Android model",
        };
        let slot = by_device.entry(class).or_default();
        slot.0 += 1;
        slot.1 += u64::from(!r.verdicts.bot_sym(dd_sym));
    }

    let mut rows: Vec<(&str, u64, f64)> = by_device
        .into_iter()
        .map(|(d, (n, e))| (d, n, e as f64 / n.max(1) as f64))
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());

    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "Device type", "Requests", "P(evade)", "P(detect)"
    );
    for (device, n, p) in rows {
        println!("{device:<16} {n:>10} {:>12} {:>12}", pct(p), pct(1.0 - p));
    }
}
