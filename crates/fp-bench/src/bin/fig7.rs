//! Regenerates **Figure 7** and the §6.1 resolution census: distinct
//! screen resolutions on iPhone-claiming requests (paper: 83 total, 42
//! among DataDome evaders, 9 of the top-10 evading resolutions
//! nonexistent).

use fp_bench::{bench_scale, header, pct, recorded_campaign};
use fp_fingerprint::catalog::is_real_iphone_resolution;
use fp_types::detect::provenance;
use fp_types::AttrId;
use std::collections::HashMap;

fn main() {
    let (_, store) = recorded_campaign(bench_scale());
    header(
        "Figure 7 / §6.1: iPhone screen-resolution census",
        "83 distinct resolutions, 42 among evaders, 9/10 top evaders nonexistent",
    );

    // (resolution) -> (requests, evaded)
    let mut census: HashMap<(u16, u16), (u64, u64)> = HashMap::new();
    let dd_sym = provenance::datadome_sym();
    for r in store.iter().filter(|r| r.source.is_bot()) {
        if r.fingerprint.get(AttrId::UaDevice).as_str() != Some("iPhone") {
            continue;
        }
        let Some(res) = r.fingerprint.get(AttrId::ScreenResolution).as_resolution() else {
            continue;
        };
        let slot = census.entry(res).or_default();
        slot.0 += 1;
        slot.1 += u64::from(!r.verdicts.bot_sym(dd_sym));
    }

    let total_unique = census.len();
    let evading_unique = census.values().filter(|(_, e)| *e > 0).count();
    println!("distinct iPhone resolutions: {total_unique} (paper: 83)");
    println!("distinct among DataDome evaders: {evading_unique} (paper: 42)");

    let mut ranked: Vec<((u16, u16), u64, f64)> = census
        .iter()
        .map(|(&res, &(n, e))| (res, n, e as f64 / n.max(1) as f64))
        .collect();
    ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then(b.1.cmp(&a.1)));

    println!("\ntop 10 resolutions by evasion probability:");
    println!(
        "{:<12} {:>9} {:>10} {:>8}",
        "Resolution", "Requests", "P(evade)", "Real?"
    );
    let mut fake_in_top10 = 0;
    for (res, n, p) in ranked.iter().take(10) {
        let real = is_real_iphone_resolution(*res);
        if !real {
            fake_in_top10 += 1;
        }
        println!(
            "{:<12} {:>9} {:>10} {:>8}",
            format!("{}x{}", res.0, res.1),
            n,
            pct(*p),
            if real { "yes" } else { "NO" }
        );
    }
    println!("\nnonexistent among top 10: {fake_in_top10} (paper: 9)");
}
