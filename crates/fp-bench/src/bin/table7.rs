//! Regenerates **Table 7**: the attribute categories used for
//! inconsistency analysis.

use fp_bench::header;
use fp_inconsistent_core::CATEGORIES;

fn main() {
    header("Table 7: attribute categories", "Appendix F");
    for c in CATEGORIES.iter() {
        let attrs: Vec<String> = c.attrs.iter().map(|a| a.name()).collect();
        let marker = if c.in_paper {
            ""
        } else {
            " (extension, §8.2)"
        };
        println!("{:<12}{} {}", c.name, marker, attrs.join(", "));
        println!("             {} attribute pairs minable", c.pairs().len());
    }
}
