//! Regenerates **Figure 9**: the per-day series of requests, unique IP
//! addresses, unique cookies and unique fingerprints, with the
//! purchase-renewal spikes.

use fp_bench::{bench_scale, header, recorded_campaign};
use fp_botnet::schedule::RENEWAL_DAYS;
use fp_honeysite::stats;
use fp_types::SimTime;

fn main() {
    let (_, store) = recorded_campaign(bench_scale());
    header(
        "Figure 9: temporal distribution of honey-site traffic",
        "Figure 9 — spikes at purchase renewals; fresh fingerprints all campaign long",
    );
    let series = stats::daily_series(&store);
    println!(
        "{:<8} {:>9} {:>11} {:>14} {:>18}",
        "Date", "Requests", "Unique IPs", "Unique cookies", "Unique fingerprints"
    );
    for (day, s) in series.iter().enumerate() {
        if s.requests == 0 {
            continue;
        }
        let marker = if RENEWAL_DAYS.contains(&(day as u32)) {
            "  <- renewal"
        } else {
            ""
        };
        println!(
            "{:<8} {:>9} {:>11} {:>14} {:>18}{marker}",
            SimTime::from_day(day as u32, 0).calendar(),
            s.requests,
            s.unique_ips,
            s.unique_cookies,
            s.unique_fingerprints,
        );
    }
    let late_fresh: u64 = series[70..].iter().map(|s| s.unique_fingerprints).sum();
    println!("\nunique fingerprints still appearing after day 70: {late_fresh} (paper: previously unseen fingerprints after 2 months)");
}
