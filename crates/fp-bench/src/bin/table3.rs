//! Regenerates **Table 3**: per-service detection rates before and after
//! FP-Inconsistent's rules are layered on each anti-bot service.

use fp_bench::{bench_scale, header, pct, recorded_campaign};
use fp_botnet::spec::spec_of;
use fp_inconsistent_core::{evaluate, FpInconsistent, MineConfig};

fn main() {
    let (_, store) = recorded_campaign(bench_scale());
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    let (improvements, _) = evaluate::evaluate(&store, &engine);

    header(
        "Table 3: detection improvement per bot service",
        "Table 3 (post columns; pre columns are 1 - Table 1 evasion)",
    );
    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>9} {:>10} {:>12} {:>9}",
        "Service", "Requests", "DD", "DD+FPI", "(paper)", "BotD", "BotD+FPI", "(paper)"
    );
    for s in improvements {
        let spec = spec_of(s.id);
        println!(
            "{:<8} {:>9} {:>10} {:>12} {:>9} {:>10} {:>12} {:>9}",
            s.id.name(),
            s.requests,
            pct(s.dd_detection),
            pct(s.dd_post_detection),
            pct(spec.dd_post_detection),
            pct(s.botd_detection),
            pct(s.botd_post_detection),
            pct(spec.botd_post_detection),
        );
    }
    println!("\nrules mined: {}", engine.rules().len());
}
