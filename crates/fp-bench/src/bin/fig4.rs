//! Regenerates **Figure 4**: probability of evading BotD given each PDF
//! plugin's presence ("the presence of any plugin helps evade BotD").

use fp_bench::{bench_scale, header, pct, recorded_campaign};
use fp_fingerprint::catalog::CHROMIUM_PDF_PLUGINS;
use fp_types::detect::provenance;
use fp_types::AttrId;

fn main() {
    let botd_sym = provenance::botd_sym();
    let (_, store) = recorded_campaign(bench_scale());
    header(
        "Figure 4: P(evade BotD | PDF plugin present)",
        "Figure 4 — every bar close to 1.0",
    );
    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "Plugin", "Requests", "P(evade)", "P(detect)"
    );
    for plugin in CHROMIUM_PDF_PLUGINS {
        let mut n = 0u64;
        let mut evaded = 0u64;
        for r in store.iter().filter(|r| r.source.is_bot()) {
            let has = r
                .fingerprint
                .get(AttrId::Plugins)
                .as_list()
                .map(|l| l.contains(&plugin))
                .unwrap_or(false);
            if has {
                n += 1;
                evaded += u64::from(!r.verdicts.bot_sym(botd_sym));
            }
        }
        let p = if n == 0 {
            0.0
        } else {
            evaded as f64 / n as f64
        };
        println!("{plugin:<28} {n:>10} {:>12} {:>12}", pct(p), pct(1.0 - p));
    }

    // Contrast: plugin-less bot traffic.
    let mut n = 0u64;
    let mut evaded = 0u64;
    for r in store.iter().filter(|r| r.source.is_bot()) {
        let empty = r
            .fingerprint
            .get(AttrId::Plugins)
            .as_list()
            .map(|l| l.is_empty())
            .unwrap_or(true);
        if empty {
            n += 1;
            evaded += u64::from(!r.verdicts.bot_sym(botd_sym));
        }
    }
    println!(
        "\n(no plugins at all: {} requests, P(evade BotD) = {})",
        n,
        pct(evaded as f64 / n.max(1) as f64)
    );
}
