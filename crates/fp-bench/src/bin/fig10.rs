//! Regenerates **Figure 10**: distribution of `navigator.platform` across
//! requests sharing the single most-seen cookie (paper: Win32 ≈ 38%,
//! MacIntel, iPhone, Linux armv7l, … — a device whose platform "changes"
//! dozens of times).

use fp_bench::{bench_scale, header, pct, recorded_campaign};
use fp_types::AttrId;
use std::collections::HashMap;

fn main() {
    let (_, store) = recorded_campaign(bench_scale());
    header(
        "Figure 10: platform values on the most-requested cookie",
        "Figure 10 — Win32 38%, MacIntel 17%, iPhone 14%, Linux armv7l 10%, …",
    );

    let (cookie, count) = store.top_cookie().expect("store not empty");
    println!("top cookie: {cookie:#018x} with {count} requests\n");

    let mut platforms: HashMap<&str, u64> = HashMap::new();
    for r in store.with_cookie(cookie) {
        if let Some(p) = r.fingerprint.get(AttrId::Platform).as_str() {
            *platforms.entry(p).or_default() += 1;
        }
    }
    let total: u64 = platforms.values().sum();
    let mut rows: Vec<(&str, u64)> = platforms.into_iter().collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("{:<18} {:>9} {:>9}", "Platform", "Requests", "Share");
    for (platform, n) in &rows {
        let bar = "#".repeat((*n as f64 / total.max(1) as f64 * 80.0) as usize);
        println!(
            "{platform:<18} {n:>9} {:>9} {bar}",
            pct(*n as f64 / total.max(1) as f64)
        );
    }
    println!(
        "\n{} distinct platform values on one device — \"it cannot change otherwise for the same device\" (§6.3)",
        rows.len()
    );
}
