//! Regenerates **Table 4**: overall detection under no / spatial /
//! temporal / combined inconsistency analysis, and the headline evasion
//! reductions (48.11% DataDome, 44.95% BotD).

use fp_bench::{bench_scale, header, pct, recorded_campaign};
use fp_inconsistent_core::{evaluate, FpInconsistent, MineConfig};

fn main() {
    let (_, store) = recorded_campaign(bench_scale());
    let engine = FpInconsistent::mine(&store, &MineConfig::default());
    let (_, report) = evaluate::evaluate(&store, &engine);

    header(
        "Table 4: detection by inconsistency-analysis mode",
        "paper: None 55.44/47.07, Spatial 76.04/70.33, Temporal 56.53/48.09, Combined 76.88/70.86",
    );
    println!("{:<10} {:>12} {:>12}", "Mode", "DataDome", "BotD");
    println!(
        "{:<10} {:>12} {:>12}",
        "None",
        pct(report.none.0),
        pct(report.none.1)
    );
    println!(
        "{:<10} {:>12} {:>12}",
        "Spatial",
        pct(report.spatial.0),
        pct(report.spatial.1)
    );
    println!(
        "{:<10} {:>12} {:>12}",
        "Temporal",
        pct(report.temporal.0),
        pct(report.temporal.1)
    );
    println!(
        "{:<10} {:>12} {:>12}",
        "Combined",
        pct(report.combined.0),
        pct(report.combined.1)
    );

    let (dd_red, botd_red) = report.evasion_reduction();
    println!(
        "\nevasion reduction: DataDome {} (paper 48.11%), BotD {} (paper 44.95%)",
        pct(dd_red),
        pct(botd_red)
    );
}
