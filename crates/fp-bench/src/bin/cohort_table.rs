//! The cross-layer cohort table: per-detector flag rates split by traffic
//! cohort (real users, the paper's bot services, AI browsing agents, the
//! TLS-lagging evasive cohort, privacy tools), plus per-detector
//! precision. Not a paper table — this is the extension's headline view:
//! the TLS detector owns the laggard cohort and is structurally blind to
//! AI agents, whose behaviour-reading detector owns them instead.

use fp_bench::{bench_scale, header, pct, recorded_cohort_campaign};
use fp_inconsistent_core::evaluate;
use fp_types::Cohort;

fn main() {
    let (_, store) = recorded_cohort_campaign(bench_scale());
    header(
        "cross-layer extension: per-detector × per-cohort detection",
        "§8 evasion analysis + \"When Handshakes Tell the Truth\" + FP-Agent",
    );

    let report = evaluate::cohort_report(&store);

    print!("{:<22}", "cohort");
    for cohort in Cohort::ALL {
        print!("{:>14}", cohort.name());
    }
    println!();
    print!("{:<22}", "requests");
    for cohort in Cohort::ALL {
        print!("{:>14}", report.size(cohort));
    }
    println!("\n");

    println!("flag rate per cohort (recall on automation, FPR on humans):");
    print!("{:<22}{:>10}", "detector", "precision");
    for cohort in Cohort::ALL {
        print!("{:>14}", cohort.name());
    }
    println!();
    for d in &report.detectors {
        print!("{:<22}{:>10}", d.detector.as_str(), pct(d.precision));
        for cohort in Cohort::ALL {
            print!("{:>14}", pct(d.rate(cohort)));
        }
        println!();
    }

    // The two claims this table exists to make.
    let xl = report
        .detector(fp_types::detect::provenance::FP_TLS_CROSSLAYER)
        .expect("cross-layer detector runs in the default chain");
    println!(
        "\nfp-tls-crosslayer: {} of the TLS-lagging cohort, {} of AI agents, {} of real users",
        pct(xl.rate(Cohort::TlsLaggard)),
        pct(xl.rate(Cohort::AiAgent)),
        pct(xl.rate(Cohort::RealUser)),
    );
    assert!(
        xl.rate(Cohort::TlsLaggard) > 0.95,
        "the laggard cohort is the detector's home turf"
    );
    assert!(
        xl.rate(Cohort::AiAgent) == 0.0,
        "real-browser TLS cannot mismatch"
    );
}
