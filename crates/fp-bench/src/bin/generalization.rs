//! Regenerates **§7.3's generalisation check**: rules mined on 80% of the
//! campaign, evaluated on the held-out 20% (paper: detection drops only
//! 0.23% for DataDome and 0.42% for BotD).

use fp_bench::{bench_scale, header, pct, recorded_campaign};
use fp_inconsistent_core::evaluate::generalization_experiment;
use fp_inconsistent_core::MineConfig;

fn main() {
    let (_, store) = recorded_campaign(bench_scale());
    header(
        "§7.3: rule generalisation (80/20 split)",
        "drop of 0.23% (DataDome) / 0.42% (BotD) on unseen requests",
    );
    let (full, split) = generalization_experiment(&store, &MineConfig::default(), 0.8, 0x5EED);
    println!("combined detection on held-out 20%:");
    println!(
        "  rules mined on everything:   DataDome {}  BotD {}",
        pct(full.0),
        pct(full.1)
    );
    println!(
        "  rules mined on the 80% only: DataDome {}  BotD {}",
        pct(split.0),
        pct(split.1)
    );
    println!(
        "  drop:                        DataDome {}  BotD {}  (paper: 0.23% / 0.42%)",
        pct(full.0 - split.0),
        pct(full.1 - split.1)
    );
}
